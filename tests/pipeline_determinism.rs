//! Pipeline determinism: the compiler is a pure function of
//! (source, options). Compiling the same workload twice at every level
//! must produce byte-identical machine code and identical per-pass
//! op-count deltas — the property every cached or distributed build, and
//! every A/B measurement in the bench suite, silently relies on.

use epic_driver::{compile, CompileOptions, OptLevel};
use epic_mach::program::disasm;
use epic_sim::SimOptions;

#[test]
fn recompilation_is_bit_identical_at_every_level() {
    let w = epic_workloads::by_name("vortex_mc").unwrap();
    for level in OptLevel::ALL {
        let a = compile(&w, &CompileOptions::for_level(level)).unwrap();
        let b = compile(&w, &CompileOptions::for_level(level)).unwrap();
        // Machine code: the full structural representation must match
        // (the Debug form encodes every bundle, slot, and operand), and
        // so must the per-function disassembly and the size accounting.
        assert_eq!(
            format!("{:?}", a.mach),
            format!("{:?}", b.mach),
            "{}: machine program differs between identical compiles",
            level.name()
        );
        for (fa, fb) in a.mach.funcs.iter().zip(&b.mach.funcs) {
            assert_eq!(disasm(fa), disasm(fb), "{}: {}", level.name(), fa.name);
        }
        assert_eq!(a.code_bytes, b.code_bytes, "{}", level.name());
        assert_eq!(a.static_ops, b.static_ops, "{}", level.name());
        // Timeline: same passes in the same order with the same op and
        // block deltas (wall time legitimately varies).
        assert!(
            !a.pass_timeline.is_empty(),
            "{}: pass timeline must be populated",
            level.name()
        );
        let names = |c: &epic_driver::Compiled| {
            c.pass_timeline
                .passes
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
        };
        let deltas = |c: &epic_driver::Compiled| {
            c.pass_timeline
                .passes
                .iter()
                .map(|p| (p.ops_before, p.ops_after, p.blocks_before, p.blocks_after))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b), "{}", level.name());
        assert_eq!(deltas(&a), deltas(&b), "{}", level.name());
    }
}

#[test]
fn simulation_accounting_is_deterministic_at_every_level() {
    // The measurement side of the same property: simulating the same
    // machine code twice must reproduce the full cycle accounting — the
    // total, every Fig. 5 category split, every counter, and the
    // per-function attribution matrix.
    let w = epic_workloads::by_name("vortex_mc").unwrap();
    for level in OptLevel::ALL {
        let c = compile(&w, &CompileOptions::for_level(level)).unwrap();
        let a = epic_sim::run(&c.mach, &w.train_args, &SimOptions::default()).unwrap();
        let b = epic_sim::run(&c.mach, &w.train_args, &SimOptions::default()).unwrap();
        assert_eq!(a.cycles, b.cycles, "{}", level.name());
        assert_eq!(a.acct, b.acct, "{}: category split differs", level.name());
        assert_eq!(a.counters, b.counters, "{}: counters differ", level.name());
        assert_eq!(
            a.func_matrix,
            b.func_matrix,
            "{}: per-function matrix differs",
            level.name()
        );
        a.check_identity()
            .unwrap_or_else(|e| panic!("{}: {e}", level.name()));
    }
}
