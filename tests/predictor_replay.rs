//! Replay-agrees-with-live validation (DESIGN.md §13): a branch trace
//! captured from one detailed run, replayed offline through every
//! predictor in the zoo, must reproduce the exact conditional
//! prediction counts the live simulator reports with that predictor.
//! This holds because the in-order pipeline executes no wrong-path
//! operations — the retired branch stream is predictor-independent —
//! and is the invariant `epicc branches --capture` / `epicc replay`
//! stand on.

use epic_driver::{compile, CompileOptions, OptLevel};
use epic_sim::{
    read_branch_trace, replay, run_with_sinks, AnyPredictor, BranchTraceSink, PredictorSpec,
    SimOptions,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` target the test keeps a handle to after the sink (which
/// owns the writer) is consumed by the simulation run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Capture the branch stream of `w` at `level` (default predictor), then
/// check every zoo member's offline replay against its live run.
fn check_replay_matches_live(workload: &str, level: OptLevel) {
    let w = epic_workloads::by_name(workload).unwrap();
    let compiled = compile(&w, &CompileOptions::for_level(level)).unwrap();

    let buf = SharedBuf::default();
    let (sink, stats) = BranchTraceSink::new(buf.clone(), 1 << 24).unwrap();
    let captured = run_with_sinks(
        &compiled.mach,
        &w.ref_args,
        &SimOptions::default(),
        vec![Box::new(sink)],
    )
    .unwrap();
    let (recorded, dropped) = {
        let g = stats.lock().unwrap();
        (g.recorded, g.dropped)
    };
    assert_eq!(dropped, 0, "{workload}: trace cap exceeded");
    let bytes = buf.0.lock().unwrap().clone();
    let records = read_branch_trace(&mut &bytes[..]).unwrap();
    assert_eq!(records.len() as u64, recorded);
    assert!(
        records.len() as u64 >= captured.counters.branch_predictions,
        "{workload}: trace must cover at least every conditional branch"
    );

    for spec in PredictorSpec::ZOO {
        let live = epic_sim::run(
            &compiled.mach,
            &w.ref_args,
            &SimOptions {
                predictor: spec,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let mut pred = AnyPredictor::from_spec(spec);
        let st = replay(&records, &mut pred);
        assert_eq!(
            st.predictions,
            live.counters.branch_predictions,
            "{workload} {}: replay prediction count diverged",
            spec.name()
        );
        assert_eq!(
            st.mispredictions,
            live.counters.branch_mispredictions,
            "{workload} {}: replay misprediction count diverged",
            spec.name()
        );
        if spec == PredictorSpec::Oracle {
            assert_eq!(st.mispredictions, 0, "{workload}: oracle never misses");
        }
    }
}

#[test]
fn replay_matches_live_simulation_for_every_predictor() {
    check_replay_matches_live("gzip_mc", OptLevel::IlpCs);
}

#[test]
fn replay_matches_live_on_an_unscheduled_level_too() {
    // GCC-level code has a different branch mix (no compile-time
    // speculation), so the stream shape differs from ILP-CS
    check_replay_matches_live("mcf_mc", OptLevel::Gcc);
}
