//! Cross-crate integration tests: the full pipeline (frontend → profile →
//! inline/promote → classical → structural ILP → schedule → simulate) must
//! preserve semantics on real workloads at every optimization level, and
//! the measured counters must satisfy basic physical invariants.

use epic_driver::{compile, measure_traced, oracle, CompileOptions, OptLevel};
use epic_sim::SimOptions;
use epic_trace::Trace;

/// A fast subset of the suite that covers every behaviour class (full
/// 12-benchmark differential coverage lives in the bench harness and the
/// per-crate tests).
const SAMPLE: &[&str] = &[
    "gzip_mc",
    "gcc_mc",
    "crafty_mc",
    "eon_mc",
    "vortex_mc",
    "bzip2_mc",
];

#[test]
fn sample_workloads_match_oracle_at_all_levels_on_train_input() {
    for name in SAMPLE {
        let w = epic_workloads::by_name(name).unwrap();
        let want = oracle(&w, &w.train_args).unwrap();
        for level in OptLevel::ALL {
            let compiled = compile(&w, &CompileOptions::for_level(level)).unwrap();
            let sim = epic_sim::run(&compiled.mach, &w.train_args, &SimOptions::default())
                .unwrap_or_else(|e| panic!("{name} at {}: {e}", level.name()));
            assert_eq!(sim.output, want, "{name} at {}", level.name());
        }
    }
}

#[test]
fn counters_satisfy_physical_invariants() {
    let w = epic_workloads::by_name("vortex_mc").unwrap();
    for level in OptLevel::ALL {
        let m = measure_traced(
            &w,
            &CompileOptions::for_level(level),
            &SimOptions::default(),
            &Trace::disabled(),
        )
        .unwrap();
        let c = &m.sim.counters;
        let a = &m.sim.acct;
        assert_eq!(m.sim.cycles, a.total(), "{}", level.name());
        assert!(a.unstalled() > 0);
        assert!(a.planned() <= m.sim.cycles);
        assert!(c.l1i_misses <= c.l1i_accesses);
        assert!(c.l1d_misses <= c.l1d_accesses);
        assert!(c.l2_misses <= c.l2_accesses);
        assert!(c.branch_mispredictions <= c.branch_predictions);
        assert!(c.branch_predictions <= c.dynamic_branches + c.retired_squashed);
        // IPC must be physically possible on a 6-issue machine
        let ipc = c.retired_useful as f64 / m.sim.cycles as f64;
        assert!(ipc <= 6.0, "{}: IPC {ipc}", level.name());
        // per-function attribution is exhaustive (rows and columns)
        m.sim
            .check_identity()
            .unwrap_or_else(|e| panic!("{}: {e}", level.name()));
    }
}

#[test]
fn speculation_only_appears_at_ilp_cs() {
    let w = epic_workloads::by_name("gcc_mc").unwrap();
    let ns = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::IlpNs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    let cs = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::IlpCs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    assert_eq!(
        ns.sim.counters.spec_loads, 0,
        "ILP-NS must not speculate loads"
    );
    assert!(
        cs.sim.counters.spec_loads > 0,
        "ILP-CS should speculate loads"
    );
    assert!(
        cs.sim.counters.wild_loads > 0,
        "gcc stand-in should produce wild loads under general speculation"
    );
}

#[test]
fn structural_transforms_reduce_dynamic_branches() {
    let w = epic_workloads::by_name("crafty_mc").unwrap();
    let ons = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::ONs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    let ilp = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::IlpNs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    let reduction =
        1.0 - ilp.sim.counters.dynamic_branches as f64 / ons.sim.counters.dynamic_branches as f64;
    assert!(
        reduction > 0.05,
        "expected >5% dynamic-branch reduction, got {:.1}%",
        reduction * 100.0
    );
}

#[test]
fn impact_levels_beat_gcc_on_geomean() {
    // ILP-NS vs GCC: the clean structural-ILP comparison. (ILP-CS is
    // dragged below this by the two *documented* regressions in the
    // sample — the gcc stand-in's wild loads and bzip2's store-forwarding
    // stalls — which the paper reports per-benchmark too.)
    let mut ratios = Vec::new();
    for name in SAMPLE {
        let w = epic_workloads::by_name(name).unwrap();
        let gcc = measure_traced(
            &w,
            &CompileOptions::for_level(OptLevel::Gcc),
            &SimOptions::default(),
            &Trace::disabled(),
        )
        .unwrap();
        let ns = measure_traced(
            &w,
            &CompileOptions::for_level(OptLevel::IlpNs),
            &SimOptions::default(),
            &Trace::disabled(),
        )
        .unwrap();
        ratios.push(gcc.sim.cycles as f64 / ns.sim.cycles as f64);
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        geomean > 1.05,
        "ILP-NS should beat GCC on geomean; got {geomean:.2} over {ratios:?}"
    );
}
