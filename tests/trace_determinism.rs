//! Tracing must never perturb what it observes: a traced run produces
//! bit-identical measurements to an untraced one, and two identical
//! traced runs produce identical span *structure* (timing masked) and
//! identical per-cell metrics — the per-cell registry holds only
//! deterministic simulation data, never wall-clock latencies.

use epic_driver::{CompileOptions, MeasureRequest, OptLevel, TracePolicy};
use epic_trace::MetricValue;

fn traced_run() -> epic_driver::MeasureReport {
    let workloads = vec![epic_workloads::by_name("mcf_mc").unwrap()];
    MeasureRequest::new(&workloads)
        .levels(&[OptLevel::Gcc, OptLevel::ONs])
        .compile_options(&CompileOptions::for_level)
        .trace(TracePolicy::Enabled)
        .run()
        .unwrap()
}

#[test]
fn identical_traced_runs_have_identical_structure_and_metrics() {
    let (a, b) = (traced_run(), traced_run());
    for (row_a, row_b) in a.cells.iter().zip(&b.cells) {
        for (ca, cb) in row_a.iter().zip(row_b) {
            // measurements are bit-identical run to run
            assert_eq!(ca.measurement.sim.cycles, cb.measurement.sim.cycles);
            assert_eq!(ca.measurement.sim.checksum, cb.measurement.sim.checksum);
            let (ta, tb) = (ca.trace.as_ref().unwrap(), cb.trace.as_ref().unwrap());
            // span structure is identical once timing is masked
            assert_eq!(ta.span_skeleton(), tb.span_skeleton());
            assert_eq!(ta.dropped, 0);
            assert_eq!(tb.dropped, 0);
            // per-cell metrics carry only deterministic sim data, so the
            // whole snapshot — names, kinds, and values — matches exactly
            assert_eq!(ta.metrics, tb.metrics);
            match ta.metrics.get("sim.charges") {
                Some(MetricValue::Counter(n)) => assert!(*n > 0),
                other => panic!("sim.charges missing: {other:?}"),
            }
        }
    }
}

#[test]
fn tracing_does_not_change_the_measurement() {
    let workloads = vec![epic_workloads::by_name("mcf_mc").unwrap()];
    let base = MeasureRequest::new(&workloads)
        .levels(&[OptLevel::Gcc])
        .compile_options(&CompileOptions::for_level)
        .run()
        .unwrap();
    let traced = traced_run();
    let (m0, m1) = (
        &base.cells[0][0].measurement,
        &traced.cells[0][0].measurement,
    );
    assert_eq!(m0.sim.cycles, m1.sim.cycles);
    assert_eq!(m0.sim.checksum, m1.sim.checksum);
    assert_eq!(m0.compiled.code_bytes, m1.compiled.code_bytes);
    assert!(
        base.cells[0][0].trace.is_none(),
        "untraced cells carry no trace"
    );
}
