//! Guard for the offline-build invariant: no manifest in the workspace
//! may declare a dependency that resolves to a registry (crates.io)
//! crate. Every dependency must be a `path` dependency or inherit one via
//! `workspace = true`. This is what keeps `cargo build` green with the
//! registry unreachable.

use std::path::{Path, PathBuf};

fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates).expect("crates dir") {
        let p = entry.expect("dir entry").path().join("Cargo.toml");
        if p.is_file() {
            out.push(p);
        }
    }
    out
}

/// Is this line inside a dependency section a registry-style declaration?
/// Allowed forms: `name.workspace = true`, `name = { path = ".." , .. }`,
/// and multi-line `[*dependencies.name]` tables carrying `workspace` or
/// `path` keys (checked by the caller via section state).
fn line_is_registry_dep(line: &str) -> bool {
    let Some((_, value)) = line.split_once('=') else {
        return false;
    };
    let value = value.trim();
    // `name.workspace = true` parses as key `name.workspace`.
    let key = line.split('=').next().unwrap_or("").trim();
    if key.ends_with(".workspace") {
        return false;
    }
    // Inline tables must name a path source.
    if value.starts_with('{') {
        return !value.contains("path");
    }
    // Bare string = version requirement = registry.
    value.starts_with('"') || value.starts_with('\'')
}

#[test]
fn no_manifest_declares_a_registry_dependency() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest).expect("readable manifest");
        let mut in_dep_section = false; // [dependencies] and friends
        let mut in_dep_table: Option<(String, bool)> = None; // [dependencies.name]
        let flush_table =
            |table: &mut Option<(String, bool)>, violations: &mut Vec<String>, m: &Path| {
                if let Some((name, ok)) = table.take() {
                    if !ok {
                        violations.push(format!(
                            "{}: [{}] has no path/workspace key",
                            m.display(),
                            name
                        ));
                    }
                }
            };
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                flush_table(&mut in_dep_table, &mut violations, &manifest);
                let section = line.trim_matches(['[', ']']);
                let is_dep = section == "dependencies"
                    || section == "dev-dependencies"
                    || section == "build-dependencies"
                    || section == "workspace.dependencies";
                in_dep_section = is_dep;
                if !is_dep {
                    // [dependencies.name]-style table?
                    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                        if let Some(name) = section.strip_prefix(prefix) {
                            in_dep_table = Some((name.to_string(), false));
                        }
                    }
                }
                continue;
            }
            if let Some((_, ok)) = &mut in_dep_table {
                let key = line.split('=').next().unwrap_or("").trim();
                if key == "path" || (key == "workspace" && line.contains("true")) {
                    *ok = true;
                }
            } else if in_dep_section && line_is_registry_dep(line) {
                violations.push(format!("{}: `{}`", manifest.display(), line));
            }
        }
        flush_table(&mut in_dep_table, &mut violations, &manifest);
    }
    assert!(
        violations.is_empty(),
        "registry (non-path) dependencies violate the offline-build invariant:\n{}",
        violations.join("\n")
    );
}

#[test]
fn workspace_covers_all_crates() {
    // The scan above is only exhaustive if every crate is actually under
    // crates/ — a crate added elsewhere would dodge the guard.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
    assert!(
        text.contains("members = [\"crates/*\"]"),
        "workspace members moved; update offline_manifests.rs to scan them"
    );
    assert!(
        workspace_manifests().len() >= 11,
        "expected root + 10 crates"
    );
}
