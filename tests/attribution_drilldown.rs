//! The Fig. 10 per-function drill-down: the attribution matrix must be a
//! true decomposition of the aggregate accounting (every cycle in exactly
//! one function × category cell), and it must localize the paper's
//! Sec. 4.3 pathology — under the general speculation model at ILP-CS,
//! the gcc stand-in's kernel time concentrates in the function issuing
//! wild speculative loads.

use epic_driver::{measure_traced, CompileOptions, OptLevel};
use epic_sim::{SimOptions, CATEGORIES};
use epic_trace::Trace;

#[test]
fn vortex_matrix_columns_reproduce_aggregate_accounting() {
    let w = epic_workloads::by_name("vortex_mc").unwrap();
    let m = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::IlpCs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    let sim = &m.sim;
    for cat in CATEGORIES {
        assert_eq!(
            sim.func_matrix.col_total(cat),
            sim.acct.get(cat),
            "column {} must sum to the aggregate",
            cat.name()
        );
    }
    assert_eq!(sim.func_matrix.total(), sim.cycles);
    assert_eq!(
        sim.func_matrix.by_func().iter().sum::<u64>(),
        sim.cycles,
        "row totals must sum to total cycles"
    );
    sim.check_identity().expect("identity");
    // every simulated function row is present
    assert_eq!(sim.func_matrix.num_funcs(), m.compiled.func_names.len());
}

#[test]
fn gcc_kernel_cycles_concentrate_in_the_wild_load_function() {
    let w = epic_workloads::by_name("gcc_mc").unwrap();
    let m = measure_traced(
        &w,
        &CompileOptions::for_level(OptLevel::IlpCs),
        &SimOptions::default(),
        &Trace::disabled(),
    )
    .unwrap();
    let sim = &m.sim;
    assert!(
        sim.counters.wild_loads > 0,
        "gcc stand-in must issue wild loads at ILP-CS under the general model"
    );
    let kernel_total = sim.acct.kernel();
    assert!(kernel_total > 0);
    // `scan` holds the if-converted union-dereference diamond that
    // speculation turns into wild loads (paper Sec. 4.3)
    let scan = m
        .compiled
        .func_names
        .iter()
        .position(|n| n == "scan")
        .expect("gcc stand-in has a scan function");
    let scan_kernel = sim.func_matrix.get(scan, epic_sim::Category::Kernel);
    assert!(
        2 * scan_kernel > kernel_total,
        "kernel cycles must concentrate in scan: {scan_kernel} of {kernel_total}"
    );
    // and scan dominates the benchmark's total time there, the Fig. 10
    // "one bar got wider" shape
    let max_row = (0..sim.func_matrix.num_funcs())
        .max_by_key(|&f| sim.func_matrix.row_total(f))
        .unwrap();
    assert_eq!(max_row, scan, "scan must be the hottest function");
}
