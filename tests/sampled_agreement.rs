//! Sampled-vs-exact validation (DESIGN.md §12): the SimPoint-style
//! sampler must agree with the exact simulator within its error budget
//! on real workloads, `SamplePolicy::Exact` must be bit-identical to
//! the pre-sampling simulator, and warmup handling must respect the
//! documented boundary/bracketing invariants.
//!
//! The non-ignored tests run the small workloads so the debug-build
//! suite stays fast; the full 12×4 matrix rides behind `#[ignore]` and
//! is exercised in release by `scripts/ci.sh` (via `epicc sample
//! --bench`, which also enforces the wall-clock gate).

use epic_driver::{compile, compile_source, CompileOptions, OptLevel};
use epic_sim::{SamplePolicy, SimOptions, SimResult, Warmup, CATEGORIES};

/// Total-cycle relative error budget per cell.
const MAX_TOTAL_ERR: f64 = 0.05;
/// Per-category relative error budget...
const MAX_CAT_ERR: f64 = 0.10;
/// ...with an absolute slack of this fraction of total cycles, so a
/// category holding 100 of 10M cycles may wobble without failing (its
/// relative error is meaningless at that size).
const CAT_SLACK: f64 = 0.01;

fn run_pair(name: &str, level: OptLevel, policy: SamplePolicy) -> (SimResult, SimResult) {
    let w = epic_workloads::by_name(name).unwrap();
    let c = compile(&w, &CompileOptions::for_level(level)).unwrap();
    let exact = epic_sim::run(&c.mach, &w.ref_args, &SimOptions::default()).unwrap();
    let sampled = epic_sim::run(
        &c.mach,
        &w.ref_args,
        &SimOptions {
            sample: policy,
            ..SimOptions::default()
        },
    )
    .unwrap();
    (exact, sampled)
}

fn assert_cell_agrees(name: &str, level: OptLevel) {
    let (exact, sampled) = run_pair(name, level, SamplePolicy::default_sampled());
    let tag = format!("{name} {}", level.name());

    // functional results are exact, never extrapolated
    assert_eq!(sampled.output, exact.output, "{tag}: output diverged");
    assert_eq!(sampled.ret, exact.ret, "{tag}: return value diverged");
    assert_eq!(sampled.checksum, exact.checksum, "{tag}: checksum diverged");

    // the extrapolated numbers still satisfy the accounting identity
    sampled.check_identity().unwrap();

    let err = (sampled.cycles as f64 - exact.cycles as f64).abs() / exact.cycles.max(1) as f64;
    assert!(
        err <= MAX_TOTAL_ERR,
        "{tag}: total-cycle error {:.3}% exceeds {:.1}%",
        err * 100.0,
        MAX_TOTAL_ERR * 100.0
    );

    let slack = CAT_SLACK * exact.cycles as f64;
    for cat in CATEGORIES {
        let (s, e) = (sampled.acct.get(cat) as f64, exact.acct.get(cat) as f64);
        let d = (s - e).abs();
        assert!(
            d <= MAX_CAT_ERR * e + slack,
            "{tag}: category {} off by {d:.0} cycles (sampled {s}, exact {e})",
            cat.name()
        );
    }

    let info = sampled.sample.expect("sampled run carries metadata");
    assert!(info.est_error.is_finite() && info.est_error >= 0.0);
    assert_eq!(info.phases.len(), info.intervals);
    assert!(info.total_ops > 0);
    assert!(info.sampled_ops <= info.total_ops);
}

/// Debug-build-friendly subset: the four cheapest workloads, all levels.
#[test]
fn sampled_agrees_with_exact_on_small_workloads() {
    for name in ["gzip_mc", "eon_mc", "vortex_mc", "bzip2_mc"] {
        for level in OptLevel::ALL {
            assert_cell_agrees(name, level);
        }
    }
}

/// The full 12×4 agreement matrix. Slow in debug builds — run with
/// `cargo test --release -- --ignored` or let `scripts/ci.sh` cover it
/// through `epicc sample --bench` (same assertions plus the wall-clock
/// gate).
#[test]
#[ignore = "full matrix is release-speed work; ci.sh covers it"]
fn sampled_agrees_with_exact_full_matrix() {
    for w in epic_workloads::all() {
        for level in OptLevel::ALL {
            assert_cell_agrees(w.name, level);
        }
    }
}

/// `SamplePolicy::Exact` must be indistinguishable from the default
/// options — same cycles, accounting, counters, matrix, output — bit
/// for bit.
#[test]
fn exact_policy_is_bit_identical() {
    for (name, level) in [("bzip2_mc", OptLevel::IlpCs), ("gzip_mc", OptLevel::Gcc)] {
        let (exact, via_policy) = run_pair(name, level, SamplePolicy::Exact);
        assert_eq!(via_policy.output, exact.output);
        assert_eq!(via_policy.checksum, exact.checksum);
        assert_eq!(via_policy.ret, exact.ret);
        assert_eq!(via_policy.cycles, exact.cycles);
        assert_eq!(via_policy.acct, exact.acct);
        assert_eq!(via_policy.counters, exact.counters);
        assert_eq!(via_policy.func_matrix, exact.func_matrix);
        assert!(
            via_policy.sample.is_none(),
            "Exact policy carries no sample info"
        );
    }
}

/// Interval boundaries are deterministic and well-formed: profiling the
/// same run twice slices it identically, boundaries strictly increase,
/// and the last boundary is the run's total op count. (Group alignment
/// itself is enforced inside the sampler: the detailed replay
/// `debug_assert!`s that every representative window lands exactly on
/// its profiled boundary, so any split-group boundary fails the debug
/// suite through `sampled_agrees_with_exact_on_small_workloads`.)
#[test]
fn phase_profile_boundaries_are_deterministic_and_monotonic() {
    let w = epic_workloads::by_name("vortex_mc").unwrap();
    let c = compile(&w, &CompileOptions::for_level(OptLevel::IlpNs)).unwrap();
    let a = epic_sim::phase_profile(&c.mach, &w.ref_args, &SimOptions::default(), 20_000).unwrap();
    let b = epic_sim::phase_profile(&c.mach, &w.ref_args, &SimOptions::default(), 20_000).unwrap();
    assert_eq!(a.ends, b.ends, "profiling must be deterministic");
    assert_eq!(a.bbvs, b.bbvs);
    assert!(
        a.ends.windows(2).all(|p| p[0] < p[1]),
        "boundaries must strictly increase"
    );
    assert_eq!(*a.ends.last().unwrap(), a.total_ops);
    assert_eq!(a.total_ops, b.total_ops);
    // BBV mass equals the interval's op count: nothing double-counted
    // across a boundary, nothing dropped.
    let mut prev = 0;
    for (i, &end) in a.ends.iter().enumerate() {
        let mass: u64 = a.bbvs[i].iter().sum();
        assert_eq!(mass, end - prev, "interval {i} BBV mass != op count");
        prev = end;
    }
}

/// Warmup charges never leak into the extrapolated totals: whatever the
/// warmup mode, the accounting identity (every cycle charged exactly
/// once, to one function and one category) holds on the sampled result.
#[test]
fn warmup_charges_are_excluded_from_totals() {
    for warmup in [Warmup::Cold, Warmup::Ops(50_000), Warmup::Full] {
        let policy = SamplePolicy::Sampled {
            interval_len: 10_000,
            max_clusters: 8,
            warmup,
        };
        let (exact, sampled) = run_pair("bzip2_mc", OptLevel::IlpNs, policy);
        sampled.check_identity().unwrap();
        assert_eq!(sampled.output, exact.output, "warmup {warmup:?} diverged");
        assert!(sampled.cycles > 0);
    }
}

/// A microbenchmark built to thrash the caches: a strided walk over a
/// buffer far larger than L1D, so a representative interval's cycle
/// count depends heavily on how warm the hierarchy is at injection.
/// Cold injection overestimates misses (so cycles); full functional
/// warming reproduces the continuously-warm state. Exact must be
/// bracketed: cold above, and full strictly closer than cold.
#[test]
fn cold_and_full_warmup_bracket_exact_on_cache_thrasher() {
    let src = r#"
global buf: [int; 16384];
global acc: int;

fn main(n: int, stride: int) -> int {
    let round = 0;
    while round < n {
        let i = 0;
        while i < 16384 {
            acc = acc + buf[i];
            buf[i] = acc & 1023;
            i = i + stride;
        }
        round = round + 1;
    }
    out(acc);
    return acc & 255;
}
"#;
    let args: Vec<i64> = vec![120, 17];
    let opts = CompileOptions::for_level(OptLevel::IlpNs);
    let c = compile_source(src, &args, &args, &opts).unwrap();
    let exact = epic_sim::run(&c.mach, &args, &SimOptions::default()).unwrap();
    let run_with = |warmup| {
        let policy = SamplePolicy::Sampled {
            interval_len: 8_000,
            max_clusters: 6,
            warmup,
        };
        epic_sim::run(
            &c.mach,
            &args,
            &SimOptions {
                sample: policy,
                ..SimOptions::default()
            },
        )
        .unwrap()
    };
    let cold = run_with(Warmup::Cold);
    let full = run_with(Warmup::Full);
    assert!(
        cold.cycles >= exact.cycles,
        "cold injection must overestimate: cold {} < exact {}",
        cold.cycles,
        exact.cycles
    );
    let (dc, df) = (
        cold.cycles.abs_diff(exact.cycles),
        full.cycles.abs_diff(exact.cycles),
    );
    assert!(
        df < dc,
        "full warming must beat cold injection: |full-exact|={df} vs |cold-exact|={dc}"
    );
}
