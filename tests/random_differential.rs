//! Property-based differential testing: generate random (but well-formed,
//! terminating, trap-free) MiniC programs and check that every compiler
//! configuration produces exactly the reference interpreter's output.
//!
//! The generator covers arithmetic, shifts, comparisons, short-circuit
//! logic, nested ifs, bounded loops, masked array accesses, and calls —
//! the surfaces the structural transforms rewrite.

use epic_driver::{compile_source, CompileOptions, OptLevel};
use epic_sim::SimOptions;
use proptest::prelude::*;

/// Deterministic program generator from a seed.
struct Gen {
    seed: u64,
}

impl Gen {
    fn next(&mut self) -> u64 {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.seed >> 33
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// An expression over the in-scope variables.
    fn expr(&mut self, vars: &[String], depth: u32) -> String {
        if depth == 0 || self.pick(3) == 0 {
            return match self.pick(3) {
                0 => format!("{}", self.pick(100) as i64 - 50),
                1 if !vars.is_empty() => vars[self.pick(vars.len() as u64) as usize].clone(),
                _ => format!("g[{} & 63]", self.var_or_const(vars)),
            };
        }
        let a = self.expr(vars, depth - 1);
        let b = self.expr(vars, depth - 1);
        match self.pick(10) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} & {b})"),
            4 => format!("({a} | {b})"),
            5 => format!("({a} ^ {b})"),
            6 => format!("({a} << {})", self.pick(8)),
            7 => format!("({a} >> {})", self.pick(8)),
            8 => format!("(({a}) < ({b}))"),
            _ => format!("(({a}) == ({b}))"),
        }
    }

    fn var_or_const(&mut self, vars: &[String]) -> String {
        if !vars.is_empty() && self.pick(2) == 0 {
            vars[self.pick(vars.len() as u64) as usize].clone()
        } else {
            format!("{}", self.pick(64))
        }
    }

    fn cond(&mut self, vars: &[String]) -> String {
        let a = self.expr(vars, 1);
        let b = self.expr(vars, 1);
        let base = match self.pick(4) {
            0 => format!("({a}) < ({b})"),
            1 => format!("({a}) != ({b})"),
            2 => format!("({a}) >= ({b})"),
            _ => format!("(({a}) & 1) == 0"),
        };
        match self.pick(4) {
            0 => format!("{base} && ({}) < 40", self.expr(vars, 0)),
            1 => format!("{base} || ({}) > 9000", self.expr(vars, 0)),
            _ => base,
        }
    }

    fn stmts(&mut self, vars: &mut Vec<String>, depth: u32, budget: &mut u32) -> String {
        let mut out = String::new();
        let n = 2 + self.pick(4);
        for _ in 0..n {
            if *budget == 0 {
                break;
            }
            *budget -= 1;
            match self.pick(8) {
                0 | 1 => {
                    // new local
                    let name = format!("v{}", vars.len());
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("let {name} = {e};\n"));
                    vars.push(name);
                }
                2 | 3 if !vars.is_empty() => {
                    // never assign to loop counters (names `i*`): a
                    // clobbered counter can make the loop non-terminating
                    let assignable: Vec<&String> =
                        vars.iter().filter(|v| !v.starts_with('i')).collect();
                    if let Some(v) = (!assignable.is_empty())
                        .then(|| assignable[self.pick(assignable.len() as u64) as usize].clone())
                    {
                        let e = self.expr(vars, 2);
                        out.push_str(&format!("{v} = {e};\n"));
                    }
                }
                4 => {
                    let idx = self.var_or_const(vars);
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("g[{idx} & 63] = {e};\n"));
                }
                5 if depth > 0 => {
                    let c = self.cond(vars);
                    let scope0 = vars.len();
                    let t = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    let e = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    out.push_str(&format!("if {c} {{\n{t}}} else {{\n{e}}}\n"));
                }
                6 if depth > 0 => {
                    // bounded counter loop
                    let name = format!("i{}", vars.len());
                    let limit = 2 + self.pick(12);
                    let scope0 = vars.len();
                    out.push_str(&format!("let {name} = 0;\nwhile {name} < {limit} {{\n"));
                    vars.push(name.clone());
                    let body = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    out.push_str(&body);
                    out.push_str(&format!("{name} = {name} + 1;\n}}\n"));
                }
                _ => {
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("out({e});\n"));
                }
            }
        }
        out
    }

    fn program(&mut self) -> String {
        let mut vars: Vec<String> = vec!["a0".into(), "a1".into()];
        let mut budget = 60u32;
        let helper_body = {
            let mut hvars = vec!["x".to_string(), "y".to_string()];
            let mut hbudget = 12u32;
            self.stmts(&mut hvars, 1, &mut hbudget)
        };
        let hret = self.expr(&["x".to_string(), "y".to_string()], 2);
        let body = self.stmts(&mut vars, 3, &mut budget);
        let call = format!("out(helper({}, {}));\n", self.expr(&vars, 1), self.expr(&vars, 1));
        let tail = "let k = 0;\nlet h = 0;\nwhile k < 64 { h = h * 31 + g[k]; k = k + 1; }\nout(h);\n";
        format!(
            "global g: [int; 64];\n\
             fn helper(x: int, y: int) -> int {{\n{helper_body}return {hret};\n}}\n\
             fn main(a0: int, a1: int) {{\n{body}{call}{tail}}}\n"
        )
    }
}

/// Expose the generator for the scratch debug test.
pub fn gen_program_for_debug(seed: u64) -> String {
    Gen { seed }.program()
}

fn check_seed(seed: u64) {
    let src = Gen { seed }.program();
    let prog = epic_lang::compile(&src)
        .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
    let args = [(seed % 97) as i64, (seed % 13) as i64];
    let want = epic_ir::interp::run(&prog, &args, Default::default())
        .unwrap_or_else(|e| panic!("oracle trapped: {e}\n{src}"))
        .output;
    for level in OptLevel::ALL {
        let compiled = compile_source(&src, &args, &args, &CompileOptions::for_level(level))
            .unwrap_or_else(|e| panic!("compile at {} failed: {e}\n{src}", level.name()));
        let sim = epic_sim::run(&compiled.mach, &args, &SimOptions::default())
            .unwrap_or_else(|e| panic!("sim at {} trapped: {e}\n{src}", level.name()));
        assert_eq!(sim.output, want, "seed {seed} at {}:\n{src}", level.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_survive_every_pipeline(seed in any::<u64>()) {
        check_seed(seed);
    }
}

#[test]
fn known_seeds_regression() {
    // pin a few seeds so CI failures reproduce deterministically;
    // 8995186070513442161 found the extended-block liveness bug (a value
    // escaping through an early side exit hidden by a later kill)
    for seed in [0u64, 1, 42, 0xDEADBEEF, 0x12345678_9ABCDEF0, 8995186070513442161] {
        check_seed(seed);
    }
}
