//! Differential testing: generate random (but well-formed, terminating,
//! trap-free) MiniC programs and check that every compiler configuration
//! produces exactly the reference interpreter's output.
//!
//! The generator ([`epic_ir::testing::MiniCGen`]) covers arithmetic,
//! shifts, comparisons, short-circuit logic, nested ifs, bounded loops,
//! masked array accesses, and calls — the surfaces the structural
//! transforms rewrite. Seeds are drawn from a fixed in-repo PRNG, so the
//! suite is deterministic, offline, and identical on every machine; the
//! PRNG itself is the same LCG the original proptest harness used, so the
//! saved regression seeds regenerate the exact same programs.

use epic_driver::{compile_source, CompileOptions, OptLevel};
use epic_ir::testing::{minic_program, Rng};
use epic_sim::SimOptions;

/// Expose the generator for the scratch debug test.
pub fn gen_program_for_debug(seed: u64) -> String {
    minic_program(seed)
}

fn check_seed(seed: u64) {
    let src = minic_program(seed);
    let prog = epic_lang::compile(&src)
        .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
    let args = [(seed % 97) as i64, (seed % 13) as i64];
    let want = epic_ir::interp::run(&prog, &args, Default::default())
        .unwrap_or_else(|e| panic!("oracle trapped: {e}\n{src}"))
        .output;
    for level in OptLevel::ALL {
        let mut copts = CompileOptions::for_level(level);
        // The differential suite doubles as the pipeline's debug gate:
        // verify the IR after every single pass.
        copts.verify_each_pass = true;
        let compiled = compile_source(&src, &args, &args, &copts)
            .unwrap_or_else(|e| panic!("compile at {} failed: {e}\n{src}", level.name()));
        let sim = epic_sim::run(&compiled.mach, &args, &SimOptions::default())
            .unwrap_or_else(|e| panic!("sim at {} trapped: {e}\n{src}", level.name()));
        assert_eq!(sim.output, want, "seed {seed} at {}:\n{src}", level.name());
    }
}

#[test]
fn random_programs_survive_every_pipeline() {
    // Same case count the proptest config used; seeds come from a fixed
    // base so failures reproduce by rerunning the test.
    let base = Rng::new(0xD1FF_E4E2);
    for case in 0..24 {
        check_seed(base.derive(case).next_u64());
    }
}

#[test]
fn known_seeds_regression() {
    // pin a few seeds so CI failures reproduce deterministically;
    // 8995186070513442161 found the extended-block liveness bug (a value
    // escaping through an early side exit hidden by a later kill) and is
    // the shrunken case from the retired .proptest-regressions file
    for seed in [
        0u64,
        1,
        42,
        0xDEADBEEF,
        0x12345678_9ABCDEF0,
        8995186070513442161,
    ] {
        check_seed(seed);
    }
}
