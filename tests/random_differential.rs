//! Differential testing: generate random (but well-formed, terminating,
//! trap-free) MiniC programs and check that every compiler configuration
//! produces exactly the reference interpreter's output.
//!
//! The generator ([`epic_ir::testing::MiniCGen`]) covers arithmetic,
//! shifts, comparisons, short-circuit logic, nested ifs, bounded loops,
//! masked array accesses, and calls — the surfaces the structural
//! transforms rewrite. Seeds are drawn from a fixed in-repo PRNG, so the
//! suite is deterministic, offline, and identical on every machine; the
//! PRNG itself is the same LCG the original proptest harness used, so the
//! saved regression seeds regenerate the exact same programs.

use epic_driver::{compile_source, CompileOptions, OptLevel};
use epic_ir::testing::{minic_program, Rng};
use epic_sim::SimOptions;

/// Expose the generator for the scratch debug test.
pub fn gen_program_for_debug(seed: u64) -> String {
    minic_program(seed)
}

/// Check one MiniC source against the interpreter at every level — the
/// paste target for `epic-fuzz` shrinker reproducers, which emit a
/// ready-made `check_source(r#"…"#, [a, b])` call.
fn check_source(src: &str, args: [i64; 2]) {
    let prog =
        epic_lang::compile(src).unwrap_or_else(|e| panic!("program failed to compile: {e}\n{src}"));
    let want = epic_ir::interp::run(&prog, &args, Default::default())
        .unwrap_or_else(|e| panic!("oracle trapped: {e}\n{src}"))
        .output;
    for level in OptLevel::ALL {
        let mut copts = CompileOptions::for_level(level);
        // The differential suite doubles as the pipeline's debug gate:
        // verify the IR after every single pass.
        copts.verify_each_pass = true;
        let compiled = compile_source(src, &args, &args, &copts)
            .unwrap_or_else(|e| panic!("compile at {} failed: {e}\n{src}", level.name()));
        let sim = epic_sim::run(&compiled.mach, &args, &SimOptions::default())
            .unwrap_or_else(|e| panic!("sim at {} trapped: {e}\n{src}", level.name()));
        assert_eq!(
            sim.output,
            want,
            "args {args:?} at {}:\n{src}",
            level.name()
        );
    }
}

fn check_seed(seed: u64) {
    check_source(
        &minic_program(seed),
        [(seed % 97) as i64, (seed % 13) as i64],
    );
}

/// Differential case count: `EPIC_DIFF_CASES` if set (deep local runs),
/// else the CI default of 24.
fn case_count() -> u64 {
    std::env::var("EPIC_DIFF_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(24)
}

#[test]
fn random_programs_survive_every_pipeline() {
    // Same default case count the proptest config used; seeds come from a
    // fixed base so failures reproduce by rerunning the test (at or above
    // the failing EPIC_DIFF_CASES, since case i's seed is independent of
    // the count).
    let base = Rng::new(0xD1FF_E4E2);
    for case in 0..case_count() {
        check_seed(base.derive(case).next_u64());
    }
}

#[test]
fn known_seeds_regression() {
    // pin a few seeds so CI failures reproduce deterministically;
    // 8995186070513442161 found the extended-block liveness bug (a value
    // escaping through an early side exit hidden by a later kill) and is
    // the shrunken case from the retired .proptest-regressions file
    for seed in [
        0u64,
        1,
        42,
        0xDEADBEEF,
        0x12345678_9ABCDEF0,
        8995186070513442161,
    ] {
        check_seed(seed);
    }
}
