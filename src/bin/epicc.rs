//! `epicc` — command-line front end to the IMPACT EPIC reproduction.
//!
//! Compile a MiniC source file at a chosen optimization level, then dump
//! IR, disassemble machine code, or run it on the Itanium-2-like
//! simulator with full cycle accounting.
//!
//! ```text
//! epicc prog.mc                          # compile + simulate at ILP-CS
//! epicc prog.mc --level o-ns --args 3,4  # pass main() arguments
//! epicc prog.mc --emit mach              # disassemble bundles
//! epicc prog.mc --emit ir                # post-transform IR
//! epicc --workload crafty_mc --level all # sweep a bundled workload
//! epicc prog.mc --spec-model sentinel    # Fig. 9 recovery model
//! epicc report --workload vortex_mc      # Fig. 5 table + Fig. 10 drill-down
//! ```

use epic_driver::{compile_source, CompileOptions, OptLevel};
use epic_sim::{Category, SimOptions, SimResult, SpecModel, CATEGORIES};
use std::process::ExitCode;

struct Args {
    source: Option<String>,
    workload: Option<String>,
    levels: Vec<OptLevel>,
    emit: Emit,
    main_args: Vec<i64>,
    spec_model: SpecModel,
    report: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Emit {
    Sim,
    Ir,
    Mach,
}

fn usage() -> ! {
    eprintln!(
        "usage: epicc <file.mc> [--level gcc|o-ns|ilp-ns|ilp-cs|all] [--emit sim|ir|mach]\n\
         \x20            [--args a,b,...] [--spec-model general|sentinel]\n\
         \x20      epicc --workload <name> [...]   (bundled SPEC stand-ins; see epic-workloads)\n\
         \x20      epicc report (<file.mc> | --workload <name>) [--level ...]\n\
         \x20            Fig. 5 cycle-accounting table + Fig. 10 per-function drill-down"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        source: None,
        workload: None,
        levels: vec![OptLevel::IlpCs],
        emit: Emit::Sim,
        main_args: Vec::new(),
        spec_model: SpecModel::General,
        report: false,
    };
    let mut first_positional = true;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "report" if first_positional => {
                args.report = true;
                args.levels = OptLevel::ALL.to_vec();
                first_positional = false;
            }
            "--level" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.levels = match v.as_str() {
                    "gcc" => vec![OptLevel::Gcc],
                    "o-ns" => vec![OptLevel::ONs],
                    "ilp-ns" => vec![OptLevel::IlpNs],
                    "ilp-cs" => vec![OptLevel::IlpCs],
                    "all" => OptLevel::ALL.to_vec(),
                    _ => usage(),
                };
            }
            "--emit" => {
                args.emit = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "sim" => Emit::Sim,
                    "ir" => Emit::Ir,
                    "mach" => Emit::Mach,
                    _ => usage(),
                };
            }
            "--args" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.main_args = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--spec-model" => {
                args.spec_model = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "general" => SpecModel::General,
                    "sentinel" => SpecModel::Sentinel,
                    _ => usage(),
                };
            }
            "--workload" => args.workload = Some(it.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            path if !path.starts_with('-') => {
                args.source = Some(path.to_string());
                first_positional = false;
            }
            _ => usage(),
        }
    }
    if args.source.is_none() && args.workload.is_none() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let (src, train, mut run_args) = match (&args.source, &args.workload) {
        (Some(path), _) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("epicc: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (src, args.main_args.clone(), args.main_args.clone())
        }
        (None, Some(name)) => match epic_workloads::by_name(name) {
            Some(w) => (
                w.source.to_string(),
                w.train_args.clone(),
                w.ref_args.clone(),
            ),
            None => {
                eprintln!(
                    "epicc: unknown workload `{name}`; available: {}",
                    epic_workloads::all()
                        .iter()
                        .map(|w| w.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
        _ => unreachable!("parse_args enforces one input"),
    };
    if !args.main_args.is_empty() {
        run_args = args.main_args.clone();
    }

    for &level in &args.levels {
        let compiled =
            match compile_source(&src, &train, &run_args, &CompileOptions::for_level(level)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("epicc [{}]: {e}", level.name());
                    return ExitCode::FAILURE;
                }
            };
        if args.report {
            let sim = match epic_sim::run(
                &compiled.mach,
                &run_args,
                &SimOptions {
                    spec_model: args.spec_model,
                    ..Default::default()
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("epicc [{}]: simulation trapped: {e}", level.name());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sim.check_identity() {
                eprintln!(
                    "epicc [{}]: accounting identity violated: {e}",
                    level.name()
                );
                return ExitCode::FAILURE;
            }
            let names: Vec<&str> = compiled
                .mach
                .funcs
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            print_report(level, &sim, &names);
            continue;
        }
        match args.emit {
            Emit::Ir => {
                println!("; === {} ===", level.name());
                for f in &compiled.mach.ir.funcs {
                    println!("{f}");
                }
            }
            Emit::Mach => {
                println!("; === {} ===", level.name());
                for f in &compiled.mach.funcs {
                    println!("{}", epic_mach::program::disasm(f));
                }
            }
            Emit::Sim => {
                let sim = match epic_sim::run(
                    &compiled.mach,
                    &run_args,
                    &SimOptions {
                        spec_model: args.spec_model,
                        ..Default::default()
                    },
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("epicc [{}]: simulation trapped: {e}", level.name());
                        return ExitCode::FAILURE;
                    }
                };
                println!("[{}]", level.name());
                println!("  output    {:?}", sim.output);
                println!("  cycles    {}", sim.cycles);
                println!(
                    "  IPC       {:.2} achieved / {:.2} planned",
                    sim.counters.retired_useful as f64 / sim.cycles as f64,
                    compiled.plan.planned_ipc()
                );
                println!(
                    "  ops       {} useful, {} squashed, {} nops",
                    sim.counters.retired_useful,
                    sim.counters.retired_squashed,
                    sim.counters.retired_nops
                );
                println!(
                    "  cycles/cat unstalled {} | ld {} | fe {} | br {} | rse {} | kernel {} | misc {}",
                    sim.acct.unstalled(),
                    sim.acct.int_load_bubble(),
                    sim.acct.front_end_bubble(),
                    sim.acct.br_mispredict_flush(),
                    sim.acct.register_stack(),
                    sim.acct.kernel(),
                    sim.acct.misc() + sim.acct.float_scoreboard() + sim.acct.micropipe(),
                );
                println!(
                    "  code      {} bytes, {} loads promoted, {} wild loads",
                    compiled.code_bytes, compiled.ilp.loads_promoted, sim.counters.wild_loads
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// Short column header for one Fig. 5 category.
fn short_name(cat: Category) -> &'static str {
    match cat {
        Category::Unstalled => "unstall",
        Category::FloatScoreboard => "float",
        Category::Misc => "misc",
        Category::IntLoadBubble => "ldbub",
        Category::Micropipe => "upipe",
        Category::FrontEndBubble => "febub",
        Category::BrMispredictFlush => "brflush",
        Category::RegisterStack => "rse",
        Category::Kernel => "kernel",
    }
}

/// Render the Fig. 5 stacked cycle table and the Fig. 10 per-function
/// drill-down for one level. Pure function of the sim result, so output
/// is deterministic (ties in the function sort break by function index).
fn print_report(level: OptLevel, sim: &SimResult, func_names: &[&str]) {
    let total = sim.cycles.max(1);
    println!("=== {} ===", level.name());
    println!("cycle accounting (Fig. 5):");
    println!("  {:<20} {:>14} {:>7}", "category", "cycles", "%");
    for cat in CATEGORIES {
        let c = sim.acct.get(cat);
        println!(
            "  {:<20} {:>14} {:>6.1}%",
            cat.name(),
            c,
            100.0 * c as f64 / total as f64
        );
    }
    println!("  {:<20} {:>14} {:>6.1}%", "total", sim.cycles, 100.0);
    println!();
    println!("per-function drill-down (Fig. 10):");
    print!("  {:<16} {:>14} {:>7}", "function", "cycles", "%");
    for cat in CATEGORIES {
        print!(" {:>9}", short_name(cat));
    }
    println!();
    let mut order: Vec<usize> = (0..sim.func_matrix.num_funcs()).collect();
    order.sort_by_key(|&f| (std::cmp::Reverse(sim.func_matrix.row_total(f)), f));
    for f in order {
        let row_total = sim.func_matrix.row_total(f);
        if row_total == 0 {
            continue;
        }
        let name = func_names.get(f).copied().unwrap_or("?");
        print!(
            "  {:<16} {:>14} {:>6.1}%",
            name,
            row_total,
            100.0 * row_total as f64 / total as f64
        );
        for &c in sim.func_matrix.row(f) {
            print!(" {:>9}", c);
        }
        println!();
    }
    println!();
}
