//! `epicc` — command-line front end to the IMPACT EPIC reproduction.
//!
//! Compile a MiniC source file at a chosen optimization level, then dump
//! IR, disassemble machine code, or run it on the Itanium-2-like
//! simulator with full cycle accounting.
//!
//! ```text
//! epicc prog.mc                          # compile + simulate at ILP-CS
//! epicc prog.mc --level o-ns --args 3,4  # pass main() arguments
//! epicc prog.mc --emit mach              # disassemble bundles
//! epicc prog.mc --emit ir                # post-transform IR
//! epicc --workload crafty_mc --level all # sweep a bundled workload
//! epicc prog.mc --spec-model sentinel    # Fig. 9 recovery model
//! epicc report --workload vortex_mc      # Fig. 5 table + Fig. 10 drill-down
//! ```
//!
//! Job-service mode (see DESIGN.md §8):
//!
//! ```text
//! epicc serve [--listen A] [--cache-dir D] [--workers N] [--queue-cap N]
//! epicc submit --addr A [--workload N|all] [--level L|all] [--threads N]
//! epicc matrix [--level L|all] [--cache-dir D] [--no-cache]
//! epicc stats --addr A
//! epicc shutdown --addr A
//! ```
//!
//! `submit` and `matrix` print identical, deterministic `cell` lines
//! (workload, level, cycles, checksum, content digest), so CI can diff a
//! served sweep against a direct in-process one byte for byte.

use epic_driver::{compile_source, CompileOptions, OptLevel};
use epic_sim::{Category, SimOptions, SimResult, SpecModel, CATEGORIES};
use std::process::ExitCode;

struct Args {
    source: Option<String>,
    workload: Option<String>,
    levels: Vec<OptLevel>,
    emit: Emit,
    main_args: Vec<i64>,
    spec_model: SpecModel,
    report: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Emit {
    Sim,
    Ir,
    Mach,
}

fn usage() -> ! {
    eprintln!(
        "usage: epicc <file.mc> [--level gcc|o-ns|ilp-ns|ilp-cs|all] [--emit sim|ir|mach]\n\
         \x20            [--args a,b,...] [--spec-model general|sentinel]\n\
         \x20      epicc --workload <name> [...]   (bundled SPEC stand-ins; see epic-workloads)\n\
         \x20      epicc report (<file.mc> | --workload <name>) [--level ...]\n\
         \x20            Fig. 5 cycle-accounting table + Fig. 10 per-function drill-down"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        source: None,
        workload: None,
        levels: vec![OptLevel::IlpCs],
        emit: Emit::Sim,
        main_args: Vec::new(),
        spec_model: SpecModel::General,
        report: false,
    };
    let mut first_positional = true;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "report" if first_positional => {
                args.report = true;
                args.levels = OptLevel::ALL.to_vec();
                first_positional = false;
            }
            "--level" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.levels = match v.as_str() {
                    "gcc" => vec![OptLevel::Gcc],
                    "o-ns" => vec![OptLevel::ONs],
                    "ilp-ns" => vec![OptLevel::IlpNs],
                    "ilp-cs" => vec![OptLevel::IlpCs],
                    "all" => OptLevel::ALL.to_vec(),
                    _ => usage(),
                };
            }
            "--emit" => {
                args.emit = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "sim" => Emit::Sim,
                    "ir" => Emit::Ir,
                    "mach" => Emit::Mach,
                    _ => usage(),
                };
            }
            "--args" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.main_args = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--spec-model" => {
                args.spec_model = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "general" => SpecModel::General,
                    "sentinel" => SpecModel::Sentinel,
                    _ => usage(),
                };
            }
            "--workload" => args.workload = Some(it.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            path if !path.starts_with('-') => {
                args.source = Some(path.to_string());
                first_positional = false;
            }
            _ => usage(),
        }
    }
    if args.source.is_none() && args.workload.is_none() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match argv.first().map(String::as_str) {
            Some("serve") => return serve_cmd(&argv[1..]),
            Some("submit") => return submit_cmd(&argv[1..]),
            Some("matrix") => return matrix_cmd(&argv[1..]),
            Some("stats") => return stats_cmd(&argv[1..]),
            Some("top") => return top_cmd(&argv[1..]),
            Some("shutdown") => return shutdown_cmd(&argv[1..]),
            _ => {}
        }
    }
    let args = parse_args();
    let (src, train, mut run_args) = match (&args.source, &args.workload) {
        (Some(path), _) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("epicc: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (src, args.main_args.clone(), args.main_args.clone())
        }
        (None, Some(name)) => match epic_workloads::by_name(name) {
            Some(w) => (
                w.source.to_string(),
                w.train_args.clone(),
                w.ref_args.clone(),
            ),
            None => {
                eprintln!(
                    "epicc: unknown workload `{name}`; available: {}",
                    epic_workloads::all()
                        .iter()
                        .map(|w| w.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
        _ => unreachable!("parse_args enforces one input"),
    };
    if !args.main_args.is_empty() {
        run_args = args.main_args.clone();
    }

    for &level in &args.levels {
        let compiled =
            match compile_source(&src, &train, &run_args, &CompileOptions::for_level(level)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("epicc [{}]: {e}", level.name());
                    return ExitCode::FAILURE;
                }
            };
        if args.report {
            let sim = match epic_sim::run(
                &compiled.mach,
                &run_args,
                &SimOptions {
                    spec_model: args.spec_model,
                    ..Default::default()
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("epicc [{}]: simulation trapped: {e}", level.name());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sim.check_identity() {
                eprintln!(
                    "epicc [{}]: accounting identity violated: {e}",
                    level.name()
                );
                return ExitCode::FAILURE;
            }
            let names: Vec<&str> = compiled
                .mach
                .funcs
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            print_report(level, &sim, &names);
            continue;
        }
        match args.emit {
            Emit::Ir => {
                println!("; === {} ===", level.name());
                for f in &compiled.mach.ir.funcs {
                    println!("{f}");
                }
            }
            Emit::Mach => {
                println!("; === {} ===", level.name());
                for f in &compiled.mach.funcs {
                    println!("{}", epic_mach::program::disasm(f));
                }
            }
            Emit::Sim => {
                let sim = match epic_sim::run(
                    &compiled.mach,
                    &run_args,
                    &SimOptions {
                        spec_model: args.spec_model,
                        ..Default::default()
                    },
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("epicc [{}]: simulation trapped: {e}", level.name());
                        return ExitCode::FAILURE;
                    }
                };
                println!("[{}]", level.name());
                println!("  output    {:?}", sim.output);
                println!("  cycles    {}", sim.cycles);
                println!(
                    "  IPC       {:.2} achieved / {:.2} planned",
                    sim.counters.retired_useful as f64 / sim.cycles as f64,
                    compiled.plan.planned_ipc()
                );
                println!(
                    "  ops       {} useful, {} squashed, {} nops",
                    sim.counters.retired_useful,
                    sim.counters.retired_squashed,
                    sim.counters.retired_nops
                );
                println!(
                    "  cycles/cat unstalled {} | ld {} | fe {} | br {} | rse {} | kernel {} | misc {}",
                    sim.acct.unstalled(),
                    sim.acct.int_load_bubble(),
                    sim.acct.front_end_bubble(),
                    sim.acct.br_mispredict_flush(),
                    sim.acct.register_stack(),
                    sim.acct.kernel(),
                    sim.acct.misc() + sim.acct.float_scoreboard() + sim.acct.micropipe(),
                );
                println!(
                    "  code      {} bytes, {} loads promoted, {} wild loads",
                    compiled.code_bytes, compiled.ilp.loads_promoted, sim.counters.wild_loads
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// Short column header for one Fig. 5 category.
fn short_name(cat: Category) -> &'static str {
    match cat {
        Category::Unstalled => "unstall",
        Category::FloatScoreboard => "float",
        Category::Misc => "misc",
        Category::IntLoadBubble => "ldbub",
        Category::Micropipe => "upipe",
        Category::FrontEndBubble => "febub",
        Category::BrMispredictFlush => "brflush",
        Category::RegisterStack => "rse",
        Category::Kernel => "kernel",
    }
}

/// Render the Fig. 5 stacked cycle table and the Fig. 10 per-function
/// drill-down for one level. Pure function of the sim result, so output
/// is deterministic (ties in the function sort break by function index).
fn print_report(level: OptLevel, sim: &SimResult, func_names: &[&str]) {
    let total = sim.cycles.max(1);
    println!("=== {} ===", level.name());
    println!("cycle accounting (Fig. 5):");
    println!("  {:<20} {:>14} {:>7}", "category", "cycles", "%");
    for cat in CATEGORIES {
        let c = sim.acct.get(cat);
        println!(
            "  {:<20} {:>14} {:>6.1}%",
            cat.name(),
            c,
            100.0 * c as f64 / total as f64
        );
    }
    println!("  {:<20} {:>14} {:>6.1}%", "total", sim.cycles, 100.0);
    println!();
    println!("per-function drill-down (Fig. 10):");
    print!("  {:<16} {:>14} {:>7}", "function", "cycles", "%");
    for cat in CATEGORIES {
        print!(" {:>9}", short_name(cat));
    }
    println!();
    let mut order: Vec<usize> = (0..sim.func_matrix.num_funcs()).collect();
    order.sort_by_key(|&f| (std::cmp::Reverse(sim.func_matrix.row_total(f)), f));
    for f in order {
        let row_total = sim.func_matrix.row_total(f);
        if row_total == 0 {
            continue;
        }
        let name = func_names.get(f).copied().unwrap_or("?");
        print!(
            "  {:<16} {:>14} {:>6.1}%",
            name,
            row_total,
            100.0 * row_total as f64 / total as f64
        );
        for &c in sim.func_matrix.row(f) {
            print!(" {:>9}", c);
        }
        println!();
    }
    println!();
}

// --- job-service subcommands ------------------------------------------

/// One (workload, level) cell of the canonical sweep, in deterministic
/// (Table 1 × OptLevel::ALL) order.
fn sweep_cells(
    workload: &str,
    levels: &[OptLevel],
) -> Result<Vec<(epic_workloads::Workload, OptLevel)>, String> {
    let workloads = if workload == "all" {
        epic_workloads::all()
    } else {
        vec![epic_workloads::by_name(workload)
            .ok_or_else(|| format!("unknown workload `{workload}`"))?]
    };
    Ok(workloads
        .into_iter()
        .flat_map(|w| levels.iter().map(move |&l| (w.clone(), l)))
        .collect())
}

/// The shared `cell` line: everything in it is a pure function of the
/// job, so direct and served sweeps print identical bytes.
fn cell_line(w: &str, level: OptLevel, m: &epic_driver::Measurement) -> String {
    format!(
        "cell {w} {} cycles={} checksum={:016x} digest={}",
        level.name(),
        m.sim.cycles,
        m.sim.checksum,
        epic_serve::digest(m).hex()
    )
}

fn parse_levels(v: &str) -> Result<Vec<OptLevel>, String> {
    Ok(match v {
        "gcc" => vec![OptLevel::Gcc],
        "o-ns" => vec![OptLevel::ONs],
        "ilp-ns" => vec![OptLevel::IlpNs],
        "ilp-cs" => vec![OptLevel::IlpCs],
        "all" => OptLevel::ALL.to_vec(),
        other => return Err(format!("unknown level `{other}`")),
    })
}

/// Tiny flag parser shared by the service subcommands: alternating
/// `--flag value` pairs (plus bare switches listed in `switches`).
fn parse_kv(
    args: &[String],
    switches: &[&str],
) -> Result<std::collections::HashMap<String, String>, String> {
    let mut map = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if switches.contains(&a.as_str()) {
            map.insert(a.clone(), "1".to_string());
            continue;
        }
        if !a.starts_with("--") {
            return Err(format!("unexpected argument `{a}`"));
        }
        let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
        map.insert(a.clone(), v.clone());
    }
    Ok(map)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("epicc: {msg}");
    ExitCode::FAILURE
}

/// `epicc serve`: run the job daemon in-process (same engine as the
/// standalone `epicd` binary).
fn serve_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let listen = kv
        .get("--listen")
        .map_or("127.0.0.1:0", String::as_str)
        .to_string();
    let workers = kv.get("--workers").map_or(Ok(0), |v| v.parse());
    let queue_cap = kv.get("--queue-cap").map_or(Ok(256), |v| v.parse());
    let (Ok(workers), Ok(queue_cap)) = (workers, queue_cap) else {
        return fail("--workers/--queue-cap must be integers");
    };
    let store = match kv.get("--cache-dir") {
        Some(dir) => epic_serve::ArtifactStore::persistent(dir),
        None => epic_serve::ArtifactStore::in_memory(),
    };
    let sched = std::sync::Arc::new(epic_serve::Scheduler::new(
        std::sync::Arc::new(store),
        workers,
        queue_cap,
    ));
    let mut handle = match epic_serve::serve(&listen, sched) {
        Ok(h) => h,
        Err(e) => return fail(format!("bind {listen}: {e}")),
    };
    println!("epicd listening on {}", handle.addr());
    handle.wait();
    ExitCode::SUCCESS
}

/// `epicc submit`: drive a served sweep from N client threads and print
/// deterministic `cell` lines plus a `# hits=` summary.
fn submit_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let Some(addr) = kv.get("--addr") else {
        return fail("submit needs --addr HOST:PORT");
    };
    let levels = match parse_levels(kv.get("--level").map_or("all", String::as_str)) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let cells = match sweep_cells(kv.get("--workload").map_or("all", String::as_str), &levels) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let threads: usize = match kv.get("--threads").map_or(Ok(0), |v| v.parse()) {
        Ok(n) => n,
        Err(_) => return fail("--threads must be an integer"),
    };
    let threads = if threads == 0 {
        cells.len().min(8)
    } else {
        threads.min(cells.len().max(1))
    };
    // work-stealing over the cell list; results land by index so output
    // order is deterministic regardless of scheduling
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<Result<epic_serve::Served, String>>>> =
        cells.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut client = match epic_serve::Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        // mark every remaining cell failed
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            let Some(slot) = results.get(i) else { break };
                            *slot.lock().unwrap() = Some(Err(format!("connect {addr}: {e}")));
                        }
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let Some((w, level)) = cells.get(i) else {
                        break;
                    };
                    let spec = epic_serve::JobSpec::for_workload(w, *level);
                    let r = client
                        .submit(&spec, epic_serve::Priority::Normal, 0)
                        .map_err(|e| e.to_string());
                    *results[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    let (mut hits, mut misses) = (0u64, 0u64);
    for ((w, level), slot) in cells.iter().zip(&results) {
        match slot.lock().unwrap().take() {
            Some(Ok(served)) => {
                if served.cache_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                println!("{}", cell_line(w.name, *level, &served.measurement));
            }
            Some(Err(e)) => return fail(format!("{} {}: {e}", w.name, level.name())),
            None => return fail(format!("{} {}: not submitted", w.name, level.name())),
        }
    }
    println!("# hits={hits} misses={misses}");
    ExitCode::SUCCESS
}

/// `epicc matrix`: the same sweep measured directly in-process (through
/// the artifact cache unless `--no-cache`), printing the same `cell`
/// lines as `submit`. `--workload <name>` restricts the sweep;
/// `--trace` attaches a span tree + metrics to every cell and
/// self-validates the trees (round-trip through JSON, expected roots,
/// durations sum-checked against cell wall time) before printing a
/// final `trace-ok cells=N` line. The cell lines themselves are
/// byte-identical with and without `--trace`.
fn matrix_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &["--no-cache", "--trace"]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let levels = match parse_levels(kv.get("--level").map_or("all", String::as_str)) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let workloads = match kv.get("--workload").map_or("all", String::as_str) {
        "all" => epic_workloads::all(),
        name => match epic_workloads::by_name(name) {
            Some(w) => vec![w],
            None => return fail(format!("unknown workload `{name}`")),
        },
    };
    let store = match (kv.contains_key("--no-cache"), kv.get("--cache-dir")) {
        (true, _) | (false, None) => None,
        (false, Some(dir)) => Some(epic_serve::ArtifactStore::persistent(dir)),
    };
    let sopts = SimOptions::default();
    let trace = if kv.contains_key("--trace") {
        epic_driver::TracePolicy::Enabled
    } else {
        epic_driver::TracePolicy::Disabled
    };
    let report = match epic_driver::MeasureRequest::new(&workloads)
        .levels(&levels)
        .compile_options(&CompileOptions::for_level)
        .sim_options(sopts)
        .cache(match &store {
            Some(s) => epic_driver::CachePolicy::Store(s),
            None => epic_driver::CachePolicy::Disabled,
        })
        .trace(trace)
        .run()
    {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let (mut hits, mut misses) = (0u64, 0u64);
    for (w, row) in workloads.iter().zip(&report.cells) {
        for (level, cell) in levels.iter().zip(row) {
            if cell.cache_hit {
                hits += 1;
            } else {
                misses += 1;
            }
            println!("{}", cell_line(w.name, *level, &cell.measurement));
        }
    }
    println!("# hits={hits} misses={misses}");
    if trace == epic_driver::TracePolicy::Enabled {
        let mut checked = 0usize;
        for (w, row) in workloads.iter().zip(&report.cells) {
            for (level, cell) in levels.iter().zip(row) {
                if let Err(e) = validate_cell_trace(cell) {
                    return fail(format!("{} {}: {e}", w.name, level.name()));
                }
                checked += 1;
            }
        }
        println!("trace-ok cells={checked}");
    }
    ExitCode::SUCCESS
}

/// Well-formedness check for one traced cell: the span tree must
/// survive a JSON round-trip, carry the expected roots (`compile` and
/// `sim` for a fresh cell, `cache-lookup` for a hit), and its root
/// durations must sum to the cell's wall time within 5%.
fn validate_cell_trace(cell: &epic_driver::MeasuredCell) -> Result<(), String> {
    let snap = cell.trace.as_ref().ok_or("traced cell carries no trace")?;
    let j = epic_bench::json::trace_to_json(snap);
    let parsed = epic_bench::json::Json::parse(&j.render())
        .map_err(|e| format!("trace JSON does not re-parse: {e}"))?;
    let back = epic_bench::json::trace_from_json(&parsed)
        .map_err(|e| format!("trace JSON does not decode: {e}"))?;
    if epic_bench::json::trace_to_json(&back).render() != j.render() {
        return Err("trace JSON round-trip is lossy".to_string());
    }
    if snap.dropped != 0 {
        return Err(format!("{} spans dropped", snap.dropped));
    }
    if cell.cache_hit {
        snap.root("cache-lookup")
            .ok_or("cache hit without a cache-lookup span")?;
        return Ok(());
    }
    snap.root("compile").ok_or("no compile root span")?;
    snap.root("sim").ok_or("no sim root span")?;
    let roots_ns: u64 = snap.spans.iter().map(|s| s.dur_ns).sum();
    let wall_ns = cell.wall.as_nanos() as u64;
    let tolerance = wall_ns / 20;
    if roots_ns < wall_ns.saturating_sub(tolerance) || roots_ns > wall_ns + tolerance {
        return Err(format!(
            "root spans cover {roots_ns}ns of {wall_ns}ns wall (outside ±5%)"
        ));
    }
    Ok(())
}

/// `epicc top`: fetch a server's metrics-registry snapshot over the
/// `metrics` verb and render it as a fixed-width table (deterministic
/// for a given snapshot: entries are name-sorted by the registry).
fn top_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let Some(addr) = kv.get("--addr") else {
        return fail("top needs --addr HOST:PORT");
    };
    let snap = match epic_serve::Client::connect(addr).and_then(|mut c| c.metrics()) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    print!("{}", epic_trace::render_top(&snap));
    ExitCode::SUCCESS
}

/// `epicc stats`: one line per counter, `stat <name> <value>`.
fn stats_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let Some(addr) = kv.get("--addr") else {
        return fail("stats needs --addr HOST:PORT");
    };
    let stats = match epic_serve::Client::connect(addr).and_then(|mut c| c.stats()) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    for (name, v) in [
        ("store_hits", stats.store.hits),
        ("store_misses", stats.store.misses),
        ("store_evictions", stats.store.evictions),
        ("store_disk_hits", stats.store.disk_hits),
        ("store_disk_writes", stats.store.disk_writes),
        ("store_mach_hits", stats.store.mach_hits),
        ("store_mem_entries", stats.store.mem_entries),
        ("sched_submitted", stats.sched.submitted),
        ("sched_cache_hits", stats.sched.cache_hits),
        ("sched_coalesced", stats.sched.coalesced),
        ("sched_shed", stats.sched.shed),
        ("sched_jobs_run", stats.sched.jobs_run),
        ("sched_expired", stats.sched.expired),
        ("sched_queue_depth", stats.sched.queue_depth),
        ("sched_in_flight", stats.sched.in_flight),
        ("compiles", stats.compiles),
        ("sims", stats.sims),
    ] {
        println!("stat {name} {v}");
    }
    ExitCode::SUCCESS
}

/// `epicc shutdown`: ask a server to exit cleanly.
fn shutdown_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let Some(addr) = kv.get("--addr") else {
        return fail("shutdown needs --addr HOST:PORT");
    };
    match epic_serve::Client::connect(addr).and_then(|mut c| c.shutdown()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}
