//! `epicc` — command-line front end to the IMPACT EPIC reproduction.
//!
//! Compile a MiniC source file at a chosen optimization level, then dump
//! IR, disassemble machine code, or run it on the Itanium-2-like
//! simulator with full cycle accounting.
//!
//! ```text
//! epicc prog.mc                          # compile + simulate at ILP-CS
//! epicc prog.mc --level o-ns --args 3,4  # pass main() arguments
//! epicc prog.mc --emit mach              # disassemble bundles
//! epicc prog.mc --emit ir                # post-transform IR
//! epicc --workload crafty_mc --level all # sweep a bundled workload
//! epicc prog.mc --spec-model sentinel    # Fig. 9 recovery model
//! ```

use epic_driver::{compile_source, CompileOptions, OptLevel};
use epic_sim::{SimOptions, SpecModel};
use std::process::ExitCode;

struct Args {
    source: Option<String>,
    workload: Option<String>,
    levels: Vec<OptLevel>,
    emit: Emit,
    main_args: Vec<i64>,
    spec_model: SpecModel,
}

#[derive(PartialEq, Clone, Copy)]
enum Emit {
    Sim,
    Ir,
    Mach,
}

fn usage() -> ! {
    eprintln!(
        "usage: epicc <file.mc> [--level gcc|o-ns|ilp-ns|ilp-cs|all] [--emit sim|ir|mach]\n\
         \x20            [--args a,b,...] [--spec-model general|sentinel]\n\
         \x20      epicc --workload <name> [...]   (bundled SPEC stand-ins; see epic-workloads)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        source: None,
        workload: None,
        levels: vec![OptLevel::IlpCs],
        emit: Emit::Sim,
        main_args: Vec::new(),
        spec_model: SpecModel::General,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--level" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.levels = match v.as_str() {
                    "gcc" => vec![OptLevel::Gcc],
                    "o-ns" => vec![OptLevel::ONs],
                    "ilp-ns" => vec![OptLevel::IlpNs],
                    "ilp-cs" => vec![OptLevel::IlpCs],
                    "all" => OptLevel::ALL.to_vec(),
                    _ => usage(),
                };
            }
            "--emit" => {
                args.emit = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "sim" => Emit::Sim,
                    "ir" => Emit::Ir,
                    "mach" => Emit::Mach,
                    _ => usage(),
                };
            }
            "--args" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.main_args = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--spec-model" => {
                args.spec_model = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "general" => SpecModel::General,
                    "sentinel" => SpecModel::Sentinel,
                    _ => usage(),
                };
            }
            "--workload" => args.workload = Some(it.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            path if !path.starts_with('-') => args.source = Some(path.to_string()),
            _ => usage(),
        }
    }
    if args.source.is_none() && args.workload.is_none() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let (src, train, mut run_args) = match (&args.source, &args.workload) {
        (Some(path), _) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("epicc: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (src, args.main_args.clone(), args.main_args.clone())
        }
        (None, Some(name)) => match epic_workloads::by_name(name) {
            Some(w) => (
                w.source.to_string(),
                w.train_args.clone(),
                w.ref_args.clone(),
            ),
            None => {
                eprintln!(
                    "epicc: unknown workload `{name}`; available: {}",
                    epic_workloads::all()
                        .iter()
                        .map(|w| w.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
        _ => unreachable!("parse_args enforces one input"),
    };
    if !args.main_args.is_empty() {
        run_args = args.main_args.clone();
    }

    for &level in &args.levels {
        let compiled =
            match compile_source(&src, &train, &run_args, &CompileOptions::for_level(level)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("epicc [{}]: {e}", level.name());
                    return ExitCode::FAILURE;
                }
            };
        match args.emit {
            Emit::Ir => {
                println!("; === {} ===", level.name());
                for f in &compiled.mach.ir.funcs {
                    println!("{f}");
                }
            }
            Emit::Mach => {
                println!("; === {} ===", level.name());
                for f in &compiled.mach.funcs {
                    println!("{}", epic_mach::program::disasm(f));
                }
            }
            Emit::Sim => {
                let sim = match epic_sim::run(
                    &compiled.mach,
                    &run_args,
                    &SimOptions {
                        spec_model: args.spec_model,
                        ..Default::default()
                    },
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("epicc [{}]: simulation trapped: {e}", level.name());
                        return ExitCode::FAILURE;
                    }
                };
                println!("[{}]", level.name());
                println!("  output    {:?}", sim.output);
                println!("  cycles    {}", sim.cycles);
                println!(
                    "  IPC       {:.2} achieved / {:.2} planned",
                    sim.counters.retired_useful as f64 / sim.cycles as f64,
                    compiled.plan.planned_ipc()
                );
                println!(
                    "  ops       {} useful, {} squashed, {} nops",
                    sim.counters.retired_useful,
                    sim.counters.retired_squashed,
                    sim.counters.retired_nops
                );
                println!(
                    "  cycles/cat unstalled {} | ld {} | fe {} | br {} | rse {} | kernel {} | misc {}",
                    sim.acct.unstalled,
                    sim.acct.int_load_bubble,
                    sim.acct.front_end_bubble,
                    sim.acct.br_mispredict_flush,
                    sim.acct.register_stack,
                    sim.acct.kernel,
                    sim.acct.misc + sim.acct.float_scoreboard + sim.acct.micropipe,
                );
                println!(
                    "  code      {} bytes, {} loads promoted, {} wild loads",
                    compiled.code_bytes, compiled.ilp.loads_promoted, sim.counters.wild_loads
                );
            }
        }
    }
    ExitCode::SUCCESS
}
