//! `epicc` — command-line front end to the IMPACT EPIC reproduction.
//!
//! Compile a MiniC source file at a chosen optimization level, then dump
//! IR, disassemble machine code, or run it on the Itanium-2-like
//! simulator with full cycle accounting.
//!
//! ```text
//! epicc prog.mc                          # compile + simulate at ILP-CS
//! epicc prog.mc --level o-ns --args 3,4  # pass main() arguments
//! epicc prog.mc --emit mach              # disassemble bundles
//! epicc prog.mc --emit ir                # post-transform IR
//! epicc --workload crafty_mc --level all # sweep a bundled workload
//! epicc prog.mc --spec-model sentinel    # Fig. 9 recovery model
//! epicc report --workload vortex_mc      # Fig. 5 table + Fig. 10 drill-down
//! ```
//!
//! Job-service mode (see DESIGN.md §8):
//!
//! ```text
//! epicc serve [--listen A] [--cache-dir D] [--workers N] [--queue-cap N]
//!             [--max-conns N] [--idle-timeout-ms MS]
//! epicc submit --addr A [--workload N|all] [--level L|all] [--threads N]
//! epicc matrix [--level L|all] [--cache-dir D] [--no-cache]
//! epicc stats --addr A
//! epicc saturate --addr A [--conns N]          # swarm smoke vs a live epicd
//! epicc saturate --bench [--out BENCH.json]    # event loop vs thread-per-conn A/B
//! epicc shutdown --addr A
//! ```
//!
//! Sampled simulation (see DESIGN.md §12):
//!
//! ```text
//! epicc sample [--workload N|all] [--level L|all] [--interval N]
//!              [--clusters K] [--warmup full|cold|ops:N] [--exact]
//! epicc sample --bench [--out BENCH_7.json] [--max-err PCT] [--min-speedup X]
//! ```
//!
//! `sample` prints each run's phase map and extrapolation metadata
//! (`--exact` adds est-vs-exact deltas per accounting category);
//! `sample --bench` sweeps exact vs sampled vs cold-profile timings,
//! writes BENCH_7.json, and enforces the accuracy/speed gate.
//!
//! Branch prediction (see DESIGN.md §13):
//!
//! ```text
//! epicc branches [--workload N|all] [--level L]      # Fig. 7-style zoo table
//! epicc branches --workload N --capture T.epbt       # trace + replay self-check
//! epicc replay --trace T.epbt [--predictor NAME|all]
//! ```
//!
//! `matrix`, `submit`, `sample`, and the single-file path all take
//! `--predictor gshare|bimodal|tage|oracle` (default gshare, which is
//! bit-identical to the pre-zoo simulator).
//!
//! `benchcmp --baseline BENCH_N.json --current NEW.json` red-flags
//! >10% regressions of a fresh bench run against a committed
//! checkpoint (threshold adjustable with `--threshold-pct`);
//! `benchcmp --history DIR` instead scans every committed
//! `BENCH_*.json` checkpoint and prints each headline metric's
//! trajectory across them.
//!
//! Fleet mode (see DESIGN.md §14):
//!
//! ```text
//! epicc cluster serve [--shards N] [--listen A] [--hedge-ms MS]
//!                     [--workers N] [--queue-cap N]
//! epicc submit --gateway A [...]      # --gateway is an --addr alias
//! epicc stats --gateway A             # summed fleet stats (shard_id 0)
//! epicc top --gateway A --cluster     # fleet / per-shard / gateway sections
//! epicc cluster status --gateway A    # ring version + per-shard membership
//! epicc cluster join --gateway A --shard ID=ADDR   # warm, then cut over
//! epicc cluster drain --gateway A --shard ID       # move warmth out first
//! ```
//!
//! `cluster serve` runs an N-shard fleet plus an `epicg` gateway in one
//! process (handy for demos; note the shards share one process-global
//! metrics registry, so per-shard metric sections are confounded — CI
//! uses separate `epicd` processes for honest per-shard views).
//!
//! `submit` and `matrix` print identical, deterministic `cell` lines
//! (workload, level, cycles, checksum, content digest), so CI can diff a
//! served sweep against a direct in-process one byte for byte.

use epic_driver::{compile_source, CompileOptions, OptLevel};
use epic_sim::{Category, PredictorSpec, SimOptions, SimResult, SpecModel, CATEGORIES};
use std::process::ExitCode;

mod endpoint;
use endpoint::Endpoint;

struct Args {
    source: Option<String>,
    workload: Option<String>,
    levels: Vec<OptLevel>,
    emit: Emit,
    main_args: Vec<i64>,
    spec_model: SpecModel,
    predictor: PredictorSpec,
    report: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Emit {
    Sim,
    Ir,
    Mach,
}

fn usage() -> ! {
    eprintln!(
        "usage: epicc <file.mc> [--level gcc|o-ns|ilp-ns|ilp-cs|all] [--emit sim|ir|mach]\n\
         \x20            [--args a,b,...] [--spec-model general|sentinel]\n\
         \x20            [--predictor gshare|bimodal|tage|oracle]\n\
         \x20      epicc --workload <name> [...]   (bundled SPEC stand-ins; see epic-workloads)\n\
         \x20      epicc report (<file.mc> | --workload <name>) [--level ...]\n\
         \x20            Fig. 5 cycle-accounting table + Fig. 10 per-function drill-down\n\
         \x20      epicc branches [--workload <name>|all] [--level ...] [--capture FILE]\n\
         \x20            Fig. 7-style predictor-zoo table (+ trace capture/replay check)\n\
         \x20      epicc replay --trace FILE [--predictor <name>|all]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        source: None,
        workload: None,
        levels: vec![OptLevel::IlpCs],
        emit: Emit::Sim,
        main_args: Vec::new(),
        spec_model: SpecModel::General,
        predictor: PredictorSpec::default(),
        report: false,
    };
    let mut first_positional = true;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "report" if first_positional => {
                args.report = true;
                args.levels = OptLevel::ALL.to_vec();
                first_positional = false;
            }
            "--level" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.levels = match v.as_str() {
                    "gcc" => vec![OptLevel::Gcc],
                    "o-ns" => vec![OptLevel::ONs],
                    "ilp-ns" => vec![OptLevel::IlpNs],
                    "ilp-cs" => vec![OptLevel::IlpCs],
                    "all" => OptLevel::ALL.to_vec(),
                    _ => usage(),
                };
            }
            "--emit" => {
                args.emit = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "sim" => Emit::Sim,
                    "ir" => Emit::Ir,
                    "mach" => Emit::Mach,
                    _ => usage(),
                };
            }
            "--args" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.main_args = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--spec-model" => {
                args.spec_model = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "general" => SpecModel::General,
                    "sentinel" => SpecModel::Sentinel,
                    _ => usage(),
                };
            }
            "--predictor" => {
                args.predictor = PredictorSpec::parse(&it.next().unwrap_or_else(|| usage()))
                    .unwrap_or_else(|| usage());
            }
            "--workload" => args.workload = Some(it.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            path if !path.starts_with('-') => {
                args.source = Some(path.to_string());
                first_positional = false;
            }
            _ => usage(),
        }
    }
    if args.source.is_none() && args.workload.is_none() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match argv.first().map(String::as_str) {
            Some("serve") => return serve_cmd(&argv[1..]),
            Some("submit") => return submit_cmd(&argv[1..]),
            Some("matrix") => return matrix_cmd(&argv[1..]),
            Some("stats") => return stats_cmd(&argv[1..]),
            Some("top") => return top_cmd(&argv[1..]),
            Some("saturate") => return saturate_cmd(&argv[1..]),
            Some("sample") => return sample_cmd(&argv[1..]),
            Some("branches") => return branches_cmd(&argv[1..]),
            Some("replay") => return replay_cmd(&argv[1..]),
            Some("benchcmp") => return benchcmp_cmd(&argv[1..]),
            Some("cluster") => return cluster_cmd(&argv[1..]),
            Some("shutdown") => return shutdown_cmd(&argv[1..]),
            _ => {}
        }
    }
    let args = parse_args();
    let (src, train, mut run_args) = match (&args.source, &args.workload) {
        (Some(path), _) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("epicc: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (src, args.main_args.clone(), args.main_args.clone())
        }
        (None, Some(name)) => match epic_workloads::by_name(name) {
            Some(w) => (
                w.source.to_string(),
                w.train_args.clone(),
                w.ref_args.clone(),
            ),
            None => {
                eprintln!(
                    "epicc: unknown workload `{name}`; available: {}",
                    epic_workloads::all()
                        .iter()
                        .map(|w| w.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
        _ => unreachable!("parse_args enforces one input"),
    };
    if !args.main_args.is_empty() {
        run_args = args.main_args.clone();
    }

    for &level in &args.levels {
        let compiled =
            match compile_source(&src, &train, &run_args, &CompileOptions::for_level(level)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("epicc [{}]: {e}", level.name());
                    return ExitCode::FAILURE;
                }
            };
        if args.report {
            let sim = match epic_sim::run(
                &compiled.mach,
                &run_args,
                &SimOptions {
                    spec_model: args.spec_model,
                    predictor: args.predictor,
                    ..Default::default()
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("epicc [{}]: simulation trapped: {e}", level.name());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sim.check_identity() {
                eprintln!(
                    "epicc [{}]: accounting identity violated: {e}",
                    level.name()
                );
                return ExitCode::FAILURE;
            }
            let names: Vec<&str> = compiled
                .mach
                .funcs
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            print_report(level, &sim, &names, args.predictor);
            continue;
        }
        match args.emit {
            Emit::Ir => {
                println!("; === {} ===", level.name());
                for f in &compiled.mach.ir.funcs {
                    println!("{f}");
                }
            }
            Emit::Mach => {
                println!("; === {} ===", level.name());
                for f in &compiled.mach.funcs {
                    println!("{}", epic_mach::program::disasm(f));
                }
            }
            Emit::Sim => {
                let sim = match epic_sim::run(
                    &compiled.mach,
                    &run_args,
                    &SimOptions {
                        spec_model: args.spec_model,
                        predictor: args.predictor,
                        ..Default::default()
                    },
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("epicc [{}]: simulation trapped: {e}", level.name());
                        return ExitCode::FAILURE;
                    }
                };
                println!("[{}]", level.name());
                println!("  output    {:?}", sim.output);
                println!("  cycles    {}", sim.cycles);
                println!(
                    "  IPC       {:.2} achieved / {:.2} planned",
                    sim.counters.retired_useful as f64 / sim.cycles as f64,
                    compiled.plan.planned_ipc()
                );
                println!(
                    "  ops       {} useful, {} squashed, {} nops",
                    sim.counters.retired_useful,
                    sim.counters.retired_squashed,
                    sim.counters.retired_nops
                );
                println!(
                    "  cycles/cat unstalled {} | ld {} | fe {} | br {} | rse {} | kernel {} | misc {}",
                    sim.acct.unstalled(),
                    sim.acct.int_load_bubble(),
                    sim.acct.front_end_bubble(),
                    sim.acct.br_mispredict_flush(),
                    sim.acct.register_stack(),
                    sim.acct.kernel(),
                    sim.acct.misc() + sim.acct.float_scoreboard() + sim.acct.micropipe(),
                );
                println!(
                    "  code      {} bytes, {} loads promoted, {} wild loads",
                    compiled.code_bytes, compiled.ilp.loads_promoted, sim.counters.wild_loads
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// Short column header for one Fig. 5 category.
fn short_name(cat: Category) -> &'static str {
    match cat {
        Category::Unstalled => "unstall",
        Category::FloatScoreboard => "float",
        Category::Misc => "misc",
        Category::IntLoadBubble => "ldbub",
        Category::Micropipe => "upipe",
        Category::FrontEndBubble => "febub",
        Category::BrMispredictFlush => "brflush",
        Category::RegisterStack => "rse",
        Category::Kernel => "kernel",
    }
}

/// Render the Fig. 5 stacked cycle table and the Fig. 10 per-function
/// drill-down for one level. Pure function of the sim result, so output
/// is deterministic (ties in the function sort break by function index).
fn print_report(level: OptLevel, sim: &SimResult, func_names: &[&str], predictor: PredictorSpec) {
    let total = sim.cycles.max(1);
    println!("=== {} ===", level.name());
    let (p, m) = (
        sim.counters.branch_predictions,
        sim.counters.branch_mispredictions,
    );
    println!(
        "branch predictor: {}  predictions={p} mispredictions={m} ({:.2}%)",
        predictor.name(),
        if p == 0 {
            0.0
        } else {
            100.0 * m as f64 / p as f64
        },
    );
    println!("cycle accounting (Fig. 5):");
    println!("  {:<20} {:>14} {:>7}", "category", "cycles", "%");
    for cat in CATEGORIES {
        let c = sim.acct.get(cat);
        println!(
            "  {:<20} {:>14} {:>6.1}%",
            cat.name(),
            c,
            100.0 * c as f64 / total as f64
        );
    }
    println!("  {:<20} {:>14} {:>6.1}%", "total", sim.cycles, 100.0);
    println!();
    println!("per-function drill-down (Fig. 10):");
    print!("  {:<16} {:>14} {:>7}", "function", "cycles", "%");
    for cat in CATEGORIES {
        print!(" {:>9}", short_name(cat));
    }
    println!();
    let mut order: Vec<usize> = (0..sim.func_matrix.num_funcs()).collect();
    order.sort_by_key(|&f| (std::cmp::Reverse(sim.func_matrix.row_total(f)), f));
    for f in order {
        let row_total = sim.func_matrix.row_total(f);
        if row_total == 0 {
            continue;
        }
        let name = func_names.get(f).copied().unwrap_or("?");
        print!(
            "  {:<16} {:>14} {:>6.1}%",
            name,
            row_total,
            100.0 * row_total as f64 / total as f64
        );
        for &c in sim.func_matrix.row(f) {
            print!(" {:>9}", c);
        }
        println!();
    }
    println!();
}

// --- job-service subcommands ------------------------------------------

/// One (workload, level) cell of the canonical sweep, in deterministic
/// (Table 1 × OptLevel::ALL) order.
fn sweep_cells(
    workload: &str,
    levels: &[OptLevel],
) -> Result<Vec<(epic_workloads::Workload, OptLevel)>, String> {
    let workloads = if workload == "all" {
        epic_workloads::all()
    } else {
        vec![epic_workloads::by_name(workload)
            .ok_or_else(|| format!("unknown workload `{workload}`"))?]
    };
    Ok(workloads
        .into_iter()
        .flat_map(|w| levels.iter().map(move |&l| (w.clone(), l)))
        .collect())
}

/// The shared `cell` line: everything in it is a pure function of the
/// job, so direct and served sweeps print identical bytes.
fn cell_line(w: &str, level: OptLevel, m: &epic_driver::Measurement) -> String {
    format!(
        "cell {w} {} cycles={} checksum={:016x} digest={}",
        level.name(),
        m.sim.cycles,
        m.sim.checksum,
        epic_serve::digest(m).hex()
    )
}

/// Parse a `--predictor` value from a kv map (absent = default gshare).
fn parse_predictor(
    kv: &std::collections::HashMap<String, String>,
) -> Result<PredictorSpec, String> {
    match kv.get("--predictor") {
        None => Ok(PredictorSpec::default()),
        Some(v) => PredictorSpec::parse(v)
            .ok_or_else(|| format!("unknown predictor `{v}` (gshare|bimodal|tage|oracle)")),
    }
}

fn parse_levels(v: &str) -> Result<Vec<OptLevel>, String> {
    Ok(match v {
        "gcc" => vec![OptLevel::Gcc],
        "o-ns" => vec![OptLevel::ONs],
        "ilp-ns" => vec![OptLevel::IlpNs],
        "ilp-cs" => vec![OptLevel::IlpCs],
        "all" => OptLevel::ALL.to_vec(),
        other => return Err(format!("unknown level `{other}`")),
    })
}

/// Tiny flag parser shared by the service subcommands: alternating
/// `--flag value` pairs (plus bare switches listed in `switches`).
fn parse_kv(
    args: &[String],
    switches: &[&str],
) -> Result<std::collections::HashMap<String, String>, String> {
    let mut map = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if switches.contains(&a.as_str()) {
            map.insert(a.clone(), "1".to_string());
            continue;
        }
        if !a.starts_with("--") {
            return Err(format!("unexpected argument `{a}`"));
        }
        let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
        map.insert(a.clone(), v.clone());
    }
    Ok(map)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("epicc: {msg}");
    ExitCode::FAILURE
}

/// `epicc serve`: run the job daemon in-process (same engine as the
/// standalone `epicd` binary).
fn serve_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let listen = kv
        .get("--listen")
        .map_or("127.0.0.1:0", String::as_str)
        .to_string();
    let workers = kv.get("--workers").map_or(Ok(0), |v| v.parse());
    let queue_cap = kv.get("--queue-cap").map_or(Ok(256), |v| v.parse());
    let (Ok(workers), Ok(queue_cap)) = (workers, queue_cap) else {
        return fail("--workers/--queue-cap must be integers");
    };
    let defaults = epic_serve::ServerConfig::default();
    let max_conns = kv
        .get("--max-conns")
        .map_or(Ok(defaults.max_conns), |v| v.parse());
    let idle_ms = kv
        .get("--idle-timeout-ms")
        .map_or(Ok(defaults.idle_timeout.as_millis() as u64), |v| v.parse());
    let (Ok(max_conns), Ok(idle_ms)) = (max_conns, idle_ms) else {
        return fail("--max-conns/--idle-timeout-ms must be integers");
    };
    let store = match kv.get("--cache-dir") {
        Some(dir) => epic_serve::ArtifactStore::persistent(dir),
        None => epic_serve::ArtifactStore::in_memory(),
    };
    let sched = std::sync::Arc::new(epic_serve::Scheduler::new(
        std::sync::Arc::new(store),
        workers,
        queue_cap,
    ));
    let cfg = epic_serve::ServerConfig {
        max_conns,
        idle_timeout: std::time::Duration::from_millis(idle_ms),
        ..defaults
    };
    let mut handle = match epic_serve::serve_with(&listen, sched, cfg) {
        Ok(h) => h,
        Err(e) => return fail(format!("bind {listen}: {e}")),
    };
    println!("epicd listening on {}", handle.addr());
    handle.wait();
    ExitCode::SUCCESS
}

/// `epicc submit`: drive a served sweep from N client threads and print
/// deterministic `cell` lines plus a `# hits=` summary.
fn submit_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let ep = match Endpoint::from_kv(&kv, "submit") {
        Ok(ep) => ep,
        Err(e) => return fail(e),
    };
    let levels = match parse_levels(kv.get("--level").map_or("all", String::as_str)) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let cells = match sweep_cells(kv.get("--workload").map_or("all", String::as_str), &levels) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let threads: usize = match kv.get("--threads").map_or(Ok(0), |v| v.parse()) {
        Ok(n) => n,
        Err(_) => return fail("--threads must be an integer"),
    };
    let predictor = match parse_predictor(&kv) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let threads = if threads == 0 {
        cells.len().min(8)
    } else {
        threads.min(cells.len().max(1))
    };
    // work-stealing over the cell list; results land by index so output
    // order is deterministic regardless of scheduling
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<Result<epic_serve::Served, String>>>> =
        cells.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut conn = match ep.connect() {
                    Ok(c) => c,
                    Err(e) => {
                        // mark every remaining cell failed
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            let Some(slot) = results.get(i) else { break };
                            *slot.lock().unwrap() = Some(Err(e.clone()));
                        }
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let Some((w, level)) = cells.get(i) else {
                        break;
                    };
                    let mut spec = epic_serve::JobSpec::for_workload(w, *level);
                    spec.predictor = predictor;
                    let r = conn.run("submit", |c| {
                        c.submit(&spec, epic_serve::Priority::Normal, 0)
                    });
                    *results[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    let (mut hits, mut misses) = (0u64, 0u64);
    for ((w, level), slot) in cells.iter().zip(&results) {
        match slot.lock().unwrap().take() {
            Some(Ok(served)) => {
                if served.cache_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                println!("{}", cell_line(w.name, *level, &served.measurement));
            }
            Some(Err(e)) => return fail(format!("{} {}: {e}", w.name, level.name())),
            None => return fail(format!("{} {}: not submitted", w.name, level.name())),
        }
    }
    println!("# hits={hits} misses={misses}");
    ExitCode::SUCCESS
}

/// `epicc matrix`: the same sweep measured directly in-process (through
/// the artifact cache unless `--no-cache`), printing the same `cell`
/// lines as `submit`. `--workload <name>` restricts the sweep;
/// `--trace` attaches a span tree + metrics to every cell and
/// self-validates the trees (round-trip through JSON, expected roots,
/// durations sum-checked against cell wall time) before printing a
/// final `trace-ok cells=N` line. The cell lines themselves are
/// byte-identical with and without `--trace`.
fn matrix_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &["--no-cache", "--trace"]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let levels = match parse_levels(kv.get("--level").map_or("all", String::as_str)) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let workloads = match kv.get("--workload").map_or("all", String::as_str) {
        "all" => epic_workloads::all(),
        name => match epic_workloads::by_name(name) {
            Some(w) => vec![w],
            None => return fail(format!("unknown workload `{name}`")),
        },
    };
    let store = match (kv.contains_key("--no-cache"), kv.get("--cache-dir")) {
        (true, _) | (false, None) => None,
        (false, Some(dir)) => Some(epic_serve::ArtifactStore::persistent(dir)),
    };
    let sopts = SimOptions {
        predictor: match parse_predictor(&kv) {
            Ok(p) => p,
            Err(e) => return fail(e),
        },
        ..SimOptions::default()
    };
    let trace = if kv.contains_key("--trace") {
        epic_driver::TracePolicy::Enabled
    } else {
        epic_driver::TracePolicy::Disabled
    };
    let report = match epic_driver::MeasureRequest::new(&workloads)
        .levels(&levels)
        .compile_options(&CompileOptions::for_level)
        .sim_options(sopts)
        .cache(match &store {
            Some(s) => epic_driver::CachePolicy::Store(s),
            None => epic_driver::CachePolicy::Disabled,
        })
        .trace(trace)
        .run()
    {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let (mut hits, mut misses) = (0u64, 0u64);
    for (w, row) in workloads.iter().zip(&report.cells) {
        for (level, cell) in levels.iter().zip(row) {
            if cell.cache_hit {
                hits += 1;
            } else {
                misses += 1;
            }
            println!("{}", cell_line(w.name, *level, &cell.measurement));
        }
    }
    println!("# hits={hits} misses={misses}");
    if trace == epic_driver::TracePolicy::Enabled {
        let mut checked = 0usize;
        for (w, row) in workloads.iter().zip(&report.cells) {
            for (level, cell) in levels.iter().zip(row) {
                if let Err(e) = validate_cell_trace(cell) {
                    return fail(format!("{} {}: {e}", w.name, level.name()));
                }
                checked += 1;
            }
        }
        println!("trace-ok cells={checked}");
    }
    ExitCode::SUCCESS
}

/// Well-formedness check for one traced cell: the span tree must
/// survive a JSON round-trip, carry the expected roots (`compile` and
/// `sim` for a fresh cell, `cache-lookup` for a hit), and its root
/// durations must sum to the cell's wall time within 5%.
fn validate_cell_trace(cell: &epic_driver::MeasuredCell) -> Result<(), String> {
    let snap = cell.trace.as_ref().ok_or("traced cell carries no trace")?;
    let j = epic_bench::json::trace_to_json(snap);
    let parsed = epic_bench::json::Json::parse(&j.render())
        .map_err(|e| format!("trace JSON does not re-parse: {e}"))?;
    let back = epic_bench::json::trace_from_json(&parsed)
        .map_err(|e| format!("trace JSON does not decode: {e}"))?;
    if epic_bench::json::trace_to_json(&back).render() != j.render() {
        return Err("trace JSON round-trip is lossy".to_string());
    }
    if snap.dropped != 0 {
        return Err(format!("{} spans dropped", snap.dropped));
    }
    if cell.cache_hit {
        snap.root("cache-lookup")
            .ok_or("cache hit without a cache-lookup span")?;
        return Ok(());
    }
    snap.root("compile").ok_or("no compile root span")?;
    snap.root("sim").ok_or("no sim root span")?;
    let roots_ns: u64 = snap.spans.iter().map(|s| s.dur_ns).sum();
    let wall_ns = cell.wall.as_nanos() as u64;
    let tolerance = wall_ns / 20;
    if roots_ns < wall_ns.saturating_sub(tolerance) || roots_ns > wall_ns + tolerance {
        return Err(format!(
            "root spans cover {roots_ns}ns of {wall_ns}ns wall (outside ±5%)"
        ));
    }
    Ok(())
}

/// `epicc top`: fetch a server's metrics-registry snapshot over the
/// `metrics` verb and render it as a fixed-width table (deterministic
/// for a given snapshot: entries are name-sorted by the registry).
///
/// Against a gateway, `--cluster` splits the merged snapshot into its
/// sections — fleet aggregate, per-shard, gateway-local — instead of
/// one flat prefix-sorted table.
fn top_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &["--cluster"]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let snap = match Endpoint::from_kv(&kv, "top")
        .and_then(|ep| ep.connect())
        .and_then(|mut conn| conn.run("top", |c| c.metrics()))
    {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if !kv.contains_key("--cluster") {
        print!("{}", epic_trace::render_top(&snap));
        return ExitCode::SUCCESS;
    }
    // sectioned fleet view: strip each section's prefix so the tables
    // read like a single daemon's `top`
    let section = |title: &str, prefix: &str| {
        let entries: Vec<_> = snap
            .entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .map(|e| epic_trace::MetricEntry {
                name: e.name[prefix.len()..].to_string(),
                value: e.value.clone(),
            })
            .collect();
        if !entries.is_empty() {
            println!("== {title} ==");
            print!(
                "{}",
                epic_trace::render_top(&epic_trace::MetricsSnapshot { entries })
            );
        }
    };
    section("fleet", "fleet.");
    section("gateway", "gateway.");
    let mut shard_ids: Vec<u64> = snap
        .entries
        .iter()
        .filter_map(|e| {
            let rest = e.name.strip_prefix("shard")?;
            rest[..rest.find('.')?].parse().ok()
        })
        .collect();
    shard_ids.sort_unstable();
    shard_ids.dedup();
    for id in shard_ids {
        section(&format!("shard{id}"), &format!("shard{id}."));
    }
    ExitCode::SUCCESS
}

/// `epicc stats`: one line per counter, `stat <name> <value>`.
fn stats_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let stats = match Endpoint::from_kv(&kv, "stats")
        .and_then(|ep| ep.connect())
        .and_then(|mut conn| conn.run("stats", |c| c.stats()))
    {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    for (name, v) in [
        ("store_hits", stats.store.hits),
        ("store_misses", stats.store.misses),
        ("store_evictions", stats.store.evictions),
        ("store_disk_hits", stats.store.disk_hits),
        ("store_disk_writes", stats.store.disk_writes),
        ("store_mach_hits", stats.store.mach_hits),
        ("store_mem_entries", stats.store.mem_entries),
        ("sched_submitted", stats.sched.submitted),
        ("sched_cache_hits", stats.sched.cache_hits),
        ("sched_coalesced", stats.sched.coalesced),
        ("sched_shed", stats.sched.shed),
        ("sched_jobs_run", stats.sched.jobs_run),
        ("sched_expired", stats.sched.expired),
        ("sched_queue_depth", stats.sched.queue_depth),
        ("sched_in_flight", stats.sched.in_flight),
        ("compiles", stats.compiles),
        ("sims", stats.sims),
        ("shard_id", stats.shard_id),
    ] {
        println!("stat {name} {v}");
    }
    ExitCode::SUCCESS
}

/// One histogram as bench JSON: count plus the latency quartet.
fn histo_json(h: &epic_trace::HistogramSnapshot) -> epic_bench::json::Json {
    use epic_bench::json::Json;
    Json::obj([
        ("count", Json::Num(h.count as f64)),
        ("mean_us", h.mean().map_or(Json::Null, Json::Num)),
        (
            "p50_us",
            h.quantile(0.5).map_or(Json::Null, |v| Json::Num(v as f64)),
        ),
        (
            "p99_us",
            h.quantile(0.99).map_or(Json::Null, |v| Json::Num(v as f64)),
        ),
    ])
}

/// Registry histogram by name, empty when absent or mistyped.
fn registry_histo(snap: &epic_trace::MetricsSnapshot, name: &str) -> epic_trace::HistogramSnapshot {
    match snap.get(name) {
        Some(epic_trace::MetricValue::Histogram(h)) => h.clone(),
        _ => epic_trace::HistogramSnapshot::default(),
    }
}

/// One saturation phase: `total` unique submits spread over a swarm of
/// `conns` connections against `addr`. Returns (wall seconds, failures).
fn saturate_phase(addr: &str, conns: usize, total: usize, tag: &str) -> Result<(f64, u64), String> {
    let base = epic_workloads::all()[0].clone();
    let mut swarm =
        epic_serve::Swarm::connect(addr, conns).map_err(|e| format!("connect {addr}: {e}"))?;
    for i in 0..total {
        let mut spec = epic_serve::JobSpec::for_workload(&base, OptLevel::Gcc);
        spec.source = format!("// saturate {tag} {i}");
        swarm.enqueue(
            i % conns,
            &epic_serve::proto::Request::Submit {
                spec,
                prio: epic_serve::Priority::Normal,
                deadline_ms: 0,
            },
        );
    }
    let t0 = std::time::Instant::now();
    let responses = swarm
        .run(std::time::Duration::from_secs(600))
        .map_err(|e| format!("swarm: {e}"))?;
    let wall = t0.elapsed().as_secs_f64();
    let mut failures = 0u64;
    for conn in &responses {
        for r in conn {
            if !matches!(r, epic_serve::proto::Response::Done { .. }) {
                failures += 1;
            }
        }
    }
    Ok((wall, failures))
}

/// `epicc saturate --bench`: A/B the event-driven server against the
/// thread-per-connection baseline on an instant runner, and record
/// throughput plus registry-derived latency quantiles in a
/// `BENCH_<n>.json` trajectory point.
fn saturate_bench(kv: &std::collections::HashMap<String, String>) -> ExitCode {
    let conns: usize = match kv.get("--conns").map_or(Ok(128), |v| v.parse()) {
        Ok(n) if n > 0 => n,
        _ => return fail("--conns must be a positive integer"),
    };
    let requests: usize = match kv.get("--requests").map_or(Ok(4096), |v| v.parse()) {
        Ok(n) if n > 0 => n,
        _ => return fail("--requests must be a positive integer"),
    };
    let workers: usize = match kv.get("--workers").map_or(Ok(2), |v| v.parse()) {
        Ok(n) => n,
        Err(_) => return fail("--workers must be an integer"),
    };
    let out = kv.get("--out").map_or("BENCH_6.json", String::as_str);
    let queue_cap = conns.max(256);

    let mk_sched = || {
        std::sync::Arc::new(epic_serve::Scheduler::with_runner(
            std::sync::Arc::new(epic_serve::ArtifactStore::in_memory()),
            Box::new(epic_serve::testutil::InstantRunner::default()),
            workers,
            queue_cap,
        ))
    };

    // phase A: the pre-refactor shape — one blocking OS thread per
    // connection (kept in testutil solely as this comparator)
    let before_base = epic_trace::global().snapshot();
    let mut baseline = match epic_serve::testutil::serve_baseline("127.0.0.1:0", mk_sched()) {
        Ok(h) => h,
        Err(e) => return fail(format!("baseline bind: {e}")),
    };
    let (base_wall, base_failures) =
        match saturate_phase(&baseline.addr().to_string(), conns, requests, "base") {
            Ok(r) => r,
            Err(e) => return fail(format!("baseline phase: {e}")),
        };
    baseline.stop();
    let base_queue_wait = registry_histo(&epic_trace::global().snapshot(), "serve.queue_wait_us")
        .delta_since(&registry_histo(&before_base, "serve.queue_wait_us"));

    // phase B: the event loop
    let before_ev = epic_trace::global().snapshot();
    let mut event = match epic_serve::serve_with(
        "127.0.0.1:0",
        mk_sched(),
        epic_serve::ServerConfig {
            max_conns: conns + 8,
            ..epic_serve::ServerConfig::default()
        },
    ) {
        Ok(h) => h,
        Err(e) => return fail(format!("event bind: {e}")),
    };
    let (ev_wall, ev_failures) =
        match saturate_phase(&event.addr().to_string(), conns, requests, "event") {
            Ok(r) => r,
            Err(e) => return fail(format!("event phase: {e}")),
        };
    event.stop();
    let after_ev = epic_trace::global().snapshot();
    let ev_queue_wait = registry_histo(&after_ev, "serve.queue_wait_us")
        .delta_since(&registry_histo(&before_ev, "serve.queue_wait_us"));
    let ev_e2e = registry_histo(&after_ev, "serve.submit.e2e_us")
        .delta_since(&registry_histo(&before_ev, "serve.submit.e2e_us"));
    let ev_poll = registry_histo(&after_ev, "serve.poll.wait_us")
        .delta_since(&registry_histo(&before_ev, "serve.poll.wait_us"));

    if base_failures + ev_failures > 0 {
        return fail(format!(
            "saturation bench saw non-Done responses (baseline {base_failures}, event {ev_failures})"
        ));
    }

    use epic_bench::json::Json;
    let base_rps = requests as f64 / base_wall;
    let ev_rps = requests as f64 / ev_wall;
    let j = Json::obj([
        ("pr", Json::Num(6.0)),
        ("benchmark", Json::Str("serve-saturate".to_string())),
        ("conns", Json::Num(conns as f64)),
        ("requests", Json::Num(requests as f64)),
        ("workers", Json::Num(workers as f64)),
        (
            "baseline_thread_per_conn",
            Json::obj([
                ("wall_s", Json::Num(base_wall)),
                ("throughput_rps", Json::Num(base_rps)),
                ("queue_wait_us", histo_json(&base_queue_wait)),
            ]),
        ),
        (
            "event_loop",
            Json::obj([
                ("wall_s", Json::Num(ev_wall)),
                ("throughput_rps", Json::Num(ev_rps)),
                ("queue_wait_us", histo_json(&ev_queue_wait)),
                ("submit_e2e_us", histo_json(&ev_e2e)),
                ("poll_wait_us", histo_json(&ev_poll)),
            ]),
        ),
        ("speedup_throughput", Json::Num(ev_rps / base_rps)),
    ]);
    if let Err(e) = std::fs::write(out, format!("{}\n", j.render())) {
        return fail(format!("write {out}: {e}"));
    }
    println!(
        "# bench baseline_rps={base_rps:.0} event_rps={ev_rps:.0} speedup={:.2} -> {out}",
        ev_rps / base_rps
    );
    ExitCode::SUCCESS
}

/// `epicc saturate --addr`: swarm smoke against a live epicd — every
/// connection submits the whole 12×4 matrix (rotated so concurrent
/// waves overlap on different cells), then the responses are checked
/// for lost, duplicated, or cross-wired results and printed as the
/// same deterministic `cell` lines `matrix`/`submit` emit.
fn saturate_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &["--bench"]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    if kv.contains_key("--bench") {
        return saturate_bench(&kv);
    }
    let Some(addr) = kv.get("--addr") else {
        return fail("saturate needs --addr HOST:PORT (or --bench)");
    };
    let conns: usize = match kv.get("--conns").map_or(Ok(64), |v| v.parse()) {
        Ok(n) if n > 0 => n,
        _ => return fail("--conns must be a positive integer"),
    };
    let cells = match sweep_cells("all", &OptLevel::ALL.to_vec()) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let specs: Vec<epic_serve::JobSpec> = cells
        .iter()
        .map(|(w, l)| epic_serve::JobSpec::for_workload(w, *l))
        .collect();

    let mut swarm = match epic_serve::Swarm::connect(addr, conns) {
        Ok(s) => s,
        Err(e) => return fail(format!("connect {addr}: {e}")),
    };
    for c in 0..conns {
        for j in 0..specs.len() {
            let spec = &specs[(c + j) % specs.len()];
            swarm.enqueue(
                c,
                &epic_serve::proto::Request::Submit {
                    spec: spec.clone(),
                    prio: epic_serve::Priority::Normal,
                    deadline_ms: 0,
                },
            );
        }
    }
    let responses = match swarm.run(std::time::Duration::from_secs(600)) {
        Ok(r) => r,
        Err(e) => return fail(format!("swarm: {e}")),
    };

    // cross-check every response against the submission script: right
    // key, and per-key digests all agree (then printed once per cell)
    let (mut lost, mut crosswired, mut mismatched) = (0u64, 0u64, 0u64);
    let mut digests: Vec<Option<epic_serve::CacheKey>> = vec![None; specs.len()];
    let mut cell_lines: Vec<Option<String>> = vec![None; specs.len()];
    for (c, conn) in responses.iter().enumerate() {
        for (j, resp) in conn.iter().enumerate() {
            let cell = (c + j) % specs.len();
            match resp {
                epic_serve::proto::Response::Done {
                    key, measurement, ..
                } => {
                    if *key != specs[cell].job_key() {
                        crosswired += 1;
                        continue;
                    }
                    let d = epic_serve::digest(measurement);
                    match &digests[cell] {
                        None => {
                            let (w, level) = &cells[cell];
                            digests[cell] = Some(d);
                            cell_lines[cell] = Some(cell_line(w.name, *level, measurement));
                        }
                        Some(first) if *first != d => mismatched += 1,
                        Some(_) => {}
                    }
                }
                _ => lost += 1,
            }
        }
    }
    for line in cell_lines.iter().flatten() {
        println!("{line}");
    }
    println!(
        "# saturate conns={conns} submits={} lost={lost} crosswired={crosswired} digest-mismatch={mismatched}",
        conns * specs.len()
    );
    if lost + crosswired + mismatched > 0 {
        return fail("saturation smoke found protocol violations");
    }
    ExitCode::SUCCESS
}

/// Parse `--warmup full|cold|ops:N`.
fn parse_warmup(v: &str) -> Result<epic_sim::Warmup, String> {
    match v {
        "full" => Ok(epic_sim::Warmup::Full),
        "cold" => Ok(epic_sim::Warmup::Cold),
        other => match other.strip_prefix("ops:").and_then(|n| n.parse().ok()) {
            Some(n) => Ok(epic_sim::Warmup::Ops(n)),
            None => Err(format!("unknown warmup `{other}` (full|cold|ops:N)")),
        },
    }
}

/// Render a phase assignment as one compact char per interval (cluster
/// 0-9 then a-z; `*` past 36), wrapped to 100 columns.
fn phase_map_lines(phases: &[u32]) -> Vec<String> {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    phases
        .chunks(100)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&p| *GLYPHS.get(p as usize).unwrap_or(&b'*') as char)
                .collect()
        })
        .collect()
}

/// `epicc sample`: run the SimPoint-style sampled simulator over
/// workloads and print each run's phase map plus extrapolation
/// metadata. `--exact` also runs the exact simulator and prints
/// est-vs-exact deltas (total cycles and every accounting category).
/// `--bench` sweeps the matrix with exact, sampled, and cold-profile
/// timings, writes a BENCH_7.json trajectory point, and enforces the
/// calibrated accuracy/speed gate (see DESIGN.md §12 for why the gate
/// is 2x, not the naive 5x).
fn sample_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &["--exact", "--bench"]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let levels = match parse_levels(kv.get("--level").map_or("all", String::as_str)) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let cells = match sweep_cells(kv.get("--workload").map_or("all", String::as_str), &levels) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let mut policy = epic_sim::SamplePolicy::default_sampled();
    if let epic_sim::SamplePolicy::Sampled {
        interval_len,
        max_clusters,
        warmup,
    } = &mut policy
    {
        match kv.get("--interval").map(|v| v.parse()) {
            None => {}
            Some(Ok(n)) => *interval_len = n,
            Some(Err(_)) => return fail("--interval must be an integer"),
        }
        match kv.get("--clusters").map(|v| v.parse()) {
            None => {}
            Some(Ok(n)) => *max_clusters = n,
            Some(Err(_)) => return fail("--clusters must be an integer"),
        }
        match kv.get("--warmup").map(|v| parse_warmup(v)) {
            None => {}
            Some(Ok(w)) => *warmup = w,
            Some(Err(e)) => return fail(e),
        }
    }
    let predictor = match parse_predictor(&kv) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    if kv.contains_key("--bench") {
        return sample_bench(&cells, policy, predictor, &kv);
    }
    let want_exact = kv.contains_key("--exact");

    for (w, level) in &cells {
        let compiled = match epic_driver::compile(w, &CompileOptions::for_level(*level)) {
            Ok(c) => c,
            Err(e) => return fail(format!("{} [{}]: {e}", w.name, level.name())),
        };
        let sopts = SimOptions {
            sample: policy,
            predictor,
            ..SimOptions::default()
        };
        let sampled = match epic_sim::run(&compiled.mach, &w.ref_args, &sopts) {
            Ok(r) => r,
            Err(e) => return fail(format!("{} [{}]: sim trapped: {e}", w.name, level.name())),
        };
        if let Err(e) = sampled.check_identity() {
            return fail(format!("{} [{}]: identity: {e}", w.name, level.name()));
        }
        let info = sampled.sample.as_ref().expect("sampled run carries info");
        println!(
            "sample {} {} cycles={} est_error={:.3}% intervals={} clusters={} \
             sampled_ops={}/{}{}",
            w.name,
            level.name(),
            sampled.cycles,
            info.est_error * 100.0,
            info.intervals,
            info.clusters,
            info.sampled_ops,
            info.total_ops,
            if info.fallback { " fallback" } else { "" },
        );
        for line in phase_map_lines(&info.phases) {
            println!("  phase-map {line}");
        }
        if !want_exact {
            continue;
        }
        let exact_opts = SimOptions {
            predictor,
            ..SimOptions::default()
        };
        let exact = match epic_sim::run(&compiled.mach, &w.ref_args, &exact_opts) {
            Ok(r) => r,
            Err(e) => return fail(format!("{} [{}]: exact trapped: {e}", w.name, level.name())),
        };
        if sampled.output != exact.output || sampled.ret != exact.ret {
            return fail(format!(
                "{} [{}]: sampled run diverged functionally",
                w.name,
                level.name()
            ));
        }
        let err = (sampled.cycles as f64 - exact.cycles as f64) / exact.cycles.max(1) as f64;
        println!(
            "  exact cycles={} err={:+.3}% (est {:.3}%)",
            exact.cycles,
            err * 100.0,
            info.est_error * 100.0
        );
        for cat in CATEGORIES {
            let (s, e) = (sampled.acct.get(cat), exact.acct.get(cat));
            if s == 0 && e == 0 {
                continue;
            }
            let d = (s as f64 - e as f64) / e.max(1) as f64;
            println!(
                "  cat {:<20} sampled={:>12} exact={:>12} err={:+.3}%",
                cat.name(),
                s,
                e,
                d * 100.0
            );
        }
    }
    ExitCode::SUCCESS
}

/// `epicc sample --bench`: exact vs sampled vs cold-profile timings
/// over a sweep, written as BENCH_7.json, with the accuracy/speed gate
/// applied (`--max-err` percent per cell, `--min-speedup` aggregate).
fn sample_bench(
    cells: &[(epic_workloads::Workload, OptLevel)],
    policy: epic_sim::SamplePolicy,
    predictor: PredictorSpec,
    kv: &std::collections::HashMap<String, String>,
) -> ExitCode {
    use epic_bench::json::Json;
    let out = kv.get("--out").map_or("BENCH_7.json", String::as_str);
    let max_err: f64 = match kv.get("--max-err").map_or(Ok(5.0), |v| v.parse()) {
        Ok(v) => v / 100.0,
        Err(_) => return fail("--max-err must be a number (percent)"),
    };
    let min_speedup: f64 = match kv.get("--min-speedup").map_or(Ok(2.0), |v| v.parse()) {
        Ok(v) => v,
        Err(_) => return fail("--min-speedup must be a number"),
    };
    let mut rows = Vec::new();
    let (mut wall_exact, mut wall_sampled, mut wall_cold) = (0.0f64, 0.0f64, 0.0f64);
    let mut worst_err = 0.0f64;
    let mut violations = Vec::new();
    for (w, level) in cells {
        let compiled = match epic_driver::compile(w, &CompileOptions::for_level(*level)) {
            Ok(c) => c,
            Err(e) => return fail(format!("{} [{}]: {e}", w.name, level.name())),
        };
        let exact_opts = SimOptions {
            predictor,
            ..SimOptions::default()
        };
        let t0 = std::time::Instant::now();
        let exact = match epic_sim::run(&compiled.mach, &w.ref_args, &exact_opts) {
            Ok(r) => r,
            Err(e) => return fail(format!("{} [{}]: exact trapped: {e}", w.name, level.name())),
        };
        let te = t0.elapsed().as_secs_f64();
        let sopts = SimOptions {
            sample: policy,
            predictor,
            ..SimOptions::default()
        };
        let t1 = std::time::Instant::now();
        let sampled = match epic_sim::run(&compiled.mach, &w.ref_args, &sopts) {
            Ok(r) => r,
            Err(e) => return fail(format!("{} [{}]: sim trapped: {e}", w.name, level.name())),
        };
        let ts = t1.elapsed().as_secs_f64();
        // the cold functional profiling pass alone: the sampling floor
        let t2 = std::time::Instant::now();
        let cold =
            epic_sim::phase_profile(&compiled.mach, &w.ref_args, &SimOptions::default(), 100_000);
        let tc = t2.elapsed().as_secs_f64();
        if let Err(e) = cold {
            return fail(format!(
                "{} [{}]: profile trapped: {e}",
                w.name,
                level.name()
            ));
        }
        if sampled.output != exact.output || sampled.ret != exact.ret {
            return fail(format!(
                "{} [{}]: sampled run diverged functionally",
                w.name,
                level.name()
            ));
        }
        if let Err(e) = sampled.check_identity() {
            return fail(format!("{} [{}]: identity: {e}", w.name, level.name()));
        }
        let info = sampled.sample.as_ref().expect("sampled run carries info");
        let err = (sampled.cycles as f64 - exact.cycles as f64).abs() / exact.cycles.max(1) as f64;
        worst_err = worst_err.max(err);
        if err > max_err {
            violations.push(format!(
                "{} {}: err {:.3}% > {:.1}%",
                w.name,
                level.name(),
                err * 100.0,
                max_err * 100.0
            ));
        }
        wall_exact += te;
        wall_sampled += ts;
        wall_cold += tc;
        println!(
            "sample-cell {} {} exact={} sampled={} err={:.3}% est={:.3}% \
             exact_s={te:.2} sampled_s={ts:.2} cold_s={tc:.2}",
            w.name,
            level.name(),
            exact.cycles,
            sampled.cycles,
            err * 100.0,
            info.est_error * 100.0,
        );
        rows.push(Json::obj([
            ("workload", Json::Str(w.name.to_string())),
            ("level", Json::Str(level.name().to_string())),
            ("exact_cycles", Json::Num(exact.cycles as f64)),
            ("sampled_cycles", Json::Num(sampled.cycles as f64)),
            ("rel_err", Json::Num(err)),
            ("est_error", Json::Num(info.est_error)),
            ("exact_wall_s", Json::Num(te)),
            ("sampled_wall_s", Json::Num(ts)),
            ("cold_profile_wall_s", Json::Num(tc)),
            ("intervals", Json::Num(info.intervals as f64)),
            ("clusters", Json::Num(info.clusters as f64)),
            (
                "fallback",
                if info.fallback {
                    Json::Num(1.0)
                } else {
                    Json::Num(0.0)
                },
            ),
        ]));
    }
    let speedup = wall_exact / wall_sampled.max(1e-9);
    let (interval_len, max_clusters) = match policy {
        epic_sim::SamplePolicy::Sampled {
            interval_len,
            max_clusters,
            ..
        } => (interval_len, max_clusters),
        epic_sim::SamplePolicy::Exact => (0, 0),
    };
    let j = Json::obj([
        ("pr", Json::Num(7.0)),
        ("benchmark", Json::Str("sampled-sim".to_string())),
        ("interval_len", Json::Num(interval_len as f64)),
        ("max_clusters", Json::Num(max_clusters as f64)),
        ("cells", Json::Arr(rows)),
        (
            "totals",
            Json::obj([
                ("exact_wall_s", Json::Num(wall_exact)),
                ("sampled_wall_s", Json::Num(wall_sampled)),
                ("cold_profile_wall_s", Json::Num(wall_cold)),
                ("speedup", Json::Num(speedup)),
                ("worst_rel_err", Json::Num(worst_err)),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(out, format!("{}\n", j.render())) {
        return fail(format!("write {out}: {e}"));
    }
    println!(
        "# sample bench cells={} speedup={speedup:.2}x worst_err={:.3}% -> {out}",
        cells.len(),
        worst_err * 100.0
    );
    if speedup < min_speedup {
        violations.push(format!("speedup {speedup:.2}x < {min_speedup:.2}x"));
    }
    if !violations.is_empty() {
        return fail(format!("sample gate: {}", violations.join("; ")));
    }
    ExitCode::SUCCESS
}

/// `epicc branches`: the Fig. 7-style predictor-zoo table — for every
/// workload at a level, simulate with each zoo member and print the
/// conditional misprediction rates side by side. Functional results
/// (output, return value, checksum) and the branch count itself must be
/// predictor-invariant; any divergence is a hard failure. With
/// `--capture FILE` (exactly one workload × level) the default-predictor
/// run's branch stream is also recorded to FILE and self-checked: the
/// trace replayed through every zoo member must reproduce the live
/// simulators' counts exactly, reported as `replay-ok predictors=4`.
fn branches_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let levels = match parse_levels(kv.get("--level").map_or("ilp-cs", String::as_str)) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let cells = match sweep_cells(kv.get("--workload").map_or("all", String::as_str), &levels) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let capture = kv.get("--capture");
    if capture.is_some() && cells.len() != 1 {
        return fail("--capture needs exactly one workload at one level");
    }

    let zoo = PredictorSpec::ZOO;
    let mut header = vec!["benchmark", "level", "branches"];
    header.extend(zoo.iter().map(|s| s.name()));
    let mut table = epic_bench::Table::new(&header);
    // live per-predictor (predictions, mispredictions) of the last cell,
    // consumed by the capture self-check (single-cell there by construction)
    let mut live_counts: Vec<(PredictorSpec, u64, u64)> = Vec::new();
    let mut last_compiled = None;
    for (w, level) in &cells {
        let compiled = match epic_driver::compile(w, &CompileOptions::for_level(*level)) {
            Ok(c) => c,
            Err(e) => return fail(format!("{} [{}]: {e}", w.name, level.name())),
        };
        live_counts.clear();
        let mut baseline: Option<(Vec<u64>, u64, u64, u64)> = None;
        let mut rates = Vec::new();
        for spec in zoo {
            let sopts = SimOptions {
                predictor: spec,
                ..SimOptions::default()
            };
            let sim = match epic_sim::run(&compiled.mach, &w.ref_args, &sopts) {
                Ok(r) => r,
                Err(e) => {
                    return fail(format!(
                        "{} [{}] {}: sim trapped: {e}",
                        w.name,
                        level.name(),
                        spec.name()
                    ))
                }
            };
            if let Err(e) = sim.check_identity() {
                return fail(format!(
                    "{} [{}] {}: identity: {e}",
                    w.name,
                    level.name(),
                    spec.name()
                ));
            }
            let fingerprint = (
                sim.output.clone(),
                sim.ret,
                sim.checksum,
                sim.counters.branch_predictions,
            );
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(b) if *b != fingerprint => {
                    return fail(format!(
                        "{} [{}]: predictor {} changed program semantics or the branch stream",
                        w.name,
                        level.name(),
                        spec.name()
                    ))
                }
                Some(_) => {}
            }
            let (p, m) = (
                sim.counters.branch_predictions,
                sim.counters.branch_mispredictions,
            );
            live_counts.push((spec, p, m));
            rates.push(if p == 0 {
                "0.00%".to_string()
            } else {
                format!("{:.2}%", 100.0 * m as f64 / p as f64)
            });
        }
        let branches = baseline.as_ref().map_or(0, |b| b.3);
        let mut row = vec![
            w.name.to_string(),
            level.name().to_string(),
            branches.to_string(),
        ];
        row.extend(rates);
        table.row(row);
        last_compiled = Some((w.clone(), *level, compiled));
    }
    println!("conditional branch misprediction rate (Fig. 7):");
    table.print();

    if let Some(path) = capture {
        let (w, level, compiled) = last_compiled.as_ref().expect("capture has one cell");
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => return fail(format!("create {path}: {e}")),
        };
        let (sink, stats) = match epic_sim::BranchTraceSink::new(file, 1 << 24) {
            Ok(s) => s,
            Err(e) => return fail(format!("write {path}: {e}")),
        };
        let run = epic_sim::run_with_sinks(
            &compiled.mach,
            &w.ref_args,
            &SimOptions::default(),
            vec![Box::new(sink)],
        );
        if let Err(e) = run {
            return fail(format!("{} [{}]: sim trapped: {e}", w.name, level.name()));
        }
        let (recorded, dropped) = {
            let g = stats.lock().unwrap();
            (g.recorded, g.dropped)
        };
        if dropped > 0 {
            return fail(format!(
                "trace cap exceeded: {dropped} records dropped (replay would diverge)"
            ));
        }
        println!("captured {recorded} branch records -> {path}");
        let mut f = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => return fail(format!("open {path}: {e}")),
        };
        let records = match epic_sim::read_branch_trace(&mut f) {
            Ok(r) => r,
            Err(e) => return fail(format!("read {path}: {e}")),
        };
        for (spec, live_p, live_m) in &live_counts {
            let mut pred = epic_sim::AnyPredictor::from_spec(*spec);
            let st = epic_sim::replay(&records, &mut pred);
            if st.predictions != *live_p || st.mispredictions != *live_m {
                return fail(format!(
                    "replay {} diverged from live sim: replay {}/{} vs live {}/{}",
                    spec.name(),
                    st.mispredictions,
                    st.predictions,
                    live_m,
                    live_p
                ));
            }
        }
        println!("replay-ok predictors={}", live_counts.len());
    }
    ExitCode::SUCCESS
}

/// `epicc replay`: offline branch prediction over a trace captured by
/// `epicc branches --capture` — no compilation or simulation, just the
/// predictor models over the recorded stream.
fn replay_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let Some(path) = kv.get("--trace") else {
        return fail("replay needs --trace FILE");
    };
    let specs: Vec<PredictorSpec> = match kv.get("--predictor").map(String::as_str) {
        None | Some("all") => PredictorSpec::ZOO.to_vec(),
        Some(v) => match PredictorSpec::parse(v) {
            Some(s) => vec![s],
            None => {
                return fail(format!(
                    "unknown predictor `{v}` (gshare|bimodal|tage|oracle)"
                ))
            }
        },
    };
    let mut f = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => return fail(format!("open {path}: {e}")),
    };
    let records = match epic_sim::read_branch_trace(&mut f) {
        Ok(r) => r,
        Err(e) => return fail(format!("read {path}: {e}")),
    };
    println!("# trace {path}: {} records", records.len());
    for spec in specs {
        let mut pred = epic_sim::AnyPredictor::from_spec(spec);
        let st = epic_sim::replay(&records, &mut pred);
        println!(
            "replay {} predictions={} mispredictions={} misp={:.2}% returns={} \
             ret_mispredictions={}",
            spec.name(),
            st.predictions,
            st.mispredictions,
            st.mispredict_pct(),
            st.returns,
            st.return_mispredictions,
        );
    }
    ExitCode::SUCCESS
}

/// Walk a dotted path (`totals.speedup`) through a JSON object tree.
fn json_path<'a>(j: &'a epic_bench::json::Json, path: &str) -> Option<&'a epic_bench::json::Json> {
    let mut cur = j;
    for seg in path.split('.') {
        match cur {
            epic_bench::json::Json::Obj(kvs) => {
                cur = &kvs.iter().find(|(k, _)| k == seg)?.1;
            }
            _ => return None,
        }
    }
    Some(cur)
}

/// Higher-is-better headline metrics per benchmark family.
fn family_metrics(bench: &str) -> Option<&'static [&'static str]> {
    match bench {
        "serve-saturate" => Some(&["speedup_throughput", "event_loop.throughput_rps"]),
        "sampled-sim" => Some(&["totals.speedup"]),
        _ => None,
    }
}

/// `epicc benchcmp`: the BENCH checkpoint guard (first slice of ROADMAP
/// item 3) — compare a freshly generated bench JSON against the last
/// committed `BENCH_*.json` and red-flag any higher-is-better headline
/// metric that regressed by more than `--threshold-pct` (default 10).
///
/// `--history DIR` is the trajectory view instead: scan every
/// `BENCH_*.json` checkpoint in DIR (filename order — the PR-numbered
/// naming makes that chronological) and print each family's headline
/// metrics across all of them, with the net first-to-last delta.
fn benchcmp_cmd(args: &[String]) -> ExitCode {
    use epic_bench::json::Json;
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    if let Some(dir) = kv.get("--history") {
        return benchcmp_history(dir);
    }
    let (Some(base_path), Some(cur_path)) = (kv.get("--baseline"), kv.get("--current")) else {
        return fail("benchcmp needs --baseline FILE and --current FILE (or --history DIR)");
    };
    let thr: f64 = match kv.get("--threshold-pct").map_or(Ok(10.0), |v| v.parse()) {
        Ok(v) if v >= 0.0 => v,
        _ => return fail("--threshold-pct must be a non-negative number"),
    };
    let read = |p: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
        Json::parse(text.trim()).map_err(|e| format!("{p}: {e}"))
    };
    let (base, cur) = match (read(base_path), read(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let bench_name = |j: &Json| -> Option<String> {
        match json_path(j, "benchmark") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        }
    };
    let (Some(bench), Some(cur_bench)) = (bench_name(&base), bench_name(&cur)) else {
        return fail("both files need a top-level \"benchmark\" field");
    };
    if bench != cur_bench {
        return fail(format!(
            "benchmark mismatch: baseline is `{bench}`, current is `{cur_bench}`"
        ));
    }
    let Some(metrics) = family_metrics(&bench) else {
        return fail(format!("no benchcmp metrics defined for `{bench}`"));
    };
    let num = |j: &Json, path: &str, which: &str| -> Result<f64, String> {
        match json_path(j, path) {
            Some(Json::Num(n)) if *n > 0.0 => Ok(*n),
            _ => Err(format!("{which}: missing or non-positive metric `{path}`")),
        }
    };
    let mut regressions = Vec::new();
    for m in metrics {
        let (b, c) = match (num(&base, m, base_path), num(&cur, m, cur_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => return fail(e),
        };
        let delta = (c - b) / b * 100.0;
        let flag = c < b * (1.0 - thr / 100.0);
        println!(
            "benchcmp {bench} {m} baseline={b:.3} current={c:.3} delta={delta:+.1}%{}",
            if flag { " REGRESSION" } else { "" }
        );
        if flag {
            regressions.push(format!("{m} {delta:+.1}%"));
        }
    }
    if !regressions.is_empty() {
        return fail(format!(
            "bench regression vs {base_path} (> {thr}%): {}",
            regressions.join("; ")
        ));
    }
    println!("benchcmp-ok {bench} metrics={}", metrics.len());
    ExitCode::SUCCESS
}

/// `epicc benchcmp --history DIR`: per-metric trajectory across every
/// committed `BENCH_*.json` checkpoint. Checkpoints whose family has no
/// headline metrics (or that predate a metric) are reported, not fatal
/// — history is an audit view, not a gate.
fn benchcmp_history(dir: &str) -> ExitCode {
    use epic_bench::json::Json;
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => return fail(format!("read {dir}: {e}")),
    };
    let mut files: Vec<String> = entries
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return fail(format!("no BENCH_*.json checkpoints in {dir}"));
    }
    // family -> [(file, parsed json)], in filename (i.e. PR) order
    let mut by_family: std::collections::BTreeMap<String, Vec<(String, Json)>> =
        std::collections::BTreeMap::new();
    for name in &files {
        let path = format!("{dir}/{name}");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail(format!("read {path}: {e}")),
        };
        let j = match Json::parse(text.trim()) {
            Ok(j) => j,
            Err(e) => return fail(format!("{path}: {e}")),
        };
        let Some(Json::Str(bench)) = json_path(&j, "benchmark") else {
            return fail(format!("{path}: no top-level \"benchmark\" field"));
        };
        by_family
            .entry(bench.clone())
            .or_default()
            .push((name.clone(), j));
    }
    for (bench, checkpoints) in &by_family {
        let Some(metrics) = family_metrics(bench) else {
            println!("benchhist {bench}: no headline metrics defined, skipping");
            continue;
        };
        for m in metrics {
            let mut seen: Vec<f64> = Vec::new();
            for (name, j) in checkpoints {
                match json_path(j, m) {
                    Some(Json::Num(v)) => {
                        println!("benchhist {bench} {m} {name} {v:.3}");
                        seen.push(*v);
                    }
                    _ => println!("benchhist {bench} {m} {name} -"),
                }
            }
            if let (Some(first), Some(last)) = (seen.first(), seen.last()) {
                if seen.len() > 1 && *first > 0.0 {
                    println!(
                        "benchhist {bench} {m}: net {:+.1}% over {} checkpoints",
                        (last - first) / first * 100.0,
                        seen.len()
                    );
                }
            }
        }
    }
    println!(
        "benchhist-ok families={} files={}",
        by_family.len(),
        files.len()
    );
    ExitCode::SUCCESS
}

/// `epicc cluster <verb>`: fleet-mode subcommands.
fn cluster_cmd(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("serve") => cluster_serve_cmd(&args[1..]),
        Some("join") => cluster_join_cmd(&args[1..]),
        Some("drain") => cluster_drain_cmd(&args[1..]),
        Some("status") => cluster_status_cmd(&args[1..]),
        _ => fail(
            "usage: epicc cluster serve [--shards N] [--listen A] [--hedge-ms MS] [--workers N] [--queue-cap N]\n\
             \x20      epicc cluster join --gateway HOST:PORT --shard ID=ADDR\n\
             \x20      epicc cluster drain --gateway HOST:PORT --shard ID\n\
             \x20      epicc cluster status --gateway HOST:PORT",
        ),
    }
}

/// One greppable line per completed rebalance:
/// `rebalance <verb> keys_moved=.. bytes=.. ms=.. skipped=.. ring=2,3,4`.
fn print_rebalance(verb: &str, r: &epic_serve::RebalanceReport) {
    let ring: Vec<String> = r.ring.iter().map(u64::to_string).collect();
    println!(
        "rebalance {verb} keys_moved={} bytes={} ms={} skipped={} ring={}",
        r.keys_moved,
        r.bytes,
        r.ms,
        r.skipped,
        ring.join(",")
    );
}

/// Parse a `--shard ID=ADDR` join spec.
fn parse_shard_spec(v: &str) -> Result<(u64, String), String> {
    let Some((id, addr)) = v.split_once('=') else {
        return Err(format!("--shard wants ID=ADDR, got `{v}`"));
    };
    let id = id
        .parse()
        .map_err(|_| format!("bad shard id `{id}` in --shard"))?;
    if addr.is_empty() {
        return Err(format!("--shard `{v}` has an empty address"));
    }
    Ok((id, addr.to_string()))
}

/// `epicc cluster join`: add a running `epicd` to a gateway's ring.
/// The gateway warms the newcomer (pushes every cached key it will
/// own) before cutting the ring over, so it starts serving hits.
fn cluster_join_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let Some(spec) = kv.get("--shard") else {
        return fail("cluster join needs --shard ID=ADDR");
    };
    let (id, addr) = match parse_shard_spec(spec) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    match Endpoint::from_kv(&kv, "cluster join")
        .and_then(|ep| ep.connect())
        .and_then(|mut conn| conn.run("cluster join", |c| c.cluster_join(id, &addr)))
    {
        Ok(report) => {
            print_rebalance("join", &report);
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// `epicc cluster drain`: remove a shard from a gateway's ring. Its
/// cached results are pushed to their new owners before the ring cuts
/// over, so the fleet loses no warmth; the daemon itself keeps running
/// (and still answers fleet-wide shutdown) until stopped.
fn cluster_drain_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let id: u64 = match kv.get("--shard").map(|v| v.parse()) {
        Some(Ok(id)) => id,
        Some(Err(_)) => return fail("--shard must be a shard id (integer)"),
        None => return fail("cluster drain needs --shard ID"),
    };
    match Endpoint::from_kv(&kv, "cluster drain")
        .and_then(|ep| ep.connect())
        .and_then(|mut conn| conn.run("cluster drain", |c| c.cluster_drain(id)))
    {
        Ok(report) => {
            print_rebalance("drain", &report);
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// `epicc cluster status`: the gateway's live view of the fleet — ring
/// version, membership, and per-shard reachability plus cached-key
/// counts (drained-but-running shards show `in_ring=no reachable=yes`).
fn cluster_status_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let fs = match Endpoint::from_kv(&kv, "cluster status")
        .and_then(|ep| ep.connect())
        .and_then(|mut conn| conn.run("cluster status", |c| c.fleet_status()))
    {
        Ok(fs) => fs,
        Err(e) => return fail(e),
    };
    let yn = |b: bool| if b { "yes" } else { "no" };
    let ring: Vec<String> = fs
        .shards
        .iter()
        .filter(|s| s.in_ring)
        .map(|s| s.id.to_string())
        .collect();
    println!("fleet version={} ring={}", fs.version, ring.join(","));
    for s in &fs.shards {
        println!(
            "shard {} addr={} in_ring={} reachable={} keys={}",
            s.id,
            s.addr,
            yn(s.in_ring),
            yn(s.reachable),
            s.keys
        );
    }
    ExitCode::SUCCESS
}

/// `epicc cluster serve`: an N-shard fleet plus `epicg` gateway in one
/// process. Prints `epicg listening on <addr>` and serves until a
/// client sends `shutdown` through the gateway (which stops the shards
/// first, then the gateway).
///
/// In-process caveat: every shard shares the one process-global metrics
/// registry, so the `shard<id>.` sections of `top --cluster` all show
/// the same combined numbers. Stats (`epicc stats`) are per-scheduler
/// and honest. For real per-shard metrics run separate `epicd`
/// processes — the CI cluster stage does exactly that.
fn cluster_serve_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    let shards = match kv.get("--shards").map_or(Ok(3), |v| v.parse::<u64>()) {
        Ok(n) if n > 0 => n,
        _ => return fail("--shards must be a positive integer"),
    };
    let workers = kv.get("--workers").map_or(Ok(0), |v| v.parse());
    let queue_cap = kv.get("--queue-cap").map_or(Ok(256), |v| v.parse());
    let (Ok(workers), Ok(queue_cap)) = (workers, queue_cap) else {
        return fail("--workers/--queue-cap must be integers");
    };
    let defaults = epic_cluster::GatewayConfig::default();
    let hedge_ms = kv
        .get("--hedge-ms")
        .map_or(Ok(defaults.hedge_after.as_millis() as u64), |v| v.parse());
    let Ok(hedge_ms) = hedge_ms else {
        return fail("--hedge-ms must be an integer");
    };
    let listen = kv
        .get("--listen")
        .map_or("127.0.0.1:0", String::as_str)
        .to_string();
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for id in 1..=shards {
        let sched = std::sync::Arc::new(epic_serve::Scheduler::new(
            std::sync::Arc::new(epic_serve::ArtifactStore::in_memory()),
            workers,
            queue_cap,
        ));
        let cfg = epic_serve::ServerConfig {
            shard_id: id,
            ..epic_serve::ServerConfig::default()
        };
        match epic_serve::serve_with("127.0.0.1:0", sched, cfg) {
            Ok(h) => {
                addrs.push((id, h.addr().to_string()));
                handles.push(h);
            }
            Err(e) => return fail(format!("shard {id}: {e}")),
        }
    }
    let gcfg = epic_cluster::GatewayConfig {
        hedge_after: std::time::Duration::from_millis(hedge_ms),
        ..defaults
    };
    let mut gw = match epic_cluster::gate(&listen, &addrs, gcfg) {
        Ok(g) => g,
        Err(e) => return fail(format!("bind {listen}: {e}")),
    };
    println!("epicg listening on {}", gw.addr());
    for (id, addr) in &addrs {
        eprintln!("epicg: shard {id} at {addr}");
    }
    gw.wait();
    // shutdown fanned out through the gateway already stopped the
    // shards' loops; joining drains their schedulers
    for mut h in handles {
        h.wait();
    }
    ExitCode::SUCCESS
}

/// `epicc shutdown`: ask a server to exit cleanly.
fn shutdown_cmd(args: &[String]) -> ExitCode {
    let kv = match parse_kv(args, &[]) {
        Ok(kv) => kv,
        Err(e) => return fail(e),
    };
    match Endpoint::from_kv(&kv, "shutdown")
        .and_then(|ep| ep.connect())
        .and_then(|mut conn| conn.run("shutdown", |c| c.shutdown()))
    {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}
