//! Shared service-endpoint plumbing for `epicc` subcommands.
//!
//! Every networked subcommand (`submit`, `stats`, `top`, `shutdown`,
//! `cluster join/drain/status`) used to re-implement the same three
//! things: pulling `--addr`/`--gateway` out of its flag map, connecting,
//! and formatting connection/protocol errors. [`Endpoint`] owns all
//! three, so a new subcommand gets address aliasing, bounded connect
//! retry, and uniform error messages for free.

use std::collections::HashMap;
use std::time::Duration;

/// A server address as named on the command line. `--gateway` is an
/// alias for `--addr`: an `epicg` gateway speaks the same protocol, and
/// the spelling documents intent in scripts.
pub struct Endpoint {
    addr: String,
}

impl Endpoint {
    /// Pull the endpoint out of a parsed flag map; `what` names the
    /// subcommand for the usage error.
    pub fn from_kv(kv: &HashMap<String, String>, what: &str) -> Result<Endpoint, String> {
        match kv.get("--addr").or_else(|| kv.get("--gateway")) {
            Some(addr) => Ok(Endpoint { addr: addr.clone() }),
            None => Err(format!("{what} needs --addr (or --gateway) HOST:PORT")),
        }
    }

    /// Connect with a short capped-exponential retry on refused
    /// connections — in scripts the daemon is often still binding when
    /// the first client races in. Errors carry the address.
    pub fn connect(&self) -> Result<Conn, String> {
        let mut delay = Duration::from_millis(10);
        let mut last = None;
        for _ in 0..5 {
            match epic_serve::Client::connect(&self.addr) {
                Ok(client) => {
                    return Ok(Conn {
                        addr: self.addr.clone(),
                        client,
                    })
                }
                Err(e) => {
                    let refused = matches!(
                        &e,
                        epic_serve::ClientError::Io(io)
                            if io.kind() == std::io::ErrorKind::ConnectionRefused
                    );
                    last = Some(e);
                    if !refused {
                        break;
                    }
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
            }
        }
        Err(format!(
            "connect {}: {}",
            self.addr,
            last.expect("loop ran at least once")
        ))
    }
}

/// A connected client plus the address it points at, for error context.
pub struct Conn {
    addr: String,
    client: epic_serve::Client,
}

impl Conn {
    /// Run one protocol call, mapping any failure to a uniform
    /// `<what> <addr>: <error>` message.
    pub fn run<T>(
        &mut self,
        what: &str,
        f: impl FnOnce(&mut epic_serve::Client) -> Result<T, epic_serve::ClientError>,
    ) -> Result<T, String> {
        f(&mut self.client).map_err(|e| format!("{what} {}: {e}", self.addr))
    }
}
