//! # impact-epic
//!
//! Umbrella crate for the reproduction of *"Field-testing IMPACT EPIC
//! research results in Itanium 2"* (ISCA 2004). Re-exports every component
//! crate; see the README for the architecture overview and `examples/` for
//! runnable entry points.

pub use epic_core as core;
pub use epic_driver as driver;
pub use epic_ir as ir;
pub use epic_lang as lang;
pub use epic_mach as mach;
pub use epic_opt as opt;
pub use epic_sched as sched;
pub use epic_sim as sim;
pub use epic_workloads as workloads;
