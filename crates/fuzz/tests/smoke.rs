//! A miniature clean-compiler campaign: a handful of seed + mutant
//! cases across all four levels must produce zero oracle violations.
//! This is the in-tree version of the CI smoke-fuzz stage.

use epic_fuzz::{run_fuzz, FuzzConfig};

#[test]
fn clean_compiler_smoke_campaign_is_violation_free() {
    let mut cfg = FuzzConfig::default();
    cfg.max_cases = 10;
    cfg.shrink_failures = false;
    let report = run_fuzz(&[1, 7, 42], &cfg);
    assert!(
        report.failures.is_empty(),
        "oracle violations on the stock compiler: {:#?}",
        report.failures
    );
    assert_eq!(report.cases, 10);
    assert!(report.new_signatures >= 2, "coverage signal is flat");
}
