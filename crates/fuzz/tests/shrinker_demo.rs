//! End-to-end proof that the fuzz subsystem detects and minimizes a
//! real miscompile: with the driver's deliberate bug enabled
//! (`CompileOptions::inject_bug`, an off-by-one on add-immediates), the
//! harness must (a) convict a generated program, and (b) shrink the
//! reproducer below 15 source lines while it still fails the same way.

use epic_fuzz::oracle::{self, OptLevel, OracleOptions, Verdict};
use epic_fuzz::{corpus, run_fuzz, shrink, FuzzConfig};
use epic_ir::testing::minic_program;

fn buggy_oracle() -> OracleOptions {
    let mut opts = OracleOptions::default();
    // One level keeps each shrink probe to a single compile+sim; the bug
    // is level-independent (it sits right after classical optimization).
    opts.levels = vec![OptLevel::Gcc];
    opts.inject_bug = true;
    opts
}

#[test]
fn injected_bug_shrinks_below_15_lines() {
    // Seed 7 is in corpus/seeds.txt and its outputs observably depend on
    // add-immediates at GCC.
    let src = minic_program(7);
    let args = oracle::args_for_seed(7);
    let train2 = oracle::alt_train_args(args);
    let opts = buggy_oracle();

    let Verdict::Fail(f) = oracle::check(&src, args, train2, &opts) else {
        panic!("injected bug must be caught on seed 7");
    };
    assert!(f.bucket.starts_with("mismatch@"), "bucket {}", f.bucket);

    let mut pred = |s: &str| oracle::fails_with(s, args, train2, &opts, &f.bucket);
    let (small, stats) = shrink::shrink(&src, &mut pred, 800);
    assert!(pred(&small), "shrunk reproducer no longer fails:\n{small}");
    assert!(
        stats.to_lines < 15,
        "reproducer still {} lines (from {}, {} probes):\n{small}",
        stats.to_lines,
        stats.from_lines,
        stats.probes
    );
    assert!(
        stats.to_lines < stats.from_lines,
        "shrinker made no progress"
    );
}

#[test]
fn fuzz_campaign_finds_the_injected_bug() {
    let mut cfg = FuzzConfig::default();
    cfg.oracle = buggy_oracle();
    cfg.max_cases = 16;
    cfg.max_failures = 1;
    cfg.shrink_probes = 900;
    let seeds = corpus::parse_seed_list(corpus::DEFAULT_SEEDS);
    let report = run_fuzz(&seeds, &cfg);
    assert_eq!(report.failures.len(), 1, "campaign must convict the bug");
    let f = &report.failures[0];
    let shrunk = f.shrunk.as_deref().expect("shrinking was enabled");
    assert!(shrunk.lines().count() < 15, "{shrunk}");
    // The reported snippet must be paste-ready for the differential
    // suite's check_source helper.
    let snippet = f.regression_snippet();
    assert!(snippet.contains("check_source("), "{snippet}");
    assert!(snippet.contains(&format!("[{}, {}]", f.args[0], f.args[1])));
}
