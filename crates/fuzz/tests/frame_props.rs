//! Frame-codec property tests: the incremental decoder agrees
//! byte-for-byte with `encode_request`/`encode_response` for random
//! messages under random chunking, and survives arbitrary garbage.

use epic_fuzz::framefuzz::{check_garbage, check_requests, check_responses, decode_chunked};
use epic_ir::testing::Rng;

#[test]
fn random_request_streams_roundtrip_under_any_chunking() {
    for seed in 0..40u64 {
        let mut rng = Rng::new(0x5eed_0000 + seed);
        let batch = 1 + (seed as usize % 8);
        check_requests(&mut rng, batch).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn random_response_streams_roundtrip_under_any_chunking() {
    for seed in 0..40u64 {
        let mut rng = Rng::new(0x5eed_1000 + seed);
        let batch = 1 + (seed as usize % 8);
        check_responses(&mut rng, batch).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn arbitrary_byte_bodies_survive_any_chunking() {
    // the pure framing property, independent of the message codecs:
    // arbitrary bodies (including empty) in, the same bodies out
    for seed in 0..20u64 {
        let mut rng = Rng::new(0xb0d7 + seed);
        let bodies: Vec<Vec<u8>> = (0..1 + rng.pick_usize(6))
            .map(|_| {
                let len = rng.pick_usize(4096);
                (0..len).map(|_| rng.next_u64() as u8).collect()
            })
            .collect();
        let mut wire = Vec::new();
        for b in &bodies {
            wire.extend_from_slice(&(b.len() as u32).to_be_bytes());
            wire.extend_from_slice(b);
        }
        let frames = decode_chunked(&mut rng, &wire).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(frames, bodies, "seed {seed}");
    }
}

#[test]
fn garbage_streams_never_panic_the_decoder() {
    for seed in 0..20u64 {
        let mut rng = Rng::new(0x6a5b_a6e + seed);
        check_garbage(&mut rng, 4096);
    }
}
