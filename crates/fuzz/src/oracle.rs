//! Metamorphic oracles: every way a (source, args) pair can convict the
//! compiler without a hand-written expected output.
//!
//! A candidate is judged by [`check`], which renders one of three
//! verdicts:
//!
//! * [`Verdict::Reject`] — the program is outside the oracle's domain
//!   (frontend rejects it, or the reference interpreter runs out of
//!   fuel). Mutation produces these routinely; they are cheap to discard
//!   and carry no signal.
//! * [`Verdict::Pass`] — every oracle held; the coverage signature
//!   summarizes which pipeline behavior the case exercised.
//! * [`Verdict::Fail`] — an oracle was violated. The failure carries a
//!   stable `bucket` string so the shrinker can insist a smaller program
//!   fails *the same way*, not merely somehow.
//!
//! The oracles, in the order they run:
//!
//! 1. **Interpreter reference.** `epic_ir::interp` on the frontend IR is
//!    the semantic ground truth.
//! 2. **Trap robustness.** If the interpreter traps, the pipeline must
//!    still hold up: every level compiles with per-pass verification
//!    clean, and the simulator may trap or finish but never report
//!    malformed machine code. Nothing stronger is sound — the optimizer
//!    legally deletes *dead* trapping ops (DCE removes unused loads and
//!    divisions by design), after which execution continues into
//!    arbitrary other behavior (see [`check_trap_agreement`]'s note for
//!    the real false positive that taught us this).
//! 3. **Opt-level agreement.** If the interpreter finishes, every level
//!    (compiled with `verify_each_pass`, so each transform is checked
//!    individually) must simulate to the identical output stream.
//! 4. **Sampled-sim agreement.** The SimPoint-style sampler
//!    (DESIGN.md §12) re-runs the level with a small interval length;
//!    its functional results (output stream, return value) must be
//!    *identical* to the exact simulator's — sampling may only
//!    extrapolate cycles — and the extrapolated accounting must still
//!    satisfy the cycle identity.
//! 5. **Predictor invariance.** Re-simulating the level with every
//!    non-default predictor in the zoo (bimodal, TAGE, oracle) must
//!    leave the output stream, return value, and memory checksum
//!    untouched and keep the accounting identity intact — predictor
//!    choice may only move cycles between categories, never change
//!    semantics (DESIGN.md §13).
//! 6. **Profile invariance.** Training the ILP-CS profile on a different
//!    input must not change the output — profile feedback may only move
//!    cycles, never semantics (the paper's Sec. 4.6 experiment depends
//!    on this).
//! 7. **Cache consistency.** The measurement must survive the job
//!    service's wire codec bit-for-bit, and the content-addressed store
//!    must serve the same digest for the same key across the whole
//!    campaign — a violation means either the codec corrupts data, the
//!    key function collides, or the pipeline is nondeterministic.

use epic_driver::{
    compile_source, CompileOptions, Compiled, DriverError, Measurement, ProfileInput,
};
use epic_ir::interp::{self, InterpOptions, Trap};
use epic_serve::{codec, ArtifactStore, JobSpec};
use epic_sim::{PredictorSpec, SamplePolicy, SimOptions, Warmup};
use std::sync::OnceLock;

pub use epic_driver::OptLevel;

/// Oracle configuration.
#[derive(Clone, Debug)]
pub struct OracleOptions {
    /// Levels to cross-check (restricting to one makes shrink probes
    /// cheap).
    pub levels: Vec<OptLevel>,
    /// Interpreter fuel (dynamic ops) for the reference run and the
    /// profiling pass; mutants exceeding it are rejected, not failed.
    pub interp_fuel: u64,
    /// Simulator cycle budget. Generously above `interp_fuel` ×
    /// worst-case cycles-per-op, so it only fires on a genuine
    /// divergence.
    pub sim_fuel: u64,
    /// Run the sampled-sim oracle: re-simulate each level through the
    /// SimPoint-style sampler and demand identical functional results
    /// plus a clean accounting identity (one extra sampled sim per
    /// level — cheap, the sampler's replay is functional).
    pub sampled_sim: bool,
    /// Run the predictor-invariance oracle: re-simulate each level with
    /// every non-default zoo predictor and demand identical functional
    /// results plus a clean accounting identity (three extra sims per
    /// level — no extra compiles).
    pub predictor_invariance: bool,
    /// Run the profile-invariance oracle (needs one extra ILP-CS
    /// compile+sim per case).
    pub profile_invariance: bool,
    /// Run the cache-consistency oracle: round-trip every measurement
    /// through the job service's codec and a process-wide
    /// content-addressed store (cheap — no extra compile or sim).
    pub cache_consistency: bool,
    /// Enable the driver's deliberate miscompile — the harness's own
    /// end-to-end self-test.
    pub inject_bug: bool,
}

impl Default for OracleOptions {
    fn default() -> OracleOptions {
        OracleOptions {
            levels: OptLevel::ALL.to_vec(),
            interp_fuel: 5_000_000,
            sim_fuel: 200_000_000,
            sampled_sim: true,
            predictor_invariance: true,
            profile_invariance: true,
            cache_consistency: true,
            inject_bug: false,
        }
    }
}

/// A violated oracle.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Stable triage key, e.g. `mismatch@GCC`, `sim-trap@ILP-CS:div0`,
    /// `trap-disagree@O-NS`, `compile@ILP-NS`, `profile-variance`.
    pub bucket: String,
    /// Human-readable specifics.
    pub detail: String,
    /// The level that failed, when one is identifiable — lets the
    /// shrinker re-check against that level alone.
    pub level: Option<OptLevel>,
}

/// Outcome of running every oracle on one candidate.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// All oracles held; `signature` fingerprints the pipeline behavior
    /// (per-pass op/block deltas across all levels) for coverage-guided
    /// corpus growth.
    Pass {
        /// Coverage fingerprint.
        signature: u64,
    },
    /// Out of the oracle's domain (reason is a static triage key).
    Reject(&'static str),
    /// An oracle was violated.
    Fail(Failure),
}

/// Trap class of an interpreter trap, aligned with
/// [`epic_sim::SimTrap::bucket`] so the two sides can be compared.
pub fn interp_bucket(t: &Trap) -> &'static str {
    match t {
        Trap::MemFault(_) => "mem-fault",
        Trap::DivByZero => "div0",
        Trap::BadCall(_) => "bad-call",
        Trap::OutOfFuel => "fuel",
        Trap::NatConsumed(_) => "nat",
        Trap::FellOffBlock(_) => "malformed",
    }
}

fn level_opts(level: OptLevel, opts: &OracleOptions) -> CompileOptions {
    let mut c = CompileOptions::for_level(level);
    c.verify_each_pass = true;
    c.profile_fuel = opts.interp_fuel;
    c.inject_bug = opts.inject_bug;
    c
}

fn fold_sig(acc: u64, x: u64) -> u64 {
    // FNV-1a over the 8 bytes of x.
    let mut h = acc;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run every oracle on `(src, args)`. `train2` is the alternate training
/// input for the profile-invariance oracle (use [`alt_train_args`]).
pub fn check(src: &str, args: [i64; 2], train2: [i64; 2], opts: &OracleOptions) -> Verdict {
    let Ok(prog) = epic_lang::compile(src) else {
        return Verdict::Reject("frontend");
    };
    let iopts = InterpOptions {
        fuel: opts.interp_fuel,
        collect_profile: false,
    };
    let sopts = SimOptions {
        fuel_cycles: opts.sim_fuel,
        ..SimOptions::default()
    };
    let want = match interp::run(&prog, &args, iopts) {
        Ok(r) => r.output,
        Err(Trap::OutOfFuel) => return Verdict::Reject("interp-fuel"),
        Err(Trap::FellOffBlock(_)) => return Verdict::Reject("malformed"),
        Err(trap) => return check_trap_agreement(src, args, &trap, opts, &sopts),
    };

    let mut sig = 0xcbf2_9ce4_8422_2325u64;
    for &level in &opts.levels {
        let copts = level_opts(level, opts);
        let compiled = match compile_source(src, &args, &args, &copts) {
            Ok(c) => c,
            Err(e) => {
                return Verdict::Fail(Failure {
                    bucket: format!("compile@{}", level.name()),
                    detail: e.to_string(),
                    level: Some(level),
                })
            }
        };
        let sim = match epic_sim::run(&compiled.mach, &args, &sopts) {
            Ok(s) => s,
            Err(t) => {
                return Verdict::Fail(Failure {
                    bucket: format!("sim-trap@{}:{}", level.name(), t.bucket()),
                    detail: t.to_string(),
                    level: Some(level),
                })
            }
        };
        // accounting-identity oracle: every cycle charged exactly once,
        // to one category and one function (tentpole invariant)
        if let Err(e) = sim.check_identity() {
            return Verdict::Fail(Failure {
                bucket: format!("acct-identity@{}", level.name()),
                detail: e,
                level: Some(level),
            });
        }
        if sim.output != want {
            return Verdict::Fail(Failure {
                bucket: format!("mismatch@{}", level.name()),
                detail: format!(
                    "interp {:?}… vs sim {:?}… ({} vs {} values)",
                    &want[..want.len().min(4)],
                    &sim.output[..sim.output.len().min(4)],
                    want.len(),
                    sim.output.len()
                ),
                level: Some(level),
            });
        }
        if opts.sampled_sim {
            if let Some(f) = sampled_sim_failure(&compiled, &args, &sopts, &sim, level) {
                return Verdict::Fail(f);
            }
        }
        if opts.predictor_invariance {
            if let Some(f) = predictor_invariance_failure(&compiled, &args, &sopts, &sim, level) {
                return Verdict::Fail(f);
            }
        }
        sig = fold_sig(sig, compiled.pass_timeline.coverage_signature());
        if opts.cache_consistency {
            let m = Measurement {
                level,
                compiled: compiled.stats(),
                sim,
            };
            if let Some(f) =
                cache_consistency_failure(src, args, &copts, &sopts, m, opts.inject_bug)
            {
                return Verdict::Fail(f);
            }
        }
    }

    if opts.profile_invariance
        && opts.levels.contains(&OptLevel::IlpCs)
        && train2 != args
        && interp::run(&prog, &train2, iopts).is_ok()
    {
        let mut copts = level_opts(OptLevel::IlpCs, opts);
        copts.profile_input = ProfileInput::Train; // train on train2 below
        match compile_source(src, &train2, &args, &copts) {
            Ok(c) => match epic_sim::run(&c.mach, &args, &sopts) {
                Ok(s) if s.output == want => {
                    if let Err(e) = s.check_identity() {
                        return Verdict::Fail(Failure {
                            bucket: format!("acct-identity@{}", OptLevel::IlpCs.name()),
                            detail: e,
                            level: Some(OptLevel::IlpCs),
                        });
                    }
                }
                Ok(s) => {
                    return Verdict::Fail(Failure {
                        bucket: "profile-variance".into(),
                        detail: format!(
                            "training on {train2:?} changed the output ({} vs {} values)",
                            s.output.len(),
                            want.len()
                        ),
                        level: Some(OptLevel::IlpCs),
                    })
                }
                Err(t) => {
                    return Verdict::Fail(Failure {
                        bucket: format!("profile-variance:{}", t.bucket()),
                        detail: format!("training on {train2:?} made the sim trap: {t}"),
                        level: Some(OptLevel::IlpCs),
                    })
                }
            },
            Err(e) => {
                return Verdict::Fail(Failure {
                    bucket: "profile-variance:compile".into(),
                    detail: format!("training on {train2:?} broke compilation: {e}"),
                    level: Some(OptLevel::IlpCs),
                })
            }
        }
    }

    Verdict::Pass { signature: sig }
}

/// Oracle 4: the SimPoint-style sampler must be functionally invisible.
/// Its output stream, return value, and memory checksum are produced by
/// the functional profiling pass — any divergence from the exact
/// simulator convicts the sampler's op-stream replay — and its
/// extrapolated accounting must still charge every cycle exactly once.
/// The tiny interval length forces genuine multi-interval sampling
/// (clustering, representative replay, extrapolation) even on
/// fuzz-sized programs.
fn sampled_sim_failure(
    compiled: &Compiled,
    args: &[i64; 2],
    sopts: &SimOptions,
    exact: &epic_sim::SimResult,
    level: OptLevel,
) -> Option<Failure> {
    let fail = |detail: String| {
        Some(Failure {
            bucket: format!("sampled-sim@{}", level.name()),
            detail,
            level: Some(level),
        })
    };
    let sp = SimOptions {
        sample: SamplePolicy::Sampled {
            interval_len: 2_000,
            max_clusters: 4,
            warmup: Warmup::Full,
        },
        ..*sopts
    };
    let s = match epic_sim::run(&compiled.mach, args, &sp) {
        Ok(s) => s,
        Err(t) => return fail(format!("sampler trapped where exact finished: {t}")),
    };
    if s.output != exact.output {
        return fail(format!(
            "sampled output diverged ({} vs {} values)",
            s.output.len(),
            exact.output.len()
        ));
    }
    if s.ret != exact.ret {
        return fail(format!("sampled ret {} != exact {}", s.ret, exact.ret));
    }
    if s.checksum != exact.checksum {
        return fail("sampled memory checksum diverged".into());
    }
    if let Err(e) = s.check_identity() {
        return fail(format!("sampled accounting identity broken: {e}"));
    }
    None
}

/// Oracle 5: branch predictor choice is microarchitectural only. Every
/// non-default zoo member re-simulates the already-compiled level; the
/// output stream, return value, and memory checksum must match the
/// default-predictor run exactly, the branch count must be identical
/// (the retired branch stream is predictor-independent in an in-order
/// pipeline), and the accounting identity must survive the shifted
/// cycle distribution.
fn predictor_invariance_failure(
    compiled: &Compiled,
    args: &[i64; 2],
    sopts: &SimOptions,
    exact: &epic_sim::SimResult,
    level: OptLevel,
) -> Option<Failure> {
    for spec in PredictorSpec::ZOO {
        if spec == PredictorSpec::default() {
            continue; // `exact` is the default-predictor run
        }
        let fail = |detail: String| {
            Some(Failure {
                bucket: format!("predictor-invariance@{}", level.name()),
                detail: format!("{}: {detail}", spec.name()),
                level: Some(level),
            })
        };
        let po = SimOptions {
            predictor: spec,
            ..*sopts
        };
        let s = match epic_sim::run(&compiled.mach, args, &po) {
            Ok(s) => s,
            Err(t) => return fail(format!("trapped where the default predictor finished: {t}")),
        };
        if s.output != exact.output {
            return fail(format!(
                "output diverged ({} vs {} values)",
                s.output.len(),
                exact.output.len()
            ));
        }
        if s.ret != exact.ret {
            return fail(format!("ret {} != default {}", s.ret, exact.ret));
        }
        if s.checksum != exact.checksum {
            return fail("memory checksum diverged".into());
        }
        if s.counters.branch_predictions != exact.counters.branch_predictions {
            return fail(format!(
                "branch stream changed: {} vs {} conditional branches",
                s.counters.branch_predictions, exact.counters.branch_predictions
            ));
        }
        if let Err(e) = s.check_identity() {
            return fail(format!("accounting identity broken: {e}"));
        }
    }
    None
}

/// Process-wide store backing the cache-consistency oracle. One store
/// per campaign: the key → digest mapping must hold across every case
/// the process ever checks, so the same programs resurfacing through
/// mutation or shrinking re-validate it for free.
fn oracle_store() -> &'static ArtifactStore {
    static STORE: OnceLock<ArtifactStore> = OnceLock::new();
    STORE.get_or_init(ArtifactStore::in_memory)
}

/// Oracle 5: the measurement survives the serve codec bit-for-bit, and
/// the content-addressed store serves exactly one digest per job key.
/// `inject_bug` skips the cross-case store step (but not the codec
/// round-trip): the injected miscompile is deliberately invisible to the
/// cache key, so a self-test campaign would otherwise convict the store
/// for the driver's planted bug.
fn cache_consistency_failure(
    src: &str,
    args: [i64; 2],
    copts: &CompileOptions,
    sopts: &SimOptions,
    m: Measurement,
    inject_bug: bool,
) -> Option<Failure> {
    let level = m.level;
    let fail = |detail: String| {
        Some(Failure {
            bucket: format!("cache-consistency@{}", level.name()),
            detail,
            level: Some(level),
        })
    };
    let d = codec::digest(&m);
    let back = match codec::decode_measurement(&codec::encode_measurement(&m)) {
        Ok(b) => b,
        Err(e) => return fail(format!("fresh encoding failed to decode: {e}")),
    };
    if codec::digest(&back) != d {
        return fail("codec round-trip changed the measurement digest".into());
    }
    if inject_bug {
        return None;
    }
    let key = JobSpec::from_options(src, &args, &args, copts, sopts).job_key();
    let store = oracle_store();
    match store.lookup(key) {
        Some(prior) => {
            if codec::digest(&prior) != d {
                return fail(format!(
                    "key {} already maps to a different digest (collision or nondeterminism)",
                    key.hex()
                ));
            }
        }
        None => {
            store.insert(key, m);
            match store.lookup(key) {
                Some(got) if codec::digest(&got) == d => {}
                Some(_) => return fail("store readback returned a different digest".into()),
                None => return fail("store lost a freshly inserted measurement".into()),
            }
        }
    }
    None
}

/// The interpreter trapped. The strongest *sound* claim on such
/// programs is surprisingly weak: DCE legally deletes dead trapping ops
/// (an unused faulting load or division — documented semantics in
/// `epic-opt`), after which execution continues into arbitrary other
/// behavior — a different trap class, fuel exhaustion, or clean
/// completion. An early version of this oracle demanded trap-class
/// agreement and promptly convicted the stock compiler: interp
/// mem-faulted on a dead `g[-1]` load, GCC deleted it, and the program
/// ran on into an unrelated division by zero.
///
/// What must still hold: every level compiles (the profiling
/// interpreter may surface the source trap — any class, since profiling
/// happens at different optimization points per level), IR verification
/// stays clean at every pass, and the simulator never reports
/// *malformed machine code*, whatever else the program does.
fn check_trap_agreement(
    src: &str,
    args: [i64; 2],
    trap: &Trap,
    opts: &OracleOptions,
    sopts: &SimOptions,
) -> Verdict {
    let want = interp_bucket(trap);
    let mut sig = fold_sig(0x8421_e4e2, want.len() as u64);
    // A deleted trap can leave the program running indefinitely; cap the
    // sim budget so such mutants stay cheap (fuel exhaustion is legal
    // here anyway).
    let sopts = SimOptions {
        fuel_cycles: sopts.fuel_cycles.min(30_000_000),
        ..*sopts
    };
    for &level in &opts.levels {
        let copts = level_opts(level, opts);
        match compile_source(src, &args, &args, &copts) {
            // Non-GCC levels interpret the program while profiling, so
            // the source-level trap surfaces at compile time.
            Err(DriverError::Profile(t)) => {
                sig = fold_sig(sig, interp_bucket(&t).len() as u64);
            }
            Err(e) => {
                return Verdict::Fail(Failure {
                    bucket: format!("compile@{}", level.name()),
                    detail: format!("trapping program (interp: {trap}) broke the pipeline: {e}"),
                    level: Some(level),
                })
            }
            Ok(compiled) => match epic_sim::run(&compiled.mach, &args, &sopts) {
                Ok(r) => {
                    if let Err(e) = r.check_identity() {
                        return Verdict::Fail(Failure {
                            bucket: format!("acct-identity@{}", level.name()),
                            detail: e,
                            level: Some(level),
                        });
                    }
                }
                Err(t) if t.bucket() == "malformed" => {
                    return Verdict::Fail(Failure {
                        bucket: format!("sim-malformed@{}", level.name()),
                        detail: format!("interp: {trap}; sim: {t}"),
                        level: Some(level),
                    })
                }
                Err(t) => sig = fold_sig(sig, fold_sig(level as u64 + 1, t.cycle)),
            },
        }
    }
    Verdict::Pass { signature: sig }
}

/// Does `(src, args)` still fail with exactly `bucket` under `opts`?
/// This is the shrinker's predicate: candidates that no longer compile,
/// no longer fail, or fail *differently* all return false.
pub fn fails_with(
    src: &str,
    args: [i64; 2],
    train2: [i64; 2],
    opts: &OracleOptions,
    bucket: &str,
) -> bool {
    matches!(check(src, args, train2, opts), Verdict::Fail(f) if f.bucket == bucket)
}

/// The runtime arguments a fuzz seed runs with (same derivation the
/// differential suite uses, so reproducers paste straight into it).
pub fn args_for_seed(seed: u64) -> [i64; 2] {
    [(seed % 97) as i64, (seed % 13) as i64]
}

/// A deterministic alternate training input for the profile-invariance
/// oracle, distinct from `args` for every `args` in range.
pub fn alt_train_args(args: [i64; 2]) -> [i64; 2] {
    [(args[0] + 17) % 97, (args[1] + 5) % 13]
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::testing::minic_program;

    #[test]
    fn clean_generated_programs_pass_all_oracles() {
        let mut opts = OracleOptions::default();
        // Keep the unit test fast: two levels, plus profile invariance.
        opts.levels = vec![OptLevel::Gcc, OptLevel::IlpCs];
        for seed in [3u64, 99] {
            let src = minic_program(seed);
            let args = args_for_seed(seed);
            match check(&src, args, alt_train_args(args), &opts) {
                Verdict::Pass { .. } => {}
                v => panic!("seed {seed}: expected Pass, got {v:?}\n{src}"),
            }
        }
    }

    #[test]
    fn cache_consistency_oracle_holds_across_repeat_checks() {
        // Same case twice: the first check populates the process-wide
        // store, the second must find the prior entry and agree with it
        // (exercising both branches of the cross-case consistency step).
        let mut opts = OracleOptions::default();
        opts.levels = vec![OptLevel::Gcc];
        opts.profile_invariance = false;
        assert!(opts.cache_consistency, "oracle must default on");
        let src = minic_program(11);
        let args = args_for_seed(11);
        for round in 0..2 {
            match check(&src, args, alt_train_args(args), &opts) {
                Verdict::Pass { .. } => {}
                v => panic!("round {round}: expected Pass, got {v:?}"),
            }
        }
    }

    #[test]
    fn predictor_invariance_oracle_defaults_on_and_passes_clean_programs() {
        let mut opts = OracleOptions::default();
        assert!(opts.predictor_invariance, "oracle must default on");
        // isolate it: one level, everything else off, so a Pass here
        // means the zoo sims themselves agreed
        opts.levels = vec![OptLevel::IlpCs];
        opts.sampled_sim = false;
        opts.profile_invariance = false;
        opts.cache_consistency = false;
        let src = minic_program(21);
        let args = args_for_seed(21);
        match check(&src, args, alt_train_args(args), &opts) {
            Verdict::Pass { .. } => {}
            v => panic!("expected Pass, got {v:?}"),
        }
    }

    #[test]
    fn garbage_source_is_rejected_not_failed() {
        let opts = OracleOptions::default();
        assert!(matches!(
            check("fn main(", [0, 0], [1, 1], &opts),
            Verdict::Reject("frontend")
        ));
    }

    #[test]
    fn trapping_programs_stay_in_domain_without_convicting() {
        // A live division by zero: the interpreter traps; every level
        // must still compile verifier-clean and simulate without
        // reporting malformed code.
        let src = "fn main(a: int, b: int) {\n  out(7 / b);\n}\n";
        let opts = OracleOptions::default();
        match check(src, [5, 0], [6, 1], &opts) {
            Verdict::Pass { .. } => {}
            v => panic!("expected the trap path to pass, got {v:?}"),
        }
        // A *dead* trapping load whose deletion leaves the program
        // running into other behavior — the documented reason this
        // oracle is lenient. Must not convict.
        let dead = "global g: [int; 64];\nfn main(a: int, b: int) {\nlet v = g[0 - 1] * 0;\nout(v + a);\n}\n";
        match check(dead, [3, 1], [4, 2], &opts) {
            Verdict::Pass { .. } => {}
            v => panic!("dead-trap deletion must be legal, got {v:?}"),
        }
    }

    #[test]
    fn injected_bug_is_convicted_as_mismatch() {
        let mut opts = OracleOptions::default();
        opts.levels = vec![OptLevel::Gcc];
        opts.inject_bug = true;
        let src = minic_program(7);
        let args = args_for_seed(7);
        match check(&src, args, alt_train_args(args), &opts) {
            Verdict::Fail(f) => {
                assert!(f.bucket.starts_with("mismatch@"), "bucket {}", f.bucket)
            }
            v => panic!("expected the injected bug to be caught, got {v:?}"),
        }
    }
}
