//! Differential fuzzing driver.
//!
//! ```text
//! cargo run --release -p epic-fuzz --bin fuzz -- [--cases N] [--seconds S]
//!     [--seed N] [--corpus FILE] [--max-corpus N] [--levels L1,L2]
//!     [--no-shrink] [--no-cache-oracle] [--inject-bug]
//! ```
//!
//! Exits 0 when every case passed its oracles, 1 on any violation
//! (after printing a minimized, paste-ready regression snippet per
//! failure), 2 on usage errors.

use epic_fuzz::oracle::OptLevel;
use epic_fuzz::{corpus, run_fuzz, FuzzConfig};

const USAGE: &str = "usage: fuzz [--cases N] [--seconds S] [--seed N] [--corpus FILE]
            [--max-corpus N] [--levels GCC,O-NS,ILP-NS,ILP-CS]
            [--no-shrink] [--no-cache-oracle] [--inject-bug]";

fn parse_level(name: &str) -> Option<OptLevel> {
    OptLevel::ALL.into_iter().find(|l| l.name() == name)
}

fn main() {
    let mut cfg = FuzzConfig::default();
    let mut corpus_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let next_value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                cfg.max_cases = next_value("--cases", &mut args)
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--cases: not a number\n{USAGE}");
                        std::process::exit(2);
                    })
            }
            "--seconds" => {
                cfg.max_seconds = Some(next_value("--seconds", &mut args).parse().unwrap_or_else(
                    |_| {
                        eprintln!("--seconds: not a number\n{USAGE}");
                        std::process::exit(2);
                    },
                ))
            }
            "--seed" => {
                cfg.seed = next_value("--seed", &mut args).parse().unwrap_or_else(|_| {
                    eprintln!("--seed: not a number\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--max-corpus" => {
                cfg.max_corpus = next_value("--max-corpus", &mut args)
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--max-corpus: not a number\n{USAGE}");
                        std::process::exit(2);
                    })
            }
            "--levels" => {
                let spec = next_value("--levels", &mut args);
                let levels: Option<Vec<OptLevel>> =
                    spec.split(',').map(|n| parse_level(n.trim())).collect();
                cfg.oracle.levels = levels.unwrap_or_else(|| {
                    eprintln!("--levels: unknown level in {spec:?}\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--corpus" => corpus_path = Some(next_value("--corpus", &mut args)),
            "--no-shrink" => cfg.shrink_failures = false,
            "--no-cache-oracle" => cfg.oracle.cache_consistency = false,
            "--inject-bug" => cfg.oracle.inject_bug = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let seed_text = match &corpus_path {
        Some(p) => std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("--corpus {p}: {e}");
            std::process::exit(2);
        }),
        None => corpus::DEFAULT_SEEDS.to_string(),
    };
    let seeds = corpus::parse_seed_list(&seed_text);
    if seeds.is_empty() {
        eprintln!("seed corpus is empty");
        std::process::exit(2);
    }

    println!(
        "fuzz: {} seeds, up to {} cases{}, master seed {}, levels {:?}",
        seeds.len(),
        cfg.max_cases,
        cfg.max_seconds
            .map_or(String::new(), |s| format!(" / {s}s")),
        cfg.seed,
        cfg.oracle
            .levels
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
    );
    let report = run_fuzz(&seeds, &cfg);
    println!("fuzz: {}", report.render());
    for (i, f) in report.failures.iter().enumerate() {
        let lines = f.shrunk.as_deref().unwrap_or(&f.source).lines().count();
        println!();
        println!(
            "--- failure {} [{}] ({} line reproducer, {} shrink probes) ---",
            i + 1,
            f.bucket,
            lines,
            f.shrink_probes
        );
        print!("{}", f.regression_snippet());
    }
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}
