//! The checked-in seed corpus and its (tiny) file format: one seed per
//! line, decimal or `0x` hex, `#` starts a comment.

/// Contents of `corpus/seeds.txt`, embedded so the fuzz binary needs no
/// runtime file access for its default run.
pub const DEFAULT_SEEDS: &str = include_str!("../corpus/seeds.txt");

/// Parse a seed list. Unparseable lines are skipped rather than fatal —
/// a corpus file is an input, not a program.
pub fn parse_seed_list(text: &str) -> Vec<u64> {
    text.lines()
        .filter_map(|line| {
            let body = line.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                return None;
            }
            match body.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => body.parse().ok(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_hex_comments_and_blanks() {
        let text = "# header\n42\n0xff # inline\n\nbogus\n123\n";
        assert_eq!(parse_seed_list(text), vec![42, 255, 123]);
    }

    #[test]
    fn default_corpus_is_nonempty_and_unique() {
        let seeds = parse_seed_list(DEFAULT_SEEDS);
        assert!(seeds.len() >= 8, "corpus too small: {}", seeds.len());
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "duplicate seeds in corpus");
    }
}
