//! Frame-codec property fuzzing: random `epicd` requests and responses
//! round-tripped through the incremental [`FrameDecoder`] under
//! adversarial chunking.
//!
//! Three properties, each checked against `encode_request` /
//! `encode_response` as the reference:
//!
//! 1. **Framing transparency** — for any frame bodies and any split of
//!    the wire bytes into read chunks, the decoder yields exactly those
//!    bodies, byte for byte, in order.
//! 2. **Codec round-trip** — decode-then-re-encode of a decoded frame
//!    reproduces the original encoding bit-identically.
//! 3. **Robustness** — arbitrary garbage never panics the decoder; it
//!    produces frames or typed errors only.
//!
//! Deterministic throughout: one seed fixes every generated message and
//! every chunk boundary (same [`Rng`] discipline as the MiniC fuzzer).

use epic_ir::testing::Rng;
use epic_serve::proto::{self, Request, Response, ServeStats};
use epic_serve::testutil::dummy_measurement;
use epic_serve::{CacheKey, FrameDecoder, JobSpec, JobStatus, Priority};
use epic_trace::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};

/// A random syntactically-plausible job spec (the source need not
/// compile — the frame layer never looks inside it).
fn random_spec(rng: &mut Rng) -> JobSpec {
    let level = *rng.choose(&epic_driver::OptLevel::ALL);
    let copts = epic_driver::CompileOptions::for_level(level);
    let sopts = epic_sim::SimOptions::default();
    let source = match rng.pick(3) {
        0 => String::new(),
        1 => "fn main(n: int) -> int { return n; }".to_string(),
        _ => {
            // arbitrary bytes of printable noise, length 0..512
            let len = rng.pick_usize(512);
            (0..len)
                .map(|_| (b' ' + rng.pick(95) as u8) as char)
                .collect()
        }
    };
    let train: Vec<i64> = (0..rng.pick_usize(4))
        .map(|_| rng.next_u64() as i64)
        .collect();
    let refa: Vec<i64> = (0..rng.pick_usize(4))
        .map(|_| rng.next_u64() as i64)
        .collect();
    let mut spec = JobSpec::from_options(&source, &train, &refa, &copts, &sopts);
    spec.profile_fuel = rng.next_u64();
    spec.sim_fuel = rng.next_u64();
    spec
}

fn random_key(rng: &mut Rng) -> CacheKey {
    CacheKey {
        hi: rng.next_u64(),
        lo: rng.next_u64(),
    }
}

/// A random request covering every verb.
pub fn random_request(rng: &mut Rng) -> Request {
    match rng.pick(7) {
        0 => Request::Submit {
            spec: random_spec(rng),
            prio: *rng.choose(&[Priority::Low, Priority::Normal, Priority::High]),
            deadline_ms: rng.pick(100_000),
        },
        1 => Request::Status(random_key(rng)),
        2 => Request::Result(random_key(rng)),
        3 => Request::Stats,
        4 => Request::Metrics,
        5 => Request::Put {
            key: random_key(rng),
            measurement: Box::new(dummy_measurement(rng.pick(1 << 20))),
        },
        _ => Request::Shutdown,
    }
}

fn random_metrics(rng: &mut Rng) -> MetricsSnapshot {
    let n = rng.pick_usize(6);
    let mut entries: Vec<MetricEntry> = (0..n)
        .map(|i| {
            let value = match rng.pick(3) {
                0 => MetricValue::Counter(rng.next_u64()),
                1 => MetricValue::Gauge(rng.next_u64() as i64),
                _ => MetricValue::Histogram(HistogramSnapshot {
                    count: rng.pick(1000),
                    sum: rng.next_u64(),
                    buckets: (0..rng.pick_usize(5))
                        .map(|b| (b as u8 * 7, rng.pick(100)))
                        .collect(),
                }),
            };
            MetricEntry {
                name: format!("fuzz.metric.{i}"),
                value,
            }
        })
        .collect();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { entries }
}

/// A random response covering every variant.
pub fn random_response(rng: &mut Rng) -> Response {
    match rng.pick(9) {
        0 => Response::Err(format!("fuzz error {}", rng.next_u64())),
        1 => Response::Done {
            key: random_key(rng),
            cache_hit: rng.chance(1, 2),
            coalesced: rng.chance(1, 2),
            measurement: Box::new(dummy_measurement(rng.pick(1 << 20))),
        },
        2 => Response::Status(*rng.choose(&[
            JobStatus::Unknown,
            JobStatus::InFlight,
            JobStatus::Done,
        ])),
        3 => Response::Result(if rng.chance(1, 2) {
            Some(Box::new(dummy_measurement(rng.pick(1 << 20))))
        } else {
            None
        }),
        4 => {
            let mut s = ServeStats::default();
            s.compiles = rng.pick(1000);
            s.sims = rng.pick(1000);
            s.sched.submitted = rng.next_u64();
            s.sched.jobs_run = rng.next_u64();
            s.store.hits = rng.next_u64();
            s.store.misses = rng.next_u64();
            s.shard_id = rng.pick(8);
            Response::Stats(s)
        }
        5 => Response::Metrics(random_metrics(rng)),
        6 => Response::Busy {
            queue_depth: rng.pick_usize(1 << 16),
        },
        7 => Response::PutOk,
        _ => Response::ShutdownOk,
    }
}

/// Wire bytes for `bodies` (length prefix + body per frame).
fn wire(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut w = Vec::new();
    for b in bodies {
        w.extend_from_slice(&(b.len() as u32).to_be_bytes());
        w.extend_from_slice(b);
    }
    w
}

/// Feed `stream` to a fresh decoder in random chunks; return the frames
/// it produced.
///
/// # Errors
/// Any [`proto::FrameError`] from the decoder, stringified.
pub fn decode_chunked(rng: &mut Rng, stream: &[u8]) -> Result<Vec<Vec<u8>>, String> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < stream.len() {
        let chunk_len = 1 + rng.pick_usize(64.min(stream.len() - at));
        let chunk = &stream[at..at + chunk_len];
        let mut off = 0usize;
        while off < chunk.len() {
            let (used, ready) = dec.feed(&chunk[off..]).map_err(|e| e.to_string())?;
            off += used;
            if ready {
                out.push(dec.frame().to_vec());
                dec.next_frame();
            } else if used == 0 {
                return Err("decoder consumed nothing without a frame".to_string());
            }
        }
        at += chunk_len;
    }
    if dec.mid_frame() {
        return Err("decoder left mid-frame at end of stream".to_string());
    }
    Ok(out)
}

/// Property 1+2 for a batch of requests: frame them, decode under
/// random chunking, compare bodies and re-encodings byte-for-byte.
///
/// # Errors
/// A description of the first violated property.
pub fn check_requests(rng: &mut Rng, count: usize) -> Result<(), String> {
    let reqs: Vec<Request> = (0..count).map(|_| random_request(rng)).collect();
    let bodies: Vec<Vec<u8>> = reqs.iter().map(proto::encode_request).collect();
    let frames = decode_chunked(rng, &wire(&bodies))?;
    if frames != bodies {
        return Err(format!(
            "framing mangled request bodies: {} in, {} out",
            bodies.len(),
            frames.len()
        ));
    }
    for (i, body) in frames.iter().enumerate() {
        let decoded = proto::decode_request(body).map_err(|e| format!("request {i}: {e}"))?;
        let re = proto::encode_request(&decoded);
        if re != *body {
            return Err(format!("request {i} re-encoded differently"));
        }
    }
    Ok(())
}

/// Property 1+2 for a batch of responses.
///
/// # Errors
/// A description of the first violated property.
pub fn check_responses(rng: &mut Rng, count: usize) -> Result<(), String> {
    let resps: Vec<Response> = (0..count).map(|_| random_response(rng)).collect();
    let bodies: Vec<Vec<u8>> = resps.iter().map(proto::encode_response).collect();
    let frames = decode_chunked(rng, &wire(&bodies))?;
    if frames != bodies {
        return Err(format!(
            "framing mangled response bodies: {} in, {} out",
            bodies.len(),
            frames.len()
        ));
    }
    for (i, body) in frames.iter().enumerate() {
        let decoded = proto::decode_response(body).map_err(|e| format!("response {i}: {e}"))?;
        let re = proto::encode_response(&decoded);
        if re != *body {
            return Err(format!("response {i} re-encoded differently"));
        }
    }
    Ok(())
}

/// Property 3: feed `len` bytes of garbage; the decoder must only ever
/// produce frames or typed errors (a panic fails the test by crashing).
pub fn check_garbage(rng: &mut Rng, len: usize) {
    let noise: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
    let mut dec = FrameDecoder::new();
    let mut at = 0usize;
    while at < noise.len() {
        let chunk_len = 1 + rng.pick_usize(16.min(noise.len() - at));
        let chunk = &noise[at..at + chunk_len];
        let mut off = 0usize;
        while off < chunk.len() {
            match dec.feed(&chunk[off..]) {
                Ok((used, ready)) => {
                    off += used;
                    if ready {
                        // a garbage "frame" is legal at this layer; the
                        // request decoder above it rejects it
                        let _ = proto::decode_request(dec.frame());
                        dec.next_frame();
                    } else if used == 0 {
                        panic!("decoder stalled on garbage");
                    }
                }
                Err(_) => {
                    // typed refusal (e.g. hostile length): reset, as the
                    // server does by dropping the connection
                    dec = FrameDecoder::new();
                    off = chunk.len();
                }
            }
        }
        at += chunk_len;
    }
}
