//! Automatic reproducer minimization: line-level ddmin, then structural
//! chunk removal, then expression-level simplification, iterated to a
//! fixpoint under a probe budget.
//!
//! The caller supplies the predicate — "does this candidate still fail
//! the same oracle bucket?" (see [`crate::oracle::fails_with`]) — so the
//! shrinker itself knows nothing about compilation. Candidates that stop
//! compiling or fail differently simply return false and are skipped;
//! no validity analysis is needed.

use epic_ir::testing::{mutation_points, remove_lines, statement_chunks, MutationKind};

/// What a [`shrink`] run did, for reporting.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkStats {
    /// Predicate evaluations spent.
    pub probes: usize,
    /// Line count before.
    pub from_lines: usize,
    /// Line count after.
    pub to_lines: usize,
}

/// Minimize `src` while `pred` holds, spending at most `max_probes`
/// predicate evaluations. `pred(src)` is assumed true on entry; the
/// result always satisfies `pred`.
pub fn shrink(
    src: &str,
    pred: &mut dyn FnMut(&str) -> bool,
    max_probes: usize,
) -> (String, ShrinkStats) {
    let from_lines = src.lines().count();
    let mut cur = src.to_string();
    let mut budget = max_probes;
    loop {
        let before = cur.clone();
        cur = ddmin_lines(&cur, pred, &mut budget);
        cur = chunk_pass(&cur, pred, &mut budget);
        cur = expr_pass(&cur, pred, &mut budget);
        if cur == before || budget == 0 {
            break;
        }
    }
    let stats = ShrinkStats {
        probes: max_probes - budget,
        from_lines,
        to_lines: cur.lines().count(),
    };
    (cur, stats)
}

fn join_lines(lines: &[String], kept: &[usize]) -> String {
    let mut out = String::new();
    for &i in kept {
        out.push_str(&lines[i]);
        out.push('\n');
    }
    out
}

/// Zeller-style ddmin over source lines: repeatedly try removing a block
/// of the currently-kept lines ("complement reduction"), halving the
/// block size whenever a whole sweep makes no progress.
fn ddmin_lines(src: &str, pred: &mut dyn FnMut(&str) -> bool, budget: &mut usize) -> String {
    let lines: Vec<String> = src.lines().map(String::from).collect();
    let mut kept: Vec<usize> = (0..lines.len()).collect();
    let mut n = 2usize;
    while kept.len() >= 2 && *budget > 0 {
        let chunk = kept.len().div_ceil(n);
        let mut reduced = false;
        let mut i = 0;
        while i < kept.len() && *budget > 0 {
            let mut cand: Vec<usize> = kept[..i].to_vec();
            cand.extend_from_slice(&kept[(i + chunk).min(kept.len())..]);
            if cand.is_empty() {
                break;
            }
            *budget -= 1;
            if pred(&join_lines(&lines, &cand)) {
                kept = cand;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break; // recompute chunk size against the smaller set
            }
            i += chunk;
        }
        if !reduced {
            if n >= kept.len() {
                break;
            }
            n = (2 * n).min(kept.len());
        }
    }
    join_lines(&lines, &kept)
}

/// Remove whole statement chunks (blocks first — one probe can drop an
/// entire `while` body that ddmin would need aligned line boundaries
/// for), greedily to a fixpoint.
fn chunk_pass(src: &str, pred: &mut dyn FnMut(&str) -> bool, budget: &mut usize) -> String {
    let mut cur = src.to_string();
    loop {
        let nlines = cur.lines().count();
        let mut chunks = statement_chunks(&cur);
        chunks.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let mut improved = false;
        for c in chunks {
            if *budget == 0 {
                return cur;
            }
            let keep: Vec<bool> = (0..nlines).map(|i| i < c.first || i > c.last).collect();
            let cand = remove_lines(&cur, &keep);
            if cand == cur {
                continue;
            }
            *budget -= 1;
            if pred(&cand) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// Byte spans of parenthesized expressions, outermost first. Call
/// argument lists (preceded by an identifier) and `fn` headers are
/// skipped — collapsing those only produces rejects.
fn paren_spans(src: &str) -> Vec<(usize, usize)> {
    let b = src.as_bytes();
    let mut stack: Vec<(usize, bool)> = Vec::new();
    let mut spans = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c == b'(' {
            let callish = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
            stack.push((i, callish));
        } else if c == b')' {
            if let Some((start, callish)) = stack.pop() {
                if !callish {
                    spans.push((start, i + 1));
                }
            }
        }
    }
    spans.sort_by_key(|&(s, e)| (std::cmp::Reverse(e - s), s));
    spans
}

/// Simplify expressions in place: parenthesized subtrees and integer
/// literals each try to become `0` or `1`. One accepted rewrite restarts
/// the scan (spans shift).
fn expr_pass(src: &str, pred: &mut dyn FnMut(&str) -> bool, budget: &mut usize) -> String {
    let mut cur = src.to_string();
    'outer: loop {
        for (s, e) in paren_spans(&cur) {
            for rep in ["0", "1"] {
                if *budget == 0 {
                    return cur;
                }
                let cand = format!("{}{}{}", &cur[..s], rep, &cur[e..]);
                *budget -= 1;
                if pred(&cand) {
                    cur = cand;
                    continue 'outer;
                }
            }
        }
        for p in mutation_points(&cur) {
            if !matches!(p.kind, MutationKind::IntConst | MutationKind::LoopBound) {
                continue;
            }
            let text = &cur[p.start..p.end];
            if text == "0" || text == "1" {
                continue;
            }
            for rep in ["0", "1"] {
                if *budget == 0 {
                    return cur;
                }
                let cand = format!("{}{}{}", &cur[..p.start], rep, &cur[p.end..]);
                *budget -= 1;
                if pred(&cand) {
                    cur = cand;
                    continue 'outer;
                }
            }
        }
        return cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_isolates_the_failing_line() {
        // Predicate: "still contains the magic line" — shrink must strip
        // everything else.
        let src: String = (0..40)
            .map(|i| {
                if i == 23 {
                    "needle\n".to_string()
                } else {
                    format!("hay {i}\n")
                }
            })
            .collect();
        let mut pred = |s: &str| s.contains("needle");
        let (out, stats) = shrink(&src, &mut pred, 10_000);
        assert_eq!(out, "needle\n");
        assert_eq!(stats.to_lines, 1);
        assert!(stats.probes > 0);
    }

    #[test]
    fn shrink_respects_probe_budget() {
        let src: String = (0..100).map(|i| format!("l{i}\n")).collect();
        let mut calls = 0usize;
        let mut pred = |s: &str| {
            calls += 1;
            s.contains("l7\n")
        };
        let (_, stats) = shrink(&src, &mut pred, 25);
        assert!(calls <= 25, "{calls} probes, budget 25");
        assert_eq!(stats.probes, calls);
    }

    #[test]
    fn expr_pass_simplifies_literals_and_parens() {
        let src = "out((a0 + 777) * 9);\n";
        // "Fails" as long as a multiplication is present.
        let mut pred = |s: &str| s.contains('*');
        let (out, _) = shrink(src, &mut pred, 1_000);
        assert!(out.contains('*'));
        assert!(!out.contains("777"), "literal not simplified: {out}");
    }
}
