//! # epic-fuzz
//!
//! Differential fuzzing subsystem: coverage-guided mutation over
//! generated MiniC programs, a stack of metamorphic oracles, and an
//! automatic delta-debugging shrinker that turns any violation into a
//! paste-ready regression test.
//!
//! The loop ([`run_fuzz`]):
//!
//! 1. every corpus seed regenerates its program and runs the full
//!    oracle stack ([`oracle::check`]);
//! 2. mutation cases pick a weighted corpus entry, apply one rewrite
//!    ([`mutate::Mutator`]), and re-run the oracles;
//! 3. mutants that exercise *new* pipeline behavior — judged by the
//!    [`epic_driver::PassTimeline`] coverage signature — join the corpus
//!    with extra weight, so the search walks toward untested transform
//!    interactions;
//! 4. failures are minimized ([`shrink::shrink`]) against a predicate
//!    that demands the *same* failure bucket, and reported as a
//!    `check_source(…)` snippet for `tests/random_differential.rs`.
//!
//! Everything is deterministic: one `--seed` fixes the whole run (the
//! optional wall-clock budget can truncate it, never reorder it).

pub mod corpus;
pub mod framefuzz;
pub mod mutate;
pub mod oracle;
pub mod shrink;

use epic_ir::testing::{minic_program, Rng};
use mutate::Mutator;
use oracle::{alt_train_args, args_for_seed, check, Failure, OracleOptions, Verdict};
use std::time::Instant;

/// Fuzz campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed for corpus picks and mutation streams.
    pub seed: u64,
    /// Oracle evaluations (seed + mutant) before stopping.
    pub max_cases: usize,
    /// Optional wall-clock budget; checked between cases.
    pub max_seconds: Option<f64>,
    /// Corpus size cap; beyond it, novel mutants replace random entries.
    pub max_corpus: usize,
    /// Stop after this many failures (each may cost a shrink).
    pub max_failures: usize,
    /// Minimize failures before reporting.
    pub shrink_failures: bool,
    /// Predicate-evaluation budget per shrink.
    pub shrink_probes: usize,
    /// Oracle stack configuration.
    pub oracle: OracleOptions,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            max_cases: 200,
            max_seconds: None,
            max_corpus: 64,
            max_failures: 3,
            shrink_failures: true,
            shrink_probes: 600,
            oracle: OracleOptions::default(),
        }
    }
}

/// One oracle violation, with its minimized reproducer when shrinking
/// was enabled and made progress.
#[derive(Clone, Debug)]
pub struct FoundFailure {
    /// The source that first failed.
    pub source: String,
    /// Arguments it ran with.
    pub args: [i64; 2],
    /// Triage bucket (see [`oracle::Failure`]).
    pub bucket: String,
    /// Human-readable detail.
    pub detail: String,
    /// Minimized source, if shrinking ran.
    pub shrunk: Option<String>,
    /// Probes the shrink spent.
    pub shrink_probes: usize,
}

impl FoundFailure {
    /// A ready-to-paste regression for `tests/random_differential.rs`
    /// (its `check_source` helper).
    pub fn regression_snippet(&self) -> String {
        let src = self.shrunk.as_deref().unwrap_or(&self.source);
        format!(
            "// fuzz regression — {}: {}\ncheck_source(\n    r#\"{}\"#,\n    [{}, {}],\n);\n",
            self.bucket, self.detail, src, self.args[0], self.args[1]
        )
    }
}

/// Campaign summary.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Oracle evaluations performed.
    pub cases: usize,
    /// Candidates outside the oracle domain (frontend reject / fuel).
    pub rejected: usize,
    /// Cases that produced a previously-unseen coverage signature.
    pub new_signatures: usize,
    /// Corpus size at the end.
    pub corpus_len: usize,
    /// Wall-clock seconds elapsed.
    pub elapsed: f64,
    /// Oracle violations, shrunk when configured.
    pub failures: Vec<FoundFailure>,
}

impl FuzzReport {
    /// One-paragraph human summary.
    pub fn render(&self) -> String {
        format!(
            "{} cases in {:.1}s ({} rejected, {} novel-coverage, corpus {}): {}",
            self.cases,
            self.elapsed,
            self.rejected,
            self.new_signatures,
            self.corpus_len,
            if self.failures.is_empty() {
                "no oracle violations".to_string()
            } else {
                format!("{} FAILURE(S)", self.failures.len())
            }
        )
    }
}

fn record_failure(
    src: String,
    args: [i64; 2],
    f: Failure,
    cfg: &FuzzConfig,
    failures: &mut Vec<FoundFailure>,
) {
    let (shrunk, probes) = if cfg.shrink_failures {
        let mut opts = cfg.oracle.clone();
        if let Some(level) = f.level {
            // Re-checking only the failing level makes each probe one
            // compile instead of four.
            opts.levels = vec![level];
        }
        let bucket = f.bucket.clone();
        let mut pred = |s: &str| oracle::fails_with(s, args, alt_train_args(args), &opts, &bucket);
        let (small, stats) = shrink::shrink(&src, &mut pred, cfg.shrink_probes);
        (Some(small), stats.probes)
    } else {
        (None, 0)
    };
    failures.push(FoundFailure {
        source: src,
        args,
        bucket: f.bucket,
        detail: f.detail,
        shrunk,
        shrink_probes: probes,
    });
}

/// Run a fuzz campaign from `seeds` under `cfg`. Fully deterministic for
/// a given (seeds, cfg.seed, case budget); the optional time budget only
/// truncates the case sequence.
pub fn run_fuzz(seeds: &[u64], cfg: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let out_of_time = |_: ()| {
        cfg.max_seconds
            .is_some_and(|s| start.elapsed().as_secs_f64() >= s)
    };
    let mut report = FuzzReport::default();
    let mut sigs = std::collections::HashSet::new();
    // (source, args, weight): seeds enter at weight 2, novel mutants at 3.
    let mut corpus: Vec<(String, [i64; 2], u64)> = Vec::new();

    for &seed in seeds {
        if report.cases >= cfg.max_cases
            || report.failures.len() >= cfg.max_failures
            || out_of_time(())
        {
            break;
        }
        let src = minic_program(seed);
        let args = args_for_seed(seed);
        report.cases += 1;
        match check(&src, args, alt_train_args(args), &cfg.oracle) {
            Verdict::Pass { signature } => {
                if sigs.insert(signature) {
                    report.new_signatures += 1;
                }
                corpus.push((src, args, 2));
            }
            Verdict::Reject(_) => report.rejected += 1,
            Verdict::Fail(f) => record_failure(src, args, f, cfg, &mut report.failures),
        }
    }

    let rng = Rng::new(cfg.seed);
    let mut case_id = 0u64;
    while !corpus.is_empty()
        && report.cases < cfg.max_cases
        && report.failures.len() < cfg.max_failures
        && !out_of_time(())
    {
        case_id += 1;
        let mut r = rng.derive(case_id);
        let total: u64 = corpus.iter().map(|e| e.2).sum();
        let mut roll = r.pick(total);
        let mut idx = 0;
        for (i, e) in corpus.iter().enumerate() {
            if roll < e.2 {
                idx = i;
                break;
            }
            roll -= e.2;
        }
        let (src, args, _) = corpus[idx].clone();
        let mut mutator = Mutator::new(r.next_u64());
        report.cases += 1;
        let Some(mutant) = mutator.mutate(&src) else {
            report.rejected += 1;
            continue;
        };
        match check(&mutant, args, alt_train_args(args), &cfg.oracle) {
            Verdict::Pass { signature } => {
                if sigs.insert(signature) {
                    report.new_signatures += 1;
                    if corpus.len() < cfg.max_corpus {
                        corpus.push((mutant, args, 3));
                    } else {
                        let slot = r.pick_usize(corpus.len());
                        corpus[slot] = (mutant, args, 3);
                    }
                }
            }
            Verdict::Reject(_) => report.rejected += 1,
            Verdict::Fail(f) => record_failure(mutant, args, f, cfg, &mut report.failures),
        }
    }

    report.corpus_len = corpus.len();
    report.elapsed = start.elapsed().as_secs_f64();
    report
}
