//! Source-level mutation engine over generated MiniC programs.
//!
//! Mutations are chosen from the sites [`epic_ir::testing::mutation_points`]
//! and [`epic_ir::testing::statement_chunks`] expose, so every rewrite
//! lands on a token the grammar can absorb:
//!
//! * integer constants perturbed (±1, ×2+1, bit flip, zeroed, 63);
//! * loop bounds rewritten to a fresh small positive value (termination
//!   is preserved by construction — counter increments are never sites);
//! * arithmetic/bitwise operators swapped within their class, which is
//!   how division and modulo (and hence trap paths) enter the corpus;
//! * comparison operators swapped, `<<` ↔ `>>`;
//! * `if` guards forced to a constant, flipping whole regions on or off;
//! * statements deleted or duplicated at chunk granularity.
//!
//! Mutants may fail to compile or loop past the interpreter's fuel —
//! the oracle rejects those cheaply, so the engine prefers obviously
//! doomed rewrites over missing productive ones.

use epic_ir::testing::{mutation_points, statement_chunks, MutationKind, Rng};

const BIN_OPS: [&str; 8] = ["+", "-", "*", "&", "|", "^", "/", "%"];
const CMP_OPS: [&str; 6] = ["<", "<=", ">", ">=", "==", "!="];

/// Deterministic mutation engine; one instance per fuzz case.
pub struct Mutator {
    rng: Rng,
}

/// A line of the form `x = x + 1;` — a loop-counter advance. Deleting
/// one makes the loop infinite, so deletion skips them (duplication is
/// fine: the counter just advances faster).
fn is_self_increment(line: &str) -> bool {
    let t = line.trim();
    match t.split_once(" = ") {
        Some((lhs, rest)) => {
            lhs.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && rest == format!("{lhs} + 1;")
        }
        None => false,
    }
}

/// Lines that anchor program structure: removing or duplicating them
/// can only produce frontend rejects, never an interesting program.
fn is_structural(line: &str) -> bool {
    let t = line.trim();
    t.starts_with("fn ")
        || t.starts_with("global ")
        || t.starts_with("let ")
        || t.starts_with("return ")
}

impl Mutator {
    /// New engine with its own deterministic stream.
    pub fn new(seed: u64) -> Mutator {
        Mutator {
            rng: Rng::new(seed),
        }
    }

    /// Produce one mutant of `src`, or `None` if no strategy applies
    /// (e.g. the program has shrunk to nothing mutable).
    pub fn mutate(&mut self, src: &str) -> Option<String> {
        for _ in 0..8 {
            let out = match self.rng.pick(10) {
                0..=6 => self.point_mutation(src),
                7 | 8 => self.delete_statement(src),
                _ => self.duplicate_statement(src),
            };
            if let Some(m) = out {
                if m != src {
                    return Some(m);
                }
            }
        }
        None
    }

    fn point_mutation(&mut self, src: &str) -> Option<String> {
        let points = mutation_points(src);
        if points.is_empty() {
            return None;
        }
        let p = &points[self.rng.pick_usize(points.len())];
        let text = &src[p.start..p.end];
        let new = match p.kind {
            MutationKind::IntConst => {
                let n: i64 = text.parse().ok()?;
                let choices = [
                    n.wrapping_add(1),
                    (n - 1).max(0),
                    n.wrapping_mul(2).wrapping_add(1),
                    n ^ 1,
                    0,
                    63,
                ];
                choices[self.rng.pick_usize(choices.len())]
                    .max(0)
                    .to_string()
            }
            MutationKind::LoopBound => (1 + self.rng.pick(32)).to_string(),
            MutationKind::BinOp => match text {
                "<<" => ">>".to_string(),
                ">>" => "<<".to_string(),
                _ => self.pick_other(&BIN_OPS, text)?,
            },
            MutationKind::CmpOp => self.pick_other(&CMP_OPS, text)?,
            MutationKind::Guard => if self.rng.chance(1, 2) { "1 " } else { "0 " }.to_string(),
        };
        Some(format!("{}{}{}", &src[..p.start], new, &src[p.end..]))
    }

    fn pick_other(&mut self, table: &[&str], current: &str) -> Option<String> {
        let others: Vec<&&str> = table.iter().filter(|o| **o != current).collect();
        if others.is_empty() {
            return None;
        }
        Some(others[self.rng.pick_usize(others.len())].to_string())
    }

    fn delete_statement(&mut self, src: &str) -> Option<String> {
        let lines: Vec<&str> = src.lines().collect();
        let candidates: Vec<_> = statement_chunks(src)
            .into_iter()
            .filter(|c| {
                lines[c.first..=c.last]
                    .iter()
                    .all(|l| !is_structural(l) && !is_self_increment(l))
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let c = &candidates[self.rng.pick_usize(candidates.len())];
        let keep: Vec<bool> = (0..lines.len())
            .map(|i| i < c.first || i > c.last)
            .collect();
        Some(epic_ir::testing::remove_lines(src, &keep))
    }

    fn duplicate_statement(&mut self, src: &str) -> Option<String> {
        let lines: Vec<&str> = src.lines().collect();
        let candidates: Vec<_> = statement_chunks(src)
            .into_iter()
            .filter(|c| lines[c.first..=c.last].iter().all(|l| !is_structural(l)))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let c = &candidates[self.rng.pick_usize(candidates.len())];
        let mut out = String::new();
        for (i, line) in lines.iter().enumerate() {
            out.push_str(line);
            out.push('\n');
            if i == c.last {
                for dup in &lines[c.first..=c.last] {
                    out.push_str(dup);
                    out.push('\n');
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::testing::minic_program;

    #[test]
    fn mutants_differ_and_mostly_compile() {
        let src = minic_program(5);
        let mut m = Mutator::new(17);
        let mut compiled = 0;
        for _ in 0..40 {
            let mutant = m.mutate(&src).expect("program has mutation sites");
            assert_ne!(mutant, src);
            if epic_lang::compile(&mutant).is_ok() {
                compiled += 1;
            }
        }
        // The engine targets grammar-preserving sites, so the large
        // majority of mutants must still be valid programs.
        assert!(compiled >= 30, "only {compiled}/40 mutants compiled");
    }

    #[test]
    fn counter_increments_survive_deletion() {
        let src = "fn main(a0: int, a1: int) {\nlet i0 = 0;\nwhile i0 < 9 {\ni0 = i0 + 1;\n}\nout(i0);\n}\n";
        let mut m = Mutator::new(3);
        for _ in 0..30 {
            if let Some(mutant) = m.delete_statement(src) {
                assert!(
                    mutant.contains("i0 = i0 + 1;"),
                    "increment deleted:\n{mutant}"
                );
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let src = minic_program(8);
        let a = Mutator::new(9).mutate(&src);
        let b = Mutator::new(9).mutate(&src);
        assert_eq!(a, b);
    }
}
