//! Differential tests: the simulator executing fully compiled code must
//! produce exactly the interpreter's output, at every optimization level.

use epic_sched::SchedOptions;
use epic_sim::{SimOptions, SpecModel};

fn compile_and_run(
    src: &str,
    train_args: &[i64],
    run_args: &[i64],
    sched: &SchedOptions,
    ilp: Option<&epic_core::IlpOptions>,
) -> (Vec<u64>, epic_sim::SimResult) {
    let mut prog = epic_lang::compile(src).unwrap();
    let want = epic_ir::interp::run(&prog, run_args, Default::default())
        .unwrap()
        .output;
    epic_opt::profile::profile_program(&mut prog, train_args, 500_000_000).unwrap();
    epic_opt::inline::run(&mut prog, Default::default());
    epic_opt::alias::run(&mut prog);
    epic_opt::classical_optimize_program(&mut prog);
    if let Some(opts) = ilp {
        for f in 0..prog.funcs.len() {
            epic_core::ilp_transform(&mut prog.funcs[f], opts);
        }
        epic_ir::verify::verify_program(&prog).unwrap();
    }
    let (mp, _stats) = epic_sched::compile_program(&prog, sched);
    epic_sched::check_machine_program(&mp).unwrap();
    let spec_model = if ilp.is_some_and(|o| {
        matches!(
            o.speculate.map(|s| s.model),
            Some(epic_core::speculate::SpecModel::Sentinel)
        )
    }) {
        SpecModel::Sentinel
    } else {
        SpecModel::General
    };
    let r = epic_sim::run(
        &mp,
        run_args,
        &SimOptions {
            spec_model,
            ..Default::default()
        },
    )
    .unwrap();
    (want, r)
}

const PROGRAMS: &[(&str, &str)] = &[
    (
        "loops_and_branches",
        "global tab: [int; 97];
         fn main() {
             let i = 0;
             while i < 3000 {
                 let v = (i * 2654435761) % 97;
                 if v < 0 { v = v + 97; }
                 tab[v] = tab[v] + 1;
                 if v % 7 == 0 { tab[0] = tab[0] + 2; }
                 else { if v % 3 == 0 { tab[1] = tab[1] - 1; } }
                 i = i + 1;
             }
             let s = 0; i = 0;
             while i < 97 { s = s + tab[i] * i; i = i + 1; }
             out(s);
         }",
    ),
    (
        "calls_and_recursion",
        "fn gcd(a: int, b: int) -> int {
             if b == 0 { return a; }
             return gcd(b, a % b);
         }
         fn main() {
             let s = 0; let i = 1;
             while i < 200 {
                 s = s + gcd(i * 7 + 1, i * 3 + 2);
                 i = i + 1;
             }
             out(s);
         }",
    ),
    (
        "pointer_chasing",
        "struct Node { next: *Node, v: int }
         fn main() {
             let head = 0 as *Node;
             let i = 0;
             while i < 300 {
                 let n = alloc(16) as *Node;
                 n.v = i * i % 31;
                 n.next = head;
                 head = n;
                 i = i + 1;
             }
             let s = 0; let p = head;
             while p as int != 0 { s = s + p.v; p = p.next; }
             out(s);
         }",
    ),
    (
        "byte_buffers",
        "global buf: [byte; 512];
         fn main() {
             let i = 0;
             while i < 512 { buf[i] = (i * 31 + 7); i = i + 1; }
             let h = 5381;
             i = 0;
             while i < 512 { h = h * 33 + buf[i]; i = i + 1; }
             out(h);
         }",
    ),
    (
        "short_serial_loops",
        "global b: [int; 64];
         fn main() {
             let t = 0; let score = 0;
             while t < 500 {
                 b[t % 64] = t * 7 % 13;
                 let sq = t % 64;
                 while b[sq] > 9 { score = score + b[sq]; sq = (sq + 1) % 64; }
                 score = score + 1;
                 t = t + 1;
             }
             out(score);
         }",
    ),
    (
        "indirect_calls",
        "fn inc(x: int) -> int { return x + 1; }
         fn dbl(x: int) -> int { return x * 2; }
         fn neg(x: int) -> int { return 0 - x; }
         fn main() {
             let s = 0; let i = 0;
             while i < 400 {
                 let fp = inc;
                 if i % 13 == 0 { fp = dbl; }
                 if i % 29 == 0 { fp = neg; }
                 s = s + icall(fp, i);
                 i = i + 1;
             }
             out(s);
         }",
    ),
    (
        "wild_load_unions",
        "global slots: [int; 128];
         fn main() {
             let i = 0; let s = 0;
             while i < 800 {
                 let v = i * 2654435761;
                 let is_ptr = i % 4 == 0;
                 let addr = v;
                 if is_ptr { addr = (&slots[i % 128]) as int; }
                 if is_ptr { s = s + *(addr as *int) + 1; }
                 slots[i % 128] = s % 1000;
                 i = i + 1;
             }
             out(s);
         }",
    ),
];

fn all_configs() -> Vec<(&'static str, SchedOptions, Option<epic_core::IlpOptions>)> {
    vec![
        ("gcc", SchedOptions::gcc(), None),
        ("o-ns", SchedOptions::o_ns(), None),
        (
            "ilp-ns",
            SchedOptions::ilp_ns(),
            Some(epic_core::IlpOptions::ilp_ns()),
        ),
        (
            "ilp-cs",
            SchedOptions::ilp_cs(),
            Some(epic_core::IlpOptions::ilp_cs()),
        ),
    ]
}

#[test]
fn every_program_matches_interpreter_at_every_level() {
    for (name, src) in PROGRAMS {
        for (cname, sched, ilp) in all_configs() {
            let (want, got) = compile_and_run(src, &[], &[], &sched, ilp.as_ref());
            assert_eq!(
                got.output, want,
                "output mismatch: program {name}, config {cname}"
            );
            assert!(got.cycles > 0);
        }
    }
}

#[test]
fn sentinel_model_also_matches() {
    let ilp = epic_core::IlpOptions {
        speculate: Some(epic_core::speculate::SpeculateOptions {
            model: epic_core::speculate::SpecModel::Sentinel,
            ..Default::default()
        }),
        ..epic_core::IlpOptions::default()
    };
    for (name, src) in PROGRAMS {
        let (want, got) = compile_and_run(src, &[], &[], &SchedOptions::ilp_cs(), Some(&ilp));
        assert_eq!(got.output, want, "sentinel mismatch on {name}");
    }
}

#[test]
fn optimization_levels_order_performance_on_average() {
    // Geometric-mean cycles must not get worse as optimization increases
    // (GCC -> O-NS -> ILP); individual programs may vary.
    let mut logs: Vec<f64> = Vec::new();
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (_name, src) in PROGRAMS {
        let (_w, gcc) = compile_and_run(src, &[], &[], &SchedOptions::gcc(), None);
        let (_w, ons) = compile_and_run(src, &[], &[], &SchedOptions::o_ns(), None);
        let (_w, ilp) = compile_and_run(
            src,
            &[],
            &[],
            &SchedOptions::ilp_ns(),
            Some(&epic_core::IlpOptions::ilp_ns()),
        );
        per_cfg[0].push(gcc.cycles as f64);
        per_cfg[1].push(ons.cycles as f64);
        per_cfg[2].push(ilp.cycles as f64);
        logs.push(gcc.cycles as f64 / ilp.cycles as f64);
    }
    let gmean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    let (g_gcc, g_ons, g_ilp) = (gmean(&per_cfg[0]), gmean(&per_cfg[1]), gmean(&per_cfg[2]));
    assert!(
        g_ons <= g_gcc * 1.02,
        "O-NS should not be slower than GCC: {g_ons} vs {g_gcc}"
    );
    assert!(
        g_ilp <= g_ons * 1.02,
        "ILP-NS should not be slower than O-NS: {g_ilp} vs {g_ons}"
    );
}

#[test]
fn counters_are_sane() {
    let (_w, r) = compile_and_run(
        PROGRAMS[0].1,
        &[],
        &[],
        &SchedOptions::ilp_cs(),
        Some(&epic_core::IlpOptions::ilp_cs()),
    );
    let c = &r.counters;
    assert!(c.retired_useful > 0);
    assert!(c.l1i_misses <= c.l1i_accesses);
    assert!(c.l1d_misses <= c.l1d_accesses);
    assert!(c.branch_mispredictions <= c.branch_predictions);
    assert_eq!(r.cycles, r.acct.total());
    let by_func = r.func_matrix.total();
    assert_eq!(by_func, r.cycles, "per-function attribution must total");
    r.check_identity().expect("accounting identity");
}
