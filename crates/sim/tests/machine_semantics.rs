//! Targeted semantic tests of the machine model, driven through the real
//! compiler (micro MiniC programs compiled at fixed configurations).

use epic_sched::SchedOptions;
use epic_sim::{run, SimOptions, SimResult};

fn build(src: &str, sched: &SchedOptions) -> epic_mach::MachProgram {
    let mut prog = epic_lang::compile(src).unwrap();
    epic_opt::profile::profile_program(&mut prog, &[], 1_000_000_000).unwrap();
    epic_opt::alias::run(&mut prog);
    epic_opt::classical_optimize_program(&mut prog);
    let (mp, _) = epic_sched::compile_program(&prog, sched);
    epic_sched::check_machine_program(&mp).unwrap();
    mp
}

fn sim(src: &str, sched: &SchedOptions) -> SimResult {
    run(&build(src, sched), &[], &SimOptions::default()).unwrap()
}

#[test]
fn squashed_ops_are_counted_but_have_no_effect() {
    // if-converted code at ILP level produces predicated ops
    let mut prog = epic_lang::compile(
        "fn main() {
             let i = 0; let s = 0;
             while i < 100 {
                 if i % 2 == 0 { s = s + 3; } else { s = s - 1; }
                 i = i + 1;
             }
             out(s);
         }",
    )
    .unwrap();
    epic_opt::profile::profile_program(&mut prog, &[], 1_000_000_000).unwrap();
    epic_opt::classical_optimize_program(&mut prog);
    epic_opt::alias::run(&mut prog);
    for f in &mut prog.funcs {
        epic_core::ilp_transform(f, &epic_core::IlpOptions::ilp_ns());
    }
    let (mp, _) = epic_sched::compile_program(&prog, &SchedOptions::ilp_ns());
    let r = run(&mp, &[], &SimOptions::default()).unwrap();
    assert_eq!(r.output, vec![100]);
    assert!(
        r.counters.retired_squashed > 50,
        "if-converted arms should squash: {}",
        r.counters.retired_squashed
    );
}

#[test]
fn deep_recursion_exercises_the_rse() {
    let src = "
        fn down(n: int, acc: int) -> int {
            if n == 0 { return acc; }
            let a = acc * 3 + n;
            let b = a ^ (n << 2);
            let c = b + a;
            return down(n - 1, c & 0xFFFF);
        }
        fn main() { out(down(400, 1)); }";
    let r = sim(src, &SchedOptions::o_ns());
    assert!(
        r.acct.register_stack() > 0,
        "400-deep recursion must overflow the 96-register stack"
    );
    assert!(r.counters.rse_regs_moved > 0);
}

#[test]
fn store_to_load_forwarding_conflicts_charge_micropipe() {
    // address-taken scalar forces store/load ping-pong through memory
    let src = "
        fn bump(p: *int) { *p = *p + 1; }
        fn main() {
            let x = 0;
            let i = 0;
            while i < 2000 { bump(&x); i = i + 1; }
            out(x);
        }";
    let r = sim(src, &SchedOptions::o_ns());
    assert_eq!(r.output, vec![2000]);
    assert!(
        r.acct.micropipe() > 0,
        "immediate store->load reuse should hit the forwarding hazard"
    );
}

#[test]
fn cold_code_misses_icache_then_warms() {
    // A big straight-line function: first traversal misses, the loop after
    // stays warm. Front-end bubbles must be nonzero but bounded.
    // the dependence on the runtime parameter defeats constant folding,
    // so the straight-line body survives into machine code
    let mut body = String::from("let s = p;\n");
    for k in 0..400 {
        body.push_str(&format!("s = s + (p | {k}); s = s ^ {};\n", k * 3));
    }
    let src = format!("fn main(p: int) {{ {body} out(s); }}");
    let r = sim(&src, &SchedOptions::o_ns());
    assert!(r.counters.l1i_misses > 10, "cold code must miss");
    assert!(r.acct.front_end_bubble() > 0);
    // misses bounded by code size / line size + a few
    assert!(r.counters.l1i_misses < 2000);
}

#[test]
fn memory_bound_loops_charge_load_bubbles() {
    let src = "
        fn main() {
            let base = alloc(2097152);
            let i = 0;
            let s = 0;
            // stride through 2 MB: mostly L2/L3 hits, some memory
            while i < 32768 {
                s = s + *((base + (i * 64 % 2097152)) as *int);
                i = i + 1;
            }
            out(s);
        }";
    let r = sim(src, &SchedOptions::o_ns());
    assert!(
        r.acct.int_load_bubble() > 10_000,
        "striding a 2MB buffer must stall on loads: {}",
        r.acct.int_load_bubble()
    );
    assert!(r.counters.l1d_misses > 1000);
}

#[test]
fn tight_cached_loops_run_near_plan() {
    let src = "
        fn main() {
            let i = 0; let s = 1;
            while i < 10000 { s = (s * 3 + i) & 0xFFFF; i = i + 1; }
            out(s);
        }";
    let r = sim(src, &SchedOptions::ilp_ns());
    // planned (anticipable) cycles should dominate
    let dynamic = r.cycles - r.acct.planned();
    assert!(
        (dynamic as f64) < 0.25 * r.cycles as f64,
        "cached arithmetic loop should be mostly unstalled: {dynamic}/{} total",
        r.cycles
    );
}

#[test]
fn branch_heavy_unpredictable_code_pays_flushes() {
    let src = "
        global seed: int = 99;
        fn rnd() -> int {
            seed = seed * 6364136223846793005 + 1442695040888963407;
            return (seed >> 33) & 0x7FFFFFFF;
        }
        fn main() {
            let i = 0; let a = 0; let b = 0;
            while i < 4000 {
                if rnd() & 1 != 0 { a = a + 1; } else { b = b + 1; }
                i = i + 1;
            }
            out(a); out(b);
        }";
    // GCC config: no if-conversion, so the random branch stays a branch
    let r = sim(src, &SchedOptions::gcc());
    assert!(
        r.counters.branch_mispredictions > 500,
        "random branches must mispredict: {}",
        r.counters.branch_mispredictions
    );
    assert!(r.acct.br_mispredict_flush() > 0);
}

#[test]
fn output_costs_kernel_cycles() {
    let r = sim(
        "fn main() { let i = 0; while i < 50 { out(i); i = i + 1; } }",
        &SchedOptions::o_ns(),
    );
    assert_eq!(r.output.len(), 50);
    assert!(r.acct.kernel() >= 50 * 10);
}
