//! # epic-sim
//!
//! An Itanium-2-like performance simulator for the IMPACT EPIC
//! reproduction — the stand-in for the paper's 1 GHz Itanium 2 with
//! Pfmon performance monitoring. It executes compiled
//! [`epic_mach::MachProgram`] code and reports:
//!
//! * total cycles, split into the paper's Fig. 5 nine-category cycle
//!   accounting ([`counters::CycleAccounting`]);
//! * Pfmon-style event [`counters::Counters`] (retired useful /
//!   predicate-squashed / nop operations, branch predictions and
//!   mispredictions, cache and DTLB events, speculative and wild loads,
//!   RSE traffic);
//! * per-function cycle attribution (paper Fig. 10).
//!
//! Modeled structure: 6-issue in-order core with issue-group semantics, a
//! register scoreboard, 16K/16K L1I+L1D (1 cy), unified 256K L2 (5 cy)
//! and 3M L3 (12 cy), pluggable branch prediction with an RSB (the
//! [`predict`] zoo: gshare default, bimodal, TAGE-class, ideal oracle),
//! a 48-op decoupling fetch buffer, a 128-entry DTLB with hardware
//! walks, the register stack engine, a store-forwarding (micropipe)
//! hazard model, and both general and sentinel control-speculation
//! recovery models (paper Fig. 9).

pub mod attrib;
pub mod caches;
pub mod counters;
pub mod machine;
pub mod predict;
pub mod rse;
pub mod sample;
pub mod tlb;
pub mod tracesink;

pub use attrib::{Attribution, ChargeRecord, EventSink, FuncMatrix, Location, RingTrace, SimEvent};
pub use counters::{Category, Counters, CycleAccounting, CATEGORIES, NUM_CATEGORIES, NUM_COUNTERS};
pub use machine::{run, run_with_sinks, SimOptions, SimResult, SimTrap, SpecModel, TrapKind};
pub use predict::{
    read_branch_trace, replay, AnyPredictor, BranchPredictor, BranchRecord, BranchTraceSink,
    BranchTraceStats, PredStats, PredictorSpec,
};
pub use sample::{
    kmeans, phase_profile, Centroid, Kmeans, PhaseProfile, SampleInfo, SamplePolicy, Warmup,
    BBV_DIM,
};
pub use tracesink::{ChargeStats, TraceSink};
