//! SimPoint-style sampled simulation with error-bounded extrapolation.
//!
//! Detailed simulation of a whole run is the dominant cost of every
//! matrix experiment. This module slices execution into fixed-length
//! instruction intervals, fingerprints each interval with a basic-block
//! vector (BBV), clusters the intervals into phases with a deterministic
//! integer k-means, simulates *one representative interval per phase* in
//! the detailed machine model, and extrapolates total cycles, the nine
//! Fig. 5 accounting categories, the counters, and the per-function
//! matrix from the representatives, weighted by phase size.
//!
//! # Value exactness
//!
//! The fast pass ([`FRun`]) is a *functional* executor that replicates
//! the detailed simulator's value semantics exactly: issue groups commit
//! atomically (reads see pre-group state, a branch may consume a
//! same-group compare), predication, NaT deferral, the ALAT, and — only
//! under [`SpecModel::Sentinel`] — the DTLB, because a sentinel `ld.s`
//! defers iff the DTLB probe misses, which is value-affecting. Under
//! [`SpecModel::General`] no value ever depends on cache/TLB/predictor
//! state, so the functional pass skips them entirely. Consequently the
//! functional op stream, trap set, output, and interval boundaries are
//! bit-identical to the exact simulation, and a representative interval
//! replayed from a snapshot executes exactly the ops the exact run
//! executed there. Any functional trap falls back to an exact run, which
//! reproduces the authentic [`SimTrap`].
//!
//! # Warmup
//!
//! Microarchitectural state (caches, predictor, DTLB, RSE occupancy) at
//! a representative's start is approximated per [`Warmup`]: `Cold`
//! injects empty structures, `Ops(w)` functionally replays the last `w`
//! ops before the interval while touching fresh structures, and `Full`
//! runs a sequential second pass that keeps the structures continuously
//! warm between representatives. Warm replay happens in the functional
//! engine and emits *no* attribution events, so warmup charges can never
//! leak into extrapolated totals: the accounting identity
//! ([`SimResult::check_identity`]) holds by construction because the
//! aggregate categories and the total are *derived from* the
//! extrapolated per-function matrix.

use crate::attrib::Attribution;
use crate::attrib::FuncMatrix;
use crate::caches::Hierarchy;
use crate::counters::{Category, Counters, CycleAccounting, NUM_CATEGORIES, NUM_COUNTERS};
use crate::machine::{
    alu, Exec, Frame, Sim, SimOptions, SimResult, SimTrap, SpecModel, TrapKind, NREGS,
};
use crate::predict::{AnyPredictor, BranchPredictor, PredictorSpec};
use crate::rse::Rse;
use crate::tlb::Dtlb;
use epic_ir::interp::checksum;
use epic_ir::mem::{
    func_addr, func_from_addr, Memory, GLOBAL_BASE, HEAP_BASE, PAGE_SIZE, STACK_MAX, STACK_TOP,
};
use epic_ir::{CmpKind, Opcode, Operand, Value, Vreg};
use epic_mach::{MachFunc, MachProgram, MachineConfig, Slot};
use std::collections::VecDeque;

/// Basic-block-vector dimensionality: issue-group start locations hash
/// into this many slots.
pub const BBV_DIM: usize = 64;

/// BBVs are normalized to this common mass before clustering so that
/// intervals of different lengths (the last one is short) compare by
/// *shape*.
const BBV_SCALE: u64 = 1 << 20;

/// Fixed clustering seed (jitters the k-means initialization picks).
const KMEANS_SEED: u64 = 0x5EED_0BB5_D1CE_0001;

/// Warm-pass memory-behavior features appended to each interval's
/// cluster vector: L1D misses, L3 misses, DTLB page switches, branch
/// mispredicts. BBVs alone can't separate intervals with identical
/// control flow but data-dependent cache behavior (two walks of the
/// same loop over near and far pointers cluster together yet differ
/// widely in CPI); these four rates make that heterogeneity visible
/// to the clusterer. All zero under `Warmup::Cold`/`Ops` profiles,
/// which degrade gracefully to pure-BBV clustering.
const N_FEAT: usize = 5;

/// Cluster-vector width: BBV dims plus the warm features.
const CVEC_DIM: usize = BBV_DIM + N_FEAT;

/// Per-feature weight, roughly the cycle cost of one event, so feature
/// distance is commensurate with the CPI difference it predicts (the
/// last is `wild_load_kernel_cycles`: wild speculative loads are the
/// dominant kernel charge and utterly invisible to a BBV).
const FEAT_W: [u64; N_FEAT] = [6, 160, 24, 8, 160];

/// Keep at most this many interval-boundary snapshots; past it the
/// snapshot stride doubles (memory stays bounded, replay distance grows).
const MAX_SNAPSHOTS: usize = 96;

/// Microarchitectural warmup applied before each representative interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Warmup {
    /// Inject empty caches/predictor/TLB (fast, overestimates misses).
    Cold,
    /// Functionally replay the last `N` ops before the representative
    /// while touching fresh timing structures.
    Ops(u64),
    /// Sequential second pass keeping timing structures continuously
    /// warm between representatives (most accurate, slowest).
    Full,
}

/// Exact cycle-accurate simulation, or SimPoint-style sampling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SamplePolicy {
    /// Simulate every instruction (bit-identical to the pre-sampling
    /// simulator).
    #[default]
    Exact,
    /// Slice into `interval_len`-op intervals, cluster BBVs into at most
    /// `max_clusters` phases, simulate one representative per phase with
    /// the given warmup, extrapolate the rest.
    Sampled {
        /// Ops per interval (clamped to at least 256).
        interval_len: u64,
        /// Phase-cluster budget for k-means.
        max_clusters: usize,
        /// Timing-structure warmup mode.
        warmup: Warmup,
    },
}

impl SamplePolicy {
    /// The tuned default sampling configuration (the one `epicc sample`
    /// and the benchmark harness use).
    pub fn default_sampled() -> SamplePolicy {
        SamplePolicy::Sampled {
            interval_len: 100_000,
            max_clusters: 12,
            warmup: Warmup::Full,
        }
    }
}

/// Metadata attached to a sampled [`SimResult`]: how the run was sliced,
/// clustered, and how trustworthy the extrapolation is.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleInfo {
    /// Nominal ops per interval.
    pub interval_len: u64,
    /// Number of intervals the run sliced into.
    pub intervals: usize,
    /// Number of phase clusters actually formed.
    pub clusters: usize,
    /// Total retired-slot ops in the run (exact).
    pub total_ops: u64,
    /// Ops simulated in detail (representatives only).
    pub sampled_ops: u64,
    /// Heuristic relative-error estimate for total cycles, from
    /// weighted intra-cluster BBV dispersion. `0.0` for fallback runs.
    pub est_error: f64,
    /// The run was too small to sample; the numbers are exact.
    pub fallback: bool,
    /// Per-interval phase assignment (cluster index per interval).
    pub phases: Vec<u32>,
}

// ---------------------------------------------------------------------
// Issue-group tables
// ---------------------------------------------------------------------

/// A predecoded source operand. `Global`/`FuncAddr` fold to `Imm`
/// constants at predecode time; `Bad` preserves the exact panic for a
/// (verifier-rejected) label evaluated as data.
#[derive(Clone, Copy)]
enum PSrc {
    Reg(u32),
    Imm(u64),
    FrameAddr(u64),
    Bad,
}

/// Absent operand (e.g. a bare `ret`): evaluates to zero, as in `Sim`.
const NO_SRC: PSrc = PSrc::Imm(0);

/// Predecoded opcode payload. Branch targets and direct callees are
/// resolved to indices; memory sizes to byte counts.
#[derive(Clone, Copy)]
enum PKind {
    Alu(Opcode),
    /// [`PKind::Alu`] specialized to reg/reg and reg/imm operands
    /// (folding the operand-source dispatch into the opcode dispatch
    /// removes two data-dependent branches per op; these shapes are the
    /// bulk of every stream). Same pattern for `Mov`/`Cmp`/`Ld`/`St`.
    AluRR(Opcode),
    AluRI(Opcode),
    Div,
    Rem,
    Cmp {
        kind: CmpKind,
        dst2: u32,
    },
    CmpRR {
        kind: CmpKind,
        dst2: u32,
    },
    CmpRI {
        kind: CmpKind,
        dst2: u32,
    },
    Mov,
    MovR,
    MovI,
    MovF,
    Ld {
        bytes: u32,
        spec: bool,
        adv: bool,
    },
    /// Plain (non-speculative, non-advanced) load, reg / frame address.
    LdR {
        bytes: u32,
    },
    LdF {
        bytes: u32,
    },
    ChkA {
        bytes: u32,
        key: u32,
    },
    Chk {
        bytes: u32,
    },
    St {
        bytes: u32,
    },
    /// Store specialized to reg/frame address and reg value.
    StRR {
        bytes: u32,
    },
    StFR {
        bytes: u32,
    },
    /// Target bundle index; `u32::MAX` = unplaced block (traps if taken).
    Br {
        target: u32,
    },
    /// `br` whose operand is not a label (panics if executed, as `Sim`).
    BrBad,
    /// `callee == u32::MAX` = indirect (resolve `a` at run time);
    /// `args` is a range into [`GroupTable::cargs`].
    Call {
        callee: u32,
        args: (u32, u32),
    },
    Ret,
    Out,
    Alloc,
}

/// One predecoded op. `dst`/`guard` are register indices
/// (`u32::MAX` = none); `off` is the bundle offset within the group
/// (for predictor addresses).
#[derive(Clone, Copy)]
struct POp {
    kind: PKind,
    guard: u32,
    dst: u32,
    a: PSrc,
    b: PSrc,
    off: u16,
    branch: bool,
}

/// One per-bundle issue-group record, packed so a group lookup touches
/// a single cache line. For a group starting at bundle `i`: `end` is
/// its stop bundle (`u32::MAX` = malformed start that runs off the
/// code), `nops` its real-op count, `bbv` its precomputed BBV slot, and
/// `off..off+len` its predecoded ops (`off == u32::MAX` where control
/// can never land — predecoding covers only reachable starts). `direct`
/// means register writes may commit straight into the frame (no op
/// observes — or, via a taken call/return frame switch,
/// discards/redirects — the pre-group value of a register written
/// earlier in the group), skipping the two-phase write buffer.
#[derive(Clone, Copy)]
struct GEntry {
    end: u32,
    nops: u32,
    off: u32,
    len: u32,
    /// Fused-run extent: a maximal chain of consecutive fallthrough
    /// groups that are all direct-commit safe and contain no
    /// control-flow op executes as one flat op slice, skipping the
    /// per-group loop overhead (fuel, table fetch, BBV hash, flow
    /// dispatch). `fend`/`fops`/`flen` mirror `end`/`nops`/`len` over
    /// the whole chain; `fsteps` is its group count (1 = no fusion);
    /// `fbbv..fbbv+fpairs` indexes [`GroupTable::bbv_pairs`] with the
    /// chain's merged per-slot op counts.
    fend: u32,
    fops: u32,
    flen: u32,
    fbbv: u32,
    fsteps: u16,
    fpairs: u16,
    bbv: u16,
    direct: bool,
}

/// Per-function predecoded issue-group structure.
struct GroupTable {
    g: Vec<GEntry>,
    pops: Vec<POp>,
    cargs: Vec<PSrc>,
    /// `(bbv slot, op count)` pairs for fused runs (see [`GEntry`]).
    bbv_pairs: Vec<(u16, u32)>,
}

type RegMask = [u64; NREGS.div_ceil(64)];

fn mask_get(m: &RegMask, r: u32) -> bool {
    (r as usize) < NREGS && m[r as usize / 64] >> (r % 64) & 1 == 1
}

fn mask_set(m: &mut RegMask, r: u32) {
    m[r as usize / 64] |= 1 << (r % 64);
}

/// Predecode the group `[first, end]` of `f`, appending its ops to the
/// pools and computing the direct-commit safety flag plus `pure` (no
/// control-flow op: execution provably falls through, the fusion
/// precondition).
fn predecode_group(
    mp: &MachProgram,
    f: &MachFunc,
    first: usize,
    end: usize,
    pops: &mut Vec<POp>,
    cargs: &mut Vec<PSrc>,
) -> (u32, u32, bool, bool) {
    let off = pops.len() as u32;
    let mut written: RegMask = Default::default();
    let mut any_write = false;
    let mut direct = true;
    let mut pure = true;
    let psrc = |o: &Operand| match *o {
        Operand::Reg(v) => PSrc::Reg(v.0),
        Operand::Imm(i) => PSrc::Imm(i as u64),
        Operand::Global(g) => PSrc::Imm(mp.ir.globals[g.index()].addr),
        Operand::FuncAddr(t) => PSrc::Imm(func_addr(t)),
        Operand::FrameAddr(o) => PSrc::FrameAddr(o),
        Operand::Label(_) => PSrc::Bad,
    };
    for (k, b) in f.bundles[first..=end].iter().enumerate() {
        for s in &b.slots {
            let Slot::Op(op) = s else { continue };
            if matches!(op.opcode, Opcode::Nop) {
                continue; // no architectural effect; counted via `nops`
            }
            // a source read sees pre-group state in buffered mode; if
            // the register was written earlier in the group, direct
            // commit would change what it reads
            macro_rules! rd {
                ($o:expr) => {{
                    let s = psrc($o);
                    if let PSrc::Reg(r) = s {
                        if mask_get(&written, r) || r as usize >= NREGS {
                            direct = false;
                        }
                    }
                    s
                }};
            }
            macro_rules! wr {
                ($d:expr) => {{
                    let d: u32 = $d;
                    if (d as usize) < NREGS {
                        mask_set(&mut written, d);
                    } else {
                        direct = false; // untrackable (traps at exec)
                    }
                    any_write = true;
                }};
            }
            let is_br = op.is_branch();
            let guard = match op.guard {
                None => u32::MAX,
                Some(g) => {
                    // branch guards read latest-write semantics, which
                    // direct commit matches; others read pre-group state
                    if !is_br && mask_get(&written, g.0) {
                        direct = false;
                    }
                    g.0
                }
            };
            let dst = op.dsts.first().map_or(u32::MAX, |d| d.0);
            let mut a = NO_SRC;
            let mut bs = NO_SRC;
            let kind = match op.opcode {
                Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Sar => {
                    a = rd!(&op.srcs[0]);
                    bs = rd!(&op.srcs[1]);
                    wr!(dst);
                    PKind::Alu(op.opcode)
                }
                Opcode::Div | Opcode::Rem => {
                    a = rd!(&op.srcs[0]);
                    bs = rd!(&op.srcs[1]);
                    wr!(dst);
                    if matches!(op.opcode, Opcode::Div) {
                        PKind::Div
                    } else {
                        PKind::Rem
                    }
                }
                Opcode::Cmp(kind) => {
                    a = rd!(&op.srcs[0]);
                    bs = rd!(&op.srcs[1]);
                    wr!(dst);
                    let dst2 = op.dsts.get(1).map_or(u32::MAX, |d| d.0);
                    if dst2 != u32::MAX {
                        wr!(dst2);
                    }
                    PKind::Cmp { kind, dst2 }
                }
                Opcode::Mov => {
                    a = rd!(&op.srcs[0]);
                    wr!(dst);
                    PKind::Mov
                }
                Opcode::Ld(size) => {
                    a = rd!(&op.srcs[0]);
                    wr!(dst);
                    PKind::Ld {
                        bytes: size.bytes() as u32,
                        spec: op.spec,
                        adv: op.adv,
                    }
                }
                Opcode::ChkA(size) => {
                    a = rd!(&op.srcs[0]);
                    bs = rd!(&op.srcs[1]);
                    wr!(dst);
                    let key = match op.srcs[0] {
                        Operand::Reg(r) => r.0,
                        _ => u32::MAX, // malformed; panics if executed
                    };
                    PKind::ChkA {
                        bytes: size.bytes() as u32,
                        key,
                    }
                }
                Opcode::Chk(size) => {
                    a = rd!(&op.srcs[0]);
                    bs = rd!(&op.srcs[1]);
                    wr!(dst);
                    PKind::Chk {
                        bytes: size.bytes() as u32,
                    }
                }
                Opcode::St(size) => {
                    a = rd!(&op.srcs[0]);
                    bs = rd!(&op.srcs[1]);
                    PKind::St {
                        bytes: size.bytes() as u32,
                    }
                }
                Opcode::Br => {
                    pure = false;
                    match op.srcs[0] {
                        Operand::Label(t) => PKind::Br {
                            target: f
                                .block_entry
                                .get(t.index())
                                .copied()
                                .flatten()
                                .map_or(u32::MAX, |bi| bi as u32),
                        },
                        _ => PKind::BrBad,
                    }
                }
                Opcode::Call => {
                    pure = false;
                    let callee = match op.srcs[0] {
                        Operand::FuncAddr(t) => t.index() as u32,
                        ref o => {
                            a = rd!(o);
                            u32::MAX
                        }
                    };
                    let a0 = cargs.len() as u32;
                    for so in &op.srcs[1..] {
                        let ps = rd!(so);
                        cargs.push(ps);
                    }
                    let a1 = cargs.len() as u32;
                    // a taken call discards the group's buffered writes
                    if any_write {
                        direct = false;
                    }
                    PKind::Call {
                        callee,
                        args: (a0, a1),
                    }
                }
                Opcode::Ret => {
                    pure = false;
                    a = op.srcs.first().map(|o| rd!(o)).unwrap_or(NO_SRC);
                    // buffered writes commit *after* the return's frame
                    // swap, i.e. into the caller's frame
                    if any_write {
                        direct = false;
                    }
                    PKind::Ret
                }
                Opcode::Out => {
                    a = rd!(&op.srcs[0]);
                    PKind::Out
                }
                Opcode::Alloc => {
                    a = rd!(&op.srcs[0]);
                    wr!(dst);
                    PKind::Alloc
                }
                Opcode::Nop => unreachable!("filtered above"),
            };
            // fold the hottest operand shapes into the opcode dispatch
            let kind = match (kind, a, bs) {
                (PKind::Alu(o), PSrc::Reg(_), PSrc::Reg(_)) => PKind::AluRR(o),
                (PKind::Alu(o), PSrc::Reg(_), PSrc::Imm(_)) => PKind::AluRI(o),
                (PKind::Mov, PSrc::Reg(_), _) => PKind::MovR,
                (PKind::Mov, PSrc::Imm(_), _) => PKind::MovI,
                (PKind::Mov, PSrc::FrameAddr(_), _) => PKind::MovF,
                (PKind::Cmp { kind, dst2 }, PSrc::Reg(_), PSrc::Reg(_)) => {
                    PKind::CmpRR { kind, dst2 }
                }
                (PKind::Cmp { kind, dst2 }, PSrc::Reg(_), PSrc::Imm(_)) => {
                    PKind::CmpRI { kind, dst2 }
                }
                (
                    PKind::Ld {
                        bytes,
                        spec: false,
                        adv: false,
                    },
                    PSrc::Reg(_),
                    _,
                ) => PKind::LdR { bytes },
                (
                    PKind::Ld {
                        bytes,
                        spec: false,
                        adv: false,
                    },
                    PSrc::FrameAddr(_),
                    _,
                ) => PKind::LdF { bytes },
                (PKind::St { bytes }, PSrc::Reg(_), PSrc::Reg(_)) => PKind::StRR { bytes },
                (PKind::St { bytes }, PSrc::FrameAddr(_), PSrc::Reg(_)) => PKind::StFR { bytes },
                (k, ..) => k,
            };
            pops.push(POp {
                kind,
                guard,
                dst,
                a,
                b: bs,
                off: k as u16,
                branch: is_br,
            });
        }
    }
    (off, pops.len() as u32 - off, direct, pure)
}

fn build_tables(mp: &MachProgram) -> Vec<GroupTable> {
    mp.funcs
        .iter()
        .enumerate()
        .map(|(func_i, f)| {
            let nb = f.bundles.len();
            let mut g = vec![
                GEntry {
                    end: u32::MAX,
                    nops: 0,
                    off: u32::MAX,
                    len: 0,
                    fend: u32::MAX,
                    fops: 0,
                    flen: 0,
                    fbbv: 0,
                    fsteps: 1,
                    fpairs: 0,
                    bbv: 0,
                    direct: false,
                };
                nb
            ];
            for i in (0..nb).rev() {
                let b = &f.bundles[i];
                if b.stop {
                    g[i].end = i as u32;
                    g[i].nops = b.op_count() as u32;
                } else if i + 1 < nb && g[i + 1].end != u32::MAX {
                    g[i].end = g[i + 1].end;
                    g[i].nops = b.op_count() as u32 + g[i + 1].nops;
                }
                g[i].bbv = bbv_slot(func_i, i) as u16;
            }
            // predecode every start control can land on: sequential
            // fallthroughs land after a stop, branches on block entries,
            // calls on the function entry, returns after a stop
            let mut pops = Vec::new();
            let mut cargs = Vec::new();
            let mut pure = vec![false; nb];
            let natural: Vec<usize> = (0..nb)
                .filter(|&i| i == 0 || f.bundles[i - 1].stop)
                .collect();
            let entries = f.block_entry.iter().filter_map(|e| *e);
            for i in natural
                .into_iter()
                .chain(entries)
                .chain(std::iter::once(f.entry))
            {
                if i < nb && g[i].end != u32::MAX && g[i].off == u32::MAX {
                    let (off, len, direct, p) =
                        predecode_group(mp, f, i, g[i].end as usize, &mut pops, &mut cargs);
                    g[i].off = off;
                    g[i].len = len;
                    g[i].direct = direct;
                    pure[i] = p;
                }
            }
            // fuse maximal chains of pure direct fallthrough groups
            // whose predecoded ops are adjacent in `pops` (consecutive
            // natural starts always are: the natural loop above runs
            // first, in ascending bundle order). The 64-group cap
            // bounds interval-boundary overshoot and fuel-check lag.
            let mut bbv_pairs: Vec<(u16, u32)> = Vec::new();
            fn fusible(g: &[GEntry], pure: &[bool], i: usize) -> bool {
                g[i].off != u32::MAX && g[i].end != u32::MAX && g[i].direct && pure[i]
            }
            for i in 0..nb {
                g[i].fend = g[i].end;
                g[i].fops = g[i].nops;
                g[i].flen = g[i].len;
                if !fusible(&g, &pure, i) {
                    continue;
                }
                let mut pairs: Vec<(u16, u32)> = vec![(g[i].bbv, g[i].nops)];
                let mut last = i;
                loop {
                    let next = g[last].end as usize + 1;
                    if g[i].fsteps >= 64
                        || next >= nb
                        || !fusible(&g, &pure, next)
                        || g[next].off != g[i].off + g[i].flen
                    {
                        break;
                    }
                    let ne = g[next];
                    g[i].fend = ne.end;
                    g[i].fops += ne.nops;
                    g[i].flen += ne.len;
                    g[i].fsteps += 1;
                    match pairs.iter_mut().find(|(s, _)| *s == ne.bbv) {
                        Some((_, n)) => *n += ne.nops,
                        None => pairs.push((ne.bbv, ne.nops)),
                    }
                    last = next;
                }
                if g[i].fsteps > 1 {
                    g[i].fbbv = bbv_pairs.len() as u32;
                    g[i].fpairs = pairs.len() as u16;
                    bbv_pairs.extend(pairs);
                }
            }
            GroupTable {
                g,
                pops,
                cargs,
                bbv_pairs,
            }
        })
        .collect()
}

/// Hash an issue-group start location into a BBV slot.
fn bbv_slot(func_i: usize, bundle: usize) -> usize {
    (mix(((func_i as u64) << 32) ^ bundle as u64) as usize) & (BBV_DIM - 1)
}

/// SplitMix64 finalizer (deterministic, std-only).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Functional execution
// ---------------------------------------------------------------------

/// Architectural state of the functional executor — everything that
/// affects *values*. Cloning is cheap: [`Memory`] pages are Arc-shared
/// copy-on-write, so interval snapshots cost refcount bumps.
#[derive(Clone)]
struct FState {
    mem: Memory,
    frame: Frame,
    stack: Vec<Frame>,
    pos: (usize, usize),
    depth: usize,
    /// ALAT entries: (frame depth, value register) -> watched range.
    alat: VecDeque<((usize, u32), u64, u64)>,
    /// RSE occupancy (deterministic from call history; carried so the
    /// injected detailed sim sees the exact register-stack state).
    rse: Rse,
    /// `Some` iff [`SpecModel::Sentinel`]: the DTLB is value-affecting
    /// there (sentinel `ld.s` defers iff the probe misses) and must be
    /// maintained exactly. `None` under `General`.
    dtlb: Option<Dtlb>,
    /// Page of the last exact-DTLB access: a repeat is a guaranteed hit
    /// at the LRU head, so only the access counter needs bumping.
    last_page: u64,
    /// Retired-slot op count (the interval clock; matches `Sim::ops`).
    ops: u64,
}

/// Per-set MRU mirror of one L1 cache. An access whose line is already
/// the MRU way of its set changes no tag/LRU state anywhere in the
/// hierarchy (it hits L1 without touching the shared L2/L3), so warm
/// replay can skip it outright. This filters the entire resident loop
/// working set, not just consecutive same-line repeats. Engaged only
/// for power-of-two geometry (every shipped config is).
#[derive(Clone)]
struct MruFilter {
    mru: Box<[u64]>, // per set: the line tag currently at MRU
    mask: u64,
    shift: u32,
    on: bool,
}

impl MruFilter {
    fn new(cfg: epic_mach::config::CacheConfig) -> MruFilter {
        let n_sets = (cfg.size / (cfg.line * cfg.ways)).max(1);
        let on = cfg.line.is_power_of_two() && n_sets.is_power_of_two();
        MruFilter {
            mru: vec![u64::MAX; if on { n_sets as usize } else { 0 }].into_boxed_slice(),
            mask: n_sets - 1,
            shift: cfg.line.trailing_zeros(),
            on,
        }
    }

    /// True if the access to `addr` can change cache state and must be
    /// forwarded; records its line as the new MRU of the set.
    #[inline]
    fn forward(&mut self, addr: u64) -> bool {
        if !self.on {
            return true;
        }
        let tag = addr >> self.shift;
        let si = (tag & self.mask) as usize;
        if self.mru[si] == tag {
            return false;
        }
        self.mru[si] = tag;
        true
    }
}

/// Warm-DTLB surrogate. A fully-associative LRU obeys the stack
/// property: its state after any access stream is exactly the
/// `capacity` most recently touched distinct pages, ordered by last
/// touch. So instead of replaying every page switch through a real
/// [`Dtlb`] (a hash lookup plus list splice each), record one
/// timestamp per page in flat per-region tables — a single store —
/// and rebuild the identical LRU once, at injection.
#[derive(Clone)]
struct WarmDtlb {
    clock: u64,
    /// Last-touch clock per page for globals/heap/stack, lazily grown.
    ts: [Vec<u64>; 3],
    capacity: usize,
}

impl WarmDtlb {
    const BASES: [u64; 3] = [
        GLOBAL_BASE / PAGE_SIZE,
        HEAP_BASE / PAGE_SIZE,
        (STACK_TOP - STACK_MAX) / PAGE_SIZE,
    ];

    fn new(capacity: usize) -> WarmDtlb {
        WarmDtlb {
            clock: 0,
            ts: Default::default(),
            capacity,
        }
    }

    /// Record a touch of `addr`'s page. Callers only pass addresses a
    /// load/store has validated, so the page is in one of the three
    /// storage regions.
    #[inline]
    fn touch(&mut self, addr: u64) {
        let page = addr / PAGE_SIZE;
        let r = (page >= Self::BASES[1]) as usize + (page >= Self::BASES[2]) as usize;
        let idx = (page - Self::BASES[r]) as usize;
        let t = &mut self.ts[r];
        if idx >= t.len() {
            t.resize(idx + 1, 0);
        }
        self.clock += 1;
        t[idx] = self.clock;
    }

    /// The equivalent [`Dtlb`] tag/LRU state (its counters are
    /// meaningless, which is fine: result counters come from the
    /// detailed interval's event stream, never from warm structures).
    fn rebuild(&self) -> Dtlb {
        let mut touched: Vec<(u64, u64)> = Vec::new();
        for (r, t) in self.ts.iter().enumerate() {
            for (i, &ts) in t.iter().enumerate() {
                if ts != 0 {
                    touched.push((ts, (Self::BASES[r] + i as u64) * PAGE_SIZE));
                }
            }
        }
        touched.sort_unstable();
        let skip = touched.len().saturating_sub(self.capacity);
        let mut d = Dtlb::new(self.capacity);
        for &(_, addr) in &touched[skip..] {
            d.access(addr);
        }
        d
    }
}

/// Timing-only structures warmed during `Warmup::Ops`/`Full` replay.
#[derive(Clone)]
struct WarmState {
    hier: Hierarchy,
    pred: AnyPredictor,
    /// Conditional mispredictions seen by the warm predictor — the
    /// cluster feature the predictor itself no longer counts.
    pred_mispredicts: u64,
    dtlb: WarmDtlb,
    ifilter: MruFilter,
    dfilter: MruFilter,
    /// MRU mirror of the (fully-associative) warm DTLB: a repeat
    /// same-page access is a state no-op.
    last_page: u64,
    /// Data-page switch count — the TLB-pressure cluster feature. Kept
    /// separate from `dtlb.clock` because sentinel-mode runs translate
    /// through the exact DTLB (the warm one never ticks) yet still owe
    /// their kernel cycles to page locality.
    page_switches: u64,
    /// Wild speculative loads (invalid, non-NaT-page addresses) seen by
    /// the functional pass — each costs `wild_load_kernel_cycles` in
    /// the detailed model (General spec only; sentinel defers early).
    wild_loads: u64,
}

impl WarmState {
    fn new(cfg: &MachineConfig, spec: PredictorSpec) -> WarmState {
        WarmState {
            hier: Hierarchy::new(cfg),
            pred: AnyPredictor::from_spec(spec),
            pred_mispredicts: 0,
            dtlb: WarmDtlb::new(cfg.dtlb_entries),
            ifilter: MruFilter::new(cfg.l1i),
            dfilter: MruFilter::new(cfg.l1d),
            last_page: u64::MAX,
            page_switches: 0,
            wild_loads: 0,
        }
    }

    /// Warm the data-side structures for an access to `addr`, skipping
    /// exact state no-ops. `tlb` is false when the exact (sentinel)
    /// DTLB already translated.
    #[inline]
    fn touch_data(&mut self, addr: u64, tlb: bool) {
        let page = addr / PAGE_SIZE;
        if page != self.last_page {
            self.last_page = page;
            self.page_switches += 1;
            if tlb {
                self.dtlb.touch(addr);
            }
        }
        if self.dfilter.forward(addr) {
            self.hier.access_data(addr);
        }
    }

    /// Running event totals backing the per-interval cluster features
    /// (pass 1 diffs consecutive readings).
    fn features(&self) -> [u64; N_FEAT] {
        [
            self.hier.l1d.misses,
            self.hier.l3.misses,
            self.page_switches,
            self.pred_mispredicts,
            self.wild_loads,
        ]
    }
}

/// The functional executor: replays the exact op stream ~10x faster than
/// the detailed model by skipping all event emission and (under
/// `General`) all timing structures.
struct FRun<'a> {
    mp: &'a MachProgram,
    tabs: &'a [GroupTable],
    alat_entries: usize,
    l1i_line: u64,
    /// `log2(l1i_line)` when the line size is a power of two (always in
    /// shipped configs): division in the warm fetch loop is a real
    /// `div` otherwise and shows up at one per executed group.
    l1i_shift: Option<u32>,
    /// Issue-group budget: the exact sim charges >=1 cycle per group, so
    /// exceeding the fuel in groups means the exact run would trap
    /// `OutOfFuel` — bail and fall back.
    step_limit: u64,
    steps: u64,
    st: FState,
    /// `Some` collects the `Out` stream (first pass only; replays must
    /// not duplicate output).
    out: Option<Vec<u64>>,
    /// Retired frames recycled by `Call` (a malloc per call otherwise
    /// shows up in profiles on call-heavy workloads).
    free: Vec<Frame>,
    /// Per-function kernel-cycle tally (first pass only; `None` on
    /// window replays). Every kernel charge is a value-path event with
    /// a fixed config cost — `Out`, `Alloc`, NaT-page and wild
    /// speculative loads — so the functional pass can compute the
    /// Kernel accounting column *exactly* instead of extrapolating it
    /// from representatives (wild loads are invisible to a BBV and
    /// unevenly spread within a phase, so they cluster poorly).
    kern: Option<Vec<u64>>,
    /// Function owning the currently-executing group (`kern` row).
    kfunc: usize,
    /// Kernel cost of `Out` (`Alloc` costs half, as in `Sim`).
    sys_cyc: u64,
    /// Kernel cost of a NaT-page speculative load.
    nat_cyc: u64,
    /// Kernel cost of a wild speculative load (`General` model).
    wild_cyc: u64,
}

/// Initial architectural state, mirroring `Sim::start`.
fn initial_state(mp: &MachProgram, args: &[i64], opts: &SimOptions) -> FState {
    let mut mem = Memory::new();
    mem.init_globals(&mp.ir);
    let entry = mp.ir.entry.index();
    let ef = &mp.funcs[entry];
    let mut frame = Frame::new(NREGS, STACK_TOP - ((ef.frame_size + 15) & !15));
    for (i, &r) in ef.param_regs.iter().enumerate() {
        frame.regs[r as usize] = Value::new(args.get(i).copied().unwrap_or(0) as u64);
    }
    let mut rse = Rse::new(opts.config.rse_capacity, opts.config.rse_cycle_per_reg);
    rse.call(ef.n_gr);
    FState {
        mem,
        frame,
        stack: Vec::new(),
        pos: (entry, ef.entry),
        depth: 0,
        alat: VecDeque::new(),
        rse,
        dtlb: (opts.spec_model == SpecModel::Sentinel).then(|| Dtlb::new(opts.config.dtlb_entries)),
        last_page: u64::MAX,
        ops: 0,
    }
}

impl<'a> FRun<'a> {
    fn new(
        mp: &'a MachProgram,
        tabs: &'a [GroupTable],
        opts: &SimOptions,
        st: FState,
        collect_out: bool,
    ) -> FRun<'a> {
        FRun {
            mp,
            tabs,
            alat_entries: opts.config.alat_entries,
            l1i_line: opts.config.l1i.line,
            l1i_shift: opts
                .config
                .l1i
                .line
                .is_power_of_two()
                .then(|| opts.config.l1i.line.trailing_zeros()),
            step_limit: opts.fuel_cycles.saturating_add(1),
            steps: 0,
            st,
            out: collect_out.then(Vec::new),
            free: Vec::new(),
            kern: collect_out.then(|| vec![0; mp.funcs.len()]),
            kfunc: 0,
            sys_cyc: opts.config.syscall_kernel_cycles,
            nat_cyc: opts.config.nat_page_cycles,
            wild_cyc: opts.config.wild_load_kernel_cycles,
        }
    }

    /// Tally an exactly-known kernel charge against the current
    /// function (first pass only; replays carry `kern: None`).
    #[inline]
    fn kern_charge(&mut self, cycles: u64) {
        if let Some(k) = &mut self.kern {
            k[self.kfunc] += cycles;
        }
    }

    /// A zeroed frame for `Call`, recycled from the free list when
    /// possible. `ready`/`producer` are left stale: the functional pass
    /// never reads them and `inject` re-zeroes `ready`.
    fn fresh_frame(&mut self, sp: u64) -> Frame {
        match self.free.pop() {
            Some(mut f) => {
                f.regs.fill(Value::default());
                f.sp = sp;
                f.ret_dst = None;
                f
            }
            None => Frame::new(NREGS, sp),
        }
    }

    /// Install an ALAT entry (FIFO replacement, same as `Sim`).
    fn alat_insert(&mut self, reg: u32, addr: u64, size: u64) {
        let key = (self.st.depth, reg);
        self.st.alat.retain(|(k, ..)| *k != key);
        if self.st.alat.len() >= self.alat_entries {
            self.st.alat.pop_front();
        }
        self.st.alat.push_back((key, addr, size));
    }

    /// A load's value, replicating `Sim::do_load`'s value semantics
    /// exactly (including the sentinel DTLB-probe deferral). Warm-mode
    /// calls additionally touch the timing structures.
    #[inline]
    fn fload<const WARM: bool>(
        &mut self,
        addr: Value,
        bytes: u64,
        spec: bool,
        warm: &mut WarmState,
    ) -> Result<Value, TrapKind> {
        if addr.nat {
            return if spec {
                Ok(Value::NAT)
            } else {
                Err(TrapKind::NatConsumed("load"))
            };
        }
        let a = addr.bits;
        if let Some(d) = &mut self.st.dtlb {
            let page = a / PAGE_SIZE;
            if spec {
                // sentinel: the validity check and then the
                // value-affecting probe both come before the data read,
                // exactly as `do_load`
                if !self.st.mem.is_valid(a) {
                    if Memory::is_null_page(a) {
                        self.kern_charge(self.nat_cyc);
                    }
                    return Ok(Value::NAT);
                }
                if page == self.st.last_page {
                    d.accesses += 1; // repeat hit at the LRU head
                } else if !d.probe(a) {
                    return Ok(Value::NAT);
                } else {
                    d.access(a);
                    self.st.last_page = page;
                }
            } else if page == self.st.last_page {
                d.accesses += 1;
            } else {
                d.access(a);
                self.st.last_page = page;
            }
            // (a non-speculative faulting load skips the validity
            // pre-check `do_load` makes: the fault still surfaces from
            // `read_fast` below and any trap falls back to an exact run,
            // so the transient DTLB overcount is never observable)
        }
        // read_fast validates internally — one page lookup on the hot
        // path; faults sort out NaT-vs-trap on the cold path below
        match self.st.mem.read_fast(a, bytes) {
            Ok(v) => {
                if WARM {
                    warm.touch_data(a, self.st.dtlb.is_none());
                }
                Ok(Value::new(v))
            }
            Err(e) => {
                if spec && !self.st.mem.is_valid(a) {
                    // only the `General` model reaches here speculatively
                    // (sentinel deferred above): NaT page or wild load
                    if Memory::is_null_page(a) {
                        self.kern_charge(self.nat_cyc);
                    } else {
                        self.kern_charge(self.wild_cyc);
                        if WARM {
                            warm.wild_loads += 1;
                        }
                    }
                    Ok(Value::NAT)
                } else {
                    Err(TrapKind::MemFault(e.addr))
                }
            }
        }
    }

    /// A store's effects, replicating `Sim`'s semantics exactly
    /// (sentinel DTLB access, fault, ALAT invalidation). Warm-mode
    /// calls additionally touch the timing structures.
    #[inline]
    fn fstore<const WARM: bool>(
        &mut self,
        addr: Value,
        val: Value,
        bytes: u32,
        warm: &mut WarmState,
    ) -> Result<(), TrapKind> {
        if addr.nat || val.nat {
            return Err(TrapKind::NatConsumed("store"));
        }
        let exact_tlb = match &mut self.st.dtlb {
            Some(d) => {
                let page = addr.bits / PAGE_SIZE;
                if page == self.st.last_page {
                    d.accesses += 1; // repeat hit at the LRU head
                } else {
                    d.access(addr.bits);
                    self.st.last_page = page;
                }
                true
            }
            None => false,
        };
        self.st
            .mem
            .write_fast(addr.bits, bytes as u64, val.bits)
            .map_err(|e| TrapKind::MemFault(e.addr))?;
        if WARM {
            warm.touch_data(addr.bits, !exact_tlb);
        }
        // stores invalidate overlapping ALAT entries
        let (sa, sz) = (addr.bits, bytes as u64);
        self.st
            .alat
            .retain(|&(_, ea, es)| sa + sz <= ea || ea + es <= sa);
        Ok(())
    }

    /// Execute issue groups until `st.ops >= target` (checked at group
    /// boundaries, so bundles are never split — boundary op counts are
    /// bit-identical to the detailed sim's). Returns `Some(ret)` when
    /// the program finished first. `warm` touches timing structures;
    /// `bbv` accumulates the interval's basic-block vector. `WARM` and
    /// `PROF` monomorphize those two concerns away entirely on the
    /// value-only replay and cold-profile paths.
    fn run_to<const WARM: bool, const PROF: bool>(
        &mut self,
        target: u64,
        warm: &mut WarmState,
        mut bbv: Option<&mut [u64; BBV_DIM]>,
    ) -> Result<Option<u64>, TrapKind> {
        let mp = self.mp;
        let tabs = self.tabs;
        let mut writes: Vec<(u32, Value)> = Vec::with_capacity(16);
        while self.st.ops < target {
            let (func_i, first) = self.st.pos;
            let f = &mp.funcs[func_i];
            let tab = &tabs[func_i];
            if first >= f.bundles.len() {
                return Err(TrapKind::Malformed(format!(
                    "fell off code at bundle {first}"
                )));
            }
            let e = tab.g[first];
            if e.end == u32::MAX {
                return Err(TrapKind::Malformed("issue group runs off the code".into()));
            }
            // fuel is charged per constituent group, checked once per
            // fused run: a mid-run overshoot still errs here (the sum
            // already exceeds the limit), and the exact fallback then
            // re-derives the authentic trap point
            self.steps += e.fsteps as u64;
            if self.steps > self.step_limit {
                return Err(TrapKind::OutOfFuel);
            }
            let end = e.fend as usize;
            self.st.ops += e.fops as u64;
            if PROF {
                if let Some(b) = bbv.as_deref_mut() {
                    if e.fsteps == 1 {
                        b[e.bbv as usize] += e.nops as u64;
                    } else {
                        let (p0, p1) = (e.fbbv as usize, (e.fbbv + e.fpairs as u32) as usize);
                        for &(slot, n) in &tab.bbv_pairs[p0..p1] {
                            b[slot as usize] += n as u64;
                        }
                    }
                }
            }
            // warm front end: the run's bundles cover a contiguous
            // line range; touch each line whose fetch would change state
            if WARM {
                let (l0, l1) = match self.l1i_shift {
                    Some(s) => (f.bundle_addr(first) >> s, f.bundle_addr(end) >> s),
                    None => (
                        f.bundle_addr(first) / self.l1i_line,
                        f.bundle_addr(end) / self.l1i_line,
                    ),
                };
                for l in l0..=l1 {
                    let a = l * self.l1i_line;
                    if warm.ifilter.forward(a) {
                        warm.hier.fetch_inst(a);
                    }
                }
            }
            if e.off == u32::MAX {
                // control only ever lands on predecoded starts; anything
                // else is malformed (the exact fallback re-derives the
                // authentic trap)
                return Err(TrapKind::Malformed("entered mid-group".into()));
            }
            let flow = if e.fsteps > 1 {
                // a fused run is all-direct and control-free: execute
                // its whole op slice as one straight line
                let fe = GEntry { len: e.flen, ..e };
                self.exec_group::<true, WARM>(func_i, first, end, fe, warm, &mut writes)?
            } else if e.direct {
                self.exec_group::<true, WARM>(func_i, first, end, e, warm, &mut writes)?
            } else {
                self.exec_group::<false, WARM>(func_i, first, end, e, warm, &mut writes)?
            };
            match flow {
                Flow::Fall => self.st.pos = (func_i, end + 1),
                Flow::Jump(p) => self.st.pos = p,
                Flow::Done(ret) => return Ok(Some(ret)),
            }
        }
        Ok(None)
    }

    /// Execute one predecoded issue group. `DIRECT` commits register
    /// writes straight into the frame (proved safe at predecode time);
    /// otherwise writes buffer and commit at group end, exactly like the
    /// detailed sim's two-phase issue.
    #[inline(always)]
    fn exec_group<const DIRECT: bool, const WARM: bool>(
        &mut self,
        func_i: usize,
        first: usize,
        end: usize,
        e: GEntry,
        warm: &mut WarmState,
        writes: &mut Vec<(u32, Value)>,
    ) -> Result<Flow, TrapKind> {
        let mp = self.mp;
        let tabs = self.tabs;
        self.kfunc = func_i;
        let tab = &tabs[func_i];
        let f = &mp.funcs[func_i];
        let pops = &tab.pops[e.off as usize..(e.off + e.len) as usize];
        if !DIRECT {
            writes.clear();
        }
        let mut flow = Flow::Fall;
        let mut call_push: Option<Frame> = None;
        'ops: for pop in pops {
            let guard_val = match pop.guard {
                u32::MAX => true,
                g => {
                    let v = if !DIRECT && pop.branch {
                        // may consume this group's compare
                        writes
                            .iter()
                            .rev()
                            .find(|(r, _)| *r == g)
                            .map(|(_, v)| *v)
                            .unwrap_or(self.st.frame.regs[g as usize])
                    } else {
                        self.st.frame.regs[g as usize]
                    };
                    if WARM && pop.branch {
                        let addr = f.bundle_addr(first + pop.off as usize);
                        if !warm.pred.observe(addr, v.is_true()) {
                            warm.pred_mispredicts += 1;
                        }
                    }
                    v.is_true()
                }
            };
            if !guard_val {
                continue;
            }
            macro_rules! ev {
                ($s:expr) => {
                    match $s {
                        PSrc::Reg(r) => self.st.frame.regs[r as usize],
                        PSrc::Imm(x) => Value::new(x),
                        PSrc::FrameAddr(o) => Value::new(self.st.frame.sp + o),
                        PSrc::Bad => unreachable!("label evaluated as value"),
                    }
                };
            }
            macro_rules! put {
                ($r:expr, $v:expr) => {
                    if DIRECT {
                        self.st.frame.regs[$r as usize] = $v;
                    } else {
                        writes.push(($r, $v));
                    }
                };
            }
            // irrefutable by predecode: the specialized kinds are only
            // emitted for these operand shapes
            macro_rules! reg {
                ($s:expr) => {
                    match $s {
                        PSrc::Reg(r) => self.st.frame.regs[r as usize],
                        _ => unreachable!("specialized reg operand"),
                    }
                };
            }
            macro_rules! imm {
                ($s:expr) => {
                    match $s {
                        PSrc::Imm(x) => x,
                        _ => unreachable!("specialized imm operand"),
                    }
                };
            }
            macro_rules! faddr {
                ($s:expr) => {
                    match $s {
                        PSrc::FrameAddr(o) => Value::new(self.st.frame.sp + o),
                        _ => unreachable!("specialized frame operand"),
                    }
                };
            }
            match pop.kind {
                PKind::Alu(opc) => {
                    let a = ev!(pop.a);
                    let c = ev!(pop.b);
                    put!(pop.dst, Value::lift2(a, c, |x, y| alu(opc, x, y)));
                }
                PKind::AluRR(opc) => {
                    let a = reg!(pop.a);
                    let c = reg!(pop.b);
                    put!(pop.dst, Value::lift2(a, c, |x, y| alu(opc, x, y)));
                }
                PKind::AluRI(opc) => {
                    let a = reg!(pop.a);
                    let c = Value::new(imm!(pop.b));
                    put!(pop.dst, Value::lift2(a, c, |x, y| alu(opc, x, y)));
                }
                k @ (PKind::Div | PKind::Rem) => {
                    let a = ev!(pop.a);
                    let c = ev!(pop.b);
                    let v = if a.nat || c.nat {
                        Value::NAT
                    } else if c.bits == 0 {
                        return Err(TrapKind::DivByZero);
                    } else {
                        let (x, y) = (a.bits as i64, c.bits as i64);
                        Value::new(if matches!(k, PKind::Div) {
                            x.wrapping_div(y) as u64
                        } else {
                            x.wrapping_rem(y) as u64
                        })
                    };
                    put!(pop.dst, v);
                }
                PKind::Cmp { kind, dst2 } => {
                    let a = ev!(pop.a);
                    let c = ev!(pop.b);
                    let (t, fv) = if a.nat || c.nat {
                        (0u64, 0u64)
                    } else {
                        let r = kind.eval(a.bits, c.bits);
                        (r as u64, !r as u64)
                    };
                    put!(pop.dst, Value::new(t));
                    if dst2 != u32::MAX {
                        put!(dst2, Value::new(fv));
                    }
                }
                PKind::CmpRR { kind, dst2 } => {
                    let a = reg!(pop.a);
                    let c = reg!(pop.b);
                    let (t, fv) = if a.nat || c.nat {
                        (0u64, 0u64)
                    } else {
                        let r = kind.eval(a.bits, c.bits);
                        (r as u64, !r as u64)
                    };
                    put!(pop.dst, Value::new(t));
                    if dst2 != u32::MAX {
                        put!(dst2, Value::new(fv));
                    }
                }
                PKind::CmpRI { kind, dst2 } => {
                    let a = reg!(pop.a);
                    let c = imm!(pop.b);
                    let (t, fv) = if a.nat {
                        (0u64, 0u64)
                    } else {
                        let r = kind.eval(a.bits, c);
                        (r as u64, !r as u64)
                    };
                    put!(pop.dst, Value::new(t));
                    if dst2 != u32::MAX {
                        put!(dst2, Value::new(fv));
                    }
                }
                PKind::Mov => {
                    let v = ev!(pop.a);
                    put!(pop.dst, v);
                }
                PKind::MovR => {
                    let v = reg!(pop.a);
                    put!(pop.dst, v);
                }
                PKind::MovI => put!(pop.dst, Value::new(imm!(pop.a))),
                PKind::MovF => put!(pop.dst, faddr!(pop.a)),
                PKind::Ld { bytes, spec, adv } => {
                    let addr = ev!(pop.a);
                    let v = self.fload::<WARM>(addr, bytes as u64, spec, &mut *warm)?;
                    if adv && !addr.nat && !v.nat {
                        self.alat_insert(pop.dst, addr.bits, bytes as u64);
                    }
                    put!(pop.dst, v);
                }
                PKind::LdR { bytes } => {
                    let addr = reg!(pop.a);
                    let v = self.fload::<WARM>(addr, bytes as u64, false, &mut *warm)?;
                    put!(pop.dst, v);
                }
                PKind::LdF { bytes } => {
                    let addr = faddr!(pop.a);
                    let v = self.fload::<WARM>(addr, bytes as u64, false, &mut *warm)?;
                    put!(pop.dst, v);
                }
                PKind::ChkA { bytes, key } => {
                    let v = ev!(pop.a);
                    if key == u32::MAX {
                        unreachable!("verified chk.a shape");
                    }
                    let k = (self.st.depth, key);
                    let hit = self.st.alat.iter().any(|(k2, ..)| *k2 == k) && !v.nat;
                    if hit {
                        put!(pop.dst, v);
                    } else {
                        let rv = self.fload::<WARM>(ev!(pop.b), bytes as u64, false, &mut *warm)?;
                        put!(pop.dst, rv);
                    }
                }
                PKind::Chk { bytes } => {
                    let v = ev!(pop.a);
                    if v.nat {
                        let rv = self.fload::<WARM>(ev!(pop.b), bytes as u64, false, &mut *warm)?;
                        put!(pop.dst, rv);
                    } else {
                        put!(pop.dst, v);
                    }
                }
                PKind::St { bytes } => {
                    let addr = ev!(pop.a);
                    let val = ev!(pop.b);
                    self.fstore::<WARM>(addr, val, bytes, &mut *warm)?;
                }
                PKind::StRR { bytes } => {
                    let addr = reg!(pop.a);
                    let val = reg!(pop.b);
                    self.fstore::<WARM>(addr, val, bytes, &mut *warm)?;
                }
                PKind::StFR { bytes } => {
                    let addr = faddr!(pop.a);
                    let val = reg!(pop.b);
                    self.fstore::<WARM>(addr, val, bytes, &mut *warm)?;
                }
                PKind::Br { target } => {
                    if target == u32::MAX {
                        return Err(TrapKind::Malformed("branch to unplaced block".into()));
                    }
                    flow = Flow::Jump((func_i, target as usize));
                    break 'ops;
                }
                PKind::BrBad => panic!("branch label"),
                PKind::Call { callee, args } => {
                    let callee = if callee != u32::MAX {
                        callee as usize
                    } else {
                        let v = ev!(pop.a);
                        if v.nat {
                            return Err(TrapKind::NatConsumed("call"));
                        }
                        func_from_addr(v.bits)
                            .ok_or(TrapKind::BadCall(v.bits))?
                            .index()
                    };
                    let cf = &mp.funcs[callee];
                    self.st.rse.call(cf.n_gr);
                    if WARM {
                        warm.pred.push_return(f.bundle_addr(end + 1));
                    }
                    let sp = self.st.frame.sp - ((cf.frame_size + 15) & !15);
                    if sp < STACK_TOP - STACK_MAX {
                        return Err(TrapKind::MemFault(sp));
                    }
                    let mut nf = self.fresh_frame(sp);
                    let argv = &tab.cargs[args.0 as usize..args.1 as usize];
                    for (ai, &pr) in cf.param_regs.iter().enumerate() {
                        if let Some(&a) = argv.get(ai) {
                            nf.regs[pr as usize] = ev!(a);
                        }
                    }
                    nf.ret_pos = (func_i, end + 1);
                    nf.ret_dst = (pop.dst != u32::MAX).then(|| Vreg(pop.dst));
                    self.st.depth += 1;
                    flow = Flow::Jump((callee, cf.entry));
                    call_push = Some(nf);
                    break 'ops;
                }
                PKind::Ret => {
                    let val = ev!(pop.a);
                    self.st.rse.ret();
                    match self.st.stack.pop() {
                        Some(mut caller) => {
                            if WARM {
                                let rp = self.st.frame.ret_pos;
                                warm.pred.pop_return(mp.funcs[rp.0].bundle_addr(rp.1));
                            }
                            if let Some(d) = self.st.frame.ret_dst {
                                caller.regs[d.index()] = val;
                            }
                            let next = self.st.frame.ret_pos;
                            self.free
                                .push(std::mem::replace(&mut self.st.frame, caller));
                            let d = self.st.depth;
                            self.st.alat.retain(|&((fd, _), ..)| fd < d);
                            self.st.depth -= 1;
                            flow = Flow::Jump(next);
                            break 'ops;
                        }
                        None => {
                            if val.nat {
                                return Err(TrapKind::NatConsumed("main return"));
                            }
                            flow = Flow::Done(val.bits);
                            break 'ops;
                        }
                    }
                }
                PKind::Out => {
                    let v = ev!(pop.a);
                    if v.nat {
                        return Err(TrapKind::NatConsumed("out"));
                    }
                    self.kern_charge(self.sys_cyc);
                    if let Some(o) = &mut self.out {
                        o.push(v.bits);
                    }
                }
                PKind::Alloc => {
                    let n = ev!(pop.a);
                    if n.nat {
                        return Err(TrapKind::NatConsumed("alloc"));
                    }
                    self.kern_charge(self.sys_cyc / 2);
                    let p = self.st.mem.alloc(n.bits);
                    put!(pop.dst, Value::new(p));
                }
            }
        }
        // --- commit (writes are discarded on a call, as in `Sim`; a
        // return swapped frames already, so buffered writes land in the
        // caller, also as in `Sim`) ---
        if let Some(nf) = call_push {
            if !DIRECT {
                writes.clear();
            }
            self.st
                .stack
                .push(std::mem::replace(&mut self.st.frame, nf));
        } else if !DIRECT {
            for (r, v) in writes.drain(..) {
                self.st.frame.regs[r as usize] = v;
            }
        }
        Ok(flow)
    }
}

/// Control-flow outcome of one issue group.
enum Flow {
    Fall,
    Jump((usize, usize)),
    Done(u64),
}

// ---------------------------------------------------------------------
// Pass 1: interval profiling
// ---------------------------------------------------------------------

/// Everything the profiling pass learns about a run.
struct Pass1 {
    /// Actual op count at the end of each interval (group-aligned; the
    /// last entry equals `total_ops`).
    ends: Vec<u64>,
    /// Raw per-interval BBVs (mass = interval op count).
    bbvs: Vec<[u64; BBV_DIM]>,
    /// Per-interval warm memory-behavior event counts (see [`N_FEAT`];
    /// all zero when profiling cold).
    feats: Vec<[u64; N_FEAT]>,
    /// Exact per-function kernel cycles for the whole run (kernel
    /// charges are value-path events with fixed costs, so the
    /// functional pass tallies them precisely — no extrapolation).
    kernel_rows: Vec<u64>,
    /// Snapshots at interval starts: `(interval index, architectural
    /// state, warm timing structures when profiling warm)`. Replaying
    /// from the warm snapshot nearest a representative reproduces
    /// `Warmup::Full`'s continuously-warm state without a second pass.
    snaps: Vec<(u64, FState, Option<WarmState>)>,
    output: Vec<u64>,
    ret: u64,
    total_ops: u64,
}

/// Nominal op target ending interval `i` (0-based): `(i+1)` interval
/// lengths plus a deterministic per-boundary jitter of up to ±12.5%.
/// Fixed-length slicing can phase-lock with a hot loop whose period
/// divides the interval — every boundary then lands at the same loop
/// offset, BBVs collapse to one shape, and the representative
/// systematically over- or under-states CPI (a ~2% error becomes ~20%
/// at the resonant length). Jitter breaks the lock; targets stay
/// strictly increasing (consecutive targets differ by ≥ 3/4 of an
/// interval) and both the profiling pass and the detailed replay
/// derive them from this one function.
fn interval_target(interval_len: u64, i: u64) -> u64 {
    let base = interval_len.saturating_mul(i + 1);
    let j = interval_len / 8;
    if j == 0 {
        return base;
    }
    base.saturating_add(mix(KMEANS_SEED ^ i) % (2 * j))
        .saturating_sub(j)
}

fn pass1(
    mp: &MachProgram,
    tabs: &[GroupTable],
    args: &[i64],
    opts: &SimOptions,
    interval_len: u64,
    want_snaps: bool,
    warm_profile: bool,
) -> Result<Pass1, (TrapKind, (usize, usize))> {
    let mut fr = FRun::new(mp, tabs, opts, initial_state(mp, args, opts), true);
    let mut warm = WarmState::new(&opts.config, opts.predictor);
    let mut ends = Vec::new();
    let mut bbvs = Vec::new();
    let mut feats = Vec::new();
    let mut feat_prev = [0u64; N_FEAT];
    let mut stride = 1u64;
    let mut snaps: Vec<(u64, FState, Option<WarmState>)> = Vec::new();
    let mut idx = 0u64;
    let ret = loop {
        if want_snaps && idx % stride == 0 {
            snaps.push((idx, fr.st.clone(), warm_profile.then(|| warm.clone())));
            if snaps.len() > MAX_SNAPSHOTS {
                stride *= 2;
                snaps.retain(|(i, ..)| i % stride == 0);
            }
        }
        let mut bbv = [0u64; BBV_DIM];
        let target = interval_target(interval_len, idx);
        let fin = if warm_profile {
            fr.run_to::<true, true>(target, &mut warm, Some(&mut bbv))
        } else {
            fr.run_to::<false, true>(target, &mut warm, Some(&mut bbv))
        }
        .map_err(|k| (k, fr.st.pos))?;
        ends.push(fr.st.ops);
        bbvs.push(bbv);
        let cur = warm.features();
        let mut d = [0u64; N_FEAT];
        for j in 0..N_FEAT {
            d[j] = cur[j] - feat_prev[j];
        }
        feats.push(d);
        feat_prev = cur;
        idx += 1;
        if let Some(ret) = fin {
            break ret;
        }
    };
    Ok(Pass1 {
        total_ops: fr.st.ops,
        ends,
        bbvs,
        feats,
        kernel_rows: fr.kern.take().unwrap_or_default(),
        snaps,
        output: fr.out.take().unwrap_or_default(),
        ret,
    })
}

/// A run's phase map, as `epicc sample` prints it and the boundary tests
/// consume it: group-aligned interval boundaries plus per-interval BBVs.
#[derive(Clone, Debug)]
pub struct PhaseProfile {
    /// Nominal interval length used for slicing.
    pub interval_len: u64,
    /// Actual op count at each interval end (never splits an issue
    /// group; the last entry is the run's total op count).
    pub ends: Vec<u64>,
    /// Per-interval basic-block vectors.
    pub bbvs: Vec<[u64; BBV_DIM]>,
    /// Total retired-slot ops.
    pub total_ops: u64,
    /// `main`'s return value.
    pub ret: u64,
    /// The exact `Out` stream.
    pub output: Vec<u64>,
}

/// Profile a run into intervals without any detailed simulation (the
/// fast functional pass only).
///
/// # Errors
/// A [`SimTrap`] when the program faults (cycle counts are 0: the
/// functional pass has no clock).
pub fn phase_profile(
    mp: &MachProgram,
    args: &[i64],
    opts: &SimOptions,
    interval_len: u64,
) -> Result<PhaseProfile, SimTrap> {
    let interval_len = interval_len.max(256);
    let tabs = build_tables(mp);
    let p1 = pass1(mp, &tabs, args, opts, interval_len, false, false).map_err(|(kind, pos)| {
        SimTrap {
            kind,
            func: mp.funcs[pos.0].name.clone(),
            bundle: pos.1,
            cycle: 0,
        }
    })?;
    Ok(PhaseProfile {
        interval_len,
        ends: p1.ends,
        bbvs: p1.bbvs,
        total_ops: p1.total_ops,
        ret: p1.ret,
        output: p1.output,
    })
}

// ---------------------------------------------------------------------
// Deterministic integer k-means
// ---------------------------------------------------------------------

/// One k-means cluster: the member sum and count (the mean is
/// `sum/count`, kept as a rational so distance comparisons stay exact).
#[derive(Clone, Debug)]
pub struct Centroid<const D: usize = BBV_DIM> {
    /// Component-wise sum over members.
    pub sum: [u64; D],
    /// Member count.
    pub count: u64,
}

/// A k-means clustering of `D`-dimensional vectors (BBVs by default;
/// the sampler clusters BBVs extended with warm memory features).
#[derive(Clone, Debug)]
pub struct Kmeans<const D: usize = BBV_DIM> {
    /// Cluster index per input vector.
    pub assignment: Vec<u32>,
    /// The clusters (empty ones are dropped and indices compacted).
    pub centroids: Vec<Centroid<D>>,
}

/// Squared L2 distance *numerator* between `v` and centroid mean
/// `c.sum/c.count`, scaled by `c.count^2`: compare `dist_num(v,a) *
/// b.count^2` against `dist_num(v,b) * a.count^2` — exact in `u128`.
fn dist_num<const D: usize>(v: &[u64; D], c: &Centroid<D>) -> u128 {
    let cnt = c.count as i128;
    let mut acc: u128 = 0;
    for j in 0..D {
        let d = v[j] as i128 * cnt - c.sum[j] as i128;
        acc += (d * d) as u128;
    }
    acc
}

/// Nearest centroid by exact rational distance; ties go to the lowest
/// cluster index (determinism).
fn nearest<const D: usize>(v: &[u64; D], cents: &[Centroid<D>]) -> u32 {
    let mut best = 0u32;
    let mut bn = dist_num(v, &cents[0]);
    let mut bd = (cents[0].count as u128) * (cents[0].count as u128);
    for (ci, c) in cents.iter().enumerate().skip(1) {
        let n = dist_num(v, c);
        let d = (c.count as u128) * (c.count as u128);
        if n * bd < bn * d {
            best = ci as u32;
            bn = n;
            bd = d;
        }
    }
    best
}

/// Deterministic, std-only k-means over BBVs with exact integer
/// arithmetic.
///
/// Initialization picks `k` seeds from the *sorted, deduplicated* vector
/// set — evenly spaced segments with a seed-jittered pick inside each —
/// so the result is invariant under permutation of the inputs (the
/// partition and the cluster indices both). Assignment ties break to the
/// lowest cluster index; empty clusters are dropped and indices
/// compacted; iteration stops at a fixed point (or after 100 rounds).
///
/// # Panics
/// Panics when `vecs` is empty.
pub fn kmeans<const D: usize>(vecs: &[[u64; D]], k: usize, seed: u64) -> Kmeans<D> {
    assert!(!vecs.is_empty(), "kmeans needs at least one vector");
    let mut uniq: Vec<[u64; D]> = vecs.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let k = k.clamp(1, uniq.len());
    let seg = uniq.len() / k;
    let mut centroids: Vec<Centroid<D>> = (0..k)
        .map(|j| {
            let lo = j * seg;
            let hi = if j + 1 == k { uniq.len() } else { lo + seg };
            let pick = lo + (mix(seed ^ j as u64) as usize) % (hi - lo);
            Centroid {
                sum: uniq[pick],
                count: 1,
            }
        })
        .collect();
    let mut assignment = vec![u32::MAX; vecs.len()];
    for _ in 0..100 {
        let mut changed = false;
        for (i, v) in vecs.iter().enumerate() {
            let best = nearest(v, &centroids);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        let mut next = vec![
            Centroid {
                sum: [0; D],
                count: 0
            };
            centroids.len()
        ];
        for (i, v) in vecs.iter().enumerate() {
            let c = &mut next[assignment[i] as usize];
            c.count += 1;
            for j in 0..D {
                c.sum[j] += v[j];
            }
        }
        // drop empty clusters, compacting indices
        let mut remap = vec![u32::MAX; next.len()];
        let mut kept: Vec<Centroid<D>> = Vec::with_capacity(next.len());
        for (i, c) in next.into_iter().enumerate() {
            if c.count > 0 {
                remap[i] = kept.len() as u32;
                kept.push(c);
            } else {
                changed = true;
            }
        }
        for a in &mut assignment {
            *a = remap[*a as usize];
        }
        centroids = kept;
        if !changed {
            break;
        }
    }
    Kmeans {
        assignment,
        centroids,
    }
}

// ---------------------------------------------------------------------
// Sampled run orchestration
// ---------------------------------------------------------------------

/// Running totals diffed around each representative's detailed window.
struct AttribSnap {
    rows: Vec<[u64; NUM_CATEGORIES]>,
    ctrs: [u64; NUM_COUNTERS],
}

fn attrib_snap(sim: &Sim) -> AttribSnap {
    AttribSnap {
        rows: sim.attrib.matrix().rows().to_vec(),
        ctrs: sim.attrib.counters().to_array(),
    }
}

/// Move functional + warm state into the detailed simulator. Scoreboard
/// ready-times are zeroed (the functional pass has no clock); the
/// store-forward window and fetch-buffer credit reset — both decay
/// within a few cycles, part of the sampling error budget.
fn inject(sim: &mut Sim, st: FState, warm: WarmState) {
    sim.mem = st.mem;
    sim.frame = st.frame;
    sim.stack = st.stack;
    sim.pos = st.pos;
    sim.depth = st.depth;
    sim.alat = st.alat;
    sim.rse = st.rse;
    sim.ops = st.ops;
    sim.hier = warm.hier;
    sim.pred = warm.pred;
    // Sentinel carries the exact (value-affecting) DTLB; General warms one.
    sim.dtlb = st.dtlb.unwrap_or_else(|| warm.dtlb.rebuild());
    sim.ib_ops = 0.0;
    sim.last_line = u64::MAX;
    sim.recent_stores.clear();
    sim.output.clear();
    for t in &mut sim.frame.ready {
        *t = 0;
    }
    for t in sim.stack.iter_mut().flat_map(|f| f.ready.iter_mut()) {
        *t = 0;
    }
}

/// Exact run tagged with sampling metadata (the fallback path for runs
/// too small to sample, and for any functional-pass trap — the exact
/// rerun reproduces the authentic trap).
fn run_exact_tagged(
    mp: &MachProgram,
    args: &[i64],
    opts: &SimOptions,
    sinks: Vec<Box<dyn crate::attrib::EventSink>>,
    info: Option<SampleInfo>,
) -> Result<SimResult, SimTrap> {
    let mut sim = Sim::new(mp, opts);
    for s in sinks {
        sim.attrib.add_sink(s);
    }
    sim.start(args);
    match sim.exec(u64::MAX)? {
        Exec::Done(ret) => {
            let mut r = sim.into_result(ret);
            r.sample = info;
            Ok(r)
        }
        Exec::Paused => unreachable!("unbounded exec cannot pause"),
    }
}

/// Scale `x` by the rational `num/den` with round-half-up, exact in
/// `u128`.
fn scale(x: u64, num: u64, den: u64) -> u128 {
    (x as u128 * num as u128 + den as u128 / 2) / den as u128
}

/// Run a program under [`SamplePolicy::Sampled`]. Called from
/// [`crate::machine::run_with_sinks`]; see the module docs for the
/// algorithm.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sampled(
    mp: &MachProgram,
    args: &[i64],
    opts: &SimOptions,
    interval_len: u64,
    max_clusters: usize,
    warmup: Warmup,
    sinks: Vec<Box<dyn crate::attrib::EventSink>>,
) -> Result<SimResult, SimTrap> {
    let mut interval_len = interval_len.max(256);
    let tabs = build_tables(mp);
    let warm_profile = warmup == Warmup::Full;
    let mut p1 = match pass1(mp, &tabs, args, opts, interval_len, true, warm_profile) {
        Ok(p) => p,
        // functional trap: the exact rerun reproduces it faithfully
        Err(_) => return run_exact_tagged(mp, args, opts, sinks, None),
    };
    // Adaptive interval sizing: a run short enough to yield few
    // intervals gives the clusterer too little to resolve phases (and
    // pays one full-length detail window per cluster — nearly the whole
    // run again). Re-profile with a proportional interval; the rerun is
    // cheap precisely because the program is small.
    if p1.ends.len() < 192 {
        let il = (p1.total_ops / 224).max(1024);
        if il < interval_len {
            interval_len = il;
            p1 = match pass1(mp, &tabs, args, opts, interval_len, true, warm_profile) {
                Ok(p) => p,
                Err(_) => return run_exact_tagged(mp, args, opts, sinks, None),
            };
        }
    }
    let n = p1.ends.len();
    if n < 8 || p1.total_ops <= 2 * interval_len {
        let info = SampleInfo {
            interval_len,
            intervals: n,
            clusters: 0,
            total_ops: p1.total_ops,
            sampled_ops: p1.total_ops,
            est_error: 0.0,
            fallback: true,
            phases: vec![0; n],
        };
        return run_exact_tagged(mp, args, opts, sinks, Some(info));
    }
    let iops = |i: usize| p1.ends[i] - if i == 0 { 0 } else { p1.ends[i - 1] };

    // --- cluster interval BBVs by shape, extended with cost-weighted
    // warm memory-feature rates (so BBV-identical intervals with
    // different cache behavior land in different clusters) ---
    let scaled: Vec<[u64; CVEC_DIM]> = (0..n)
        .map(|i| {
            let tot = iops(i).max(1);
            let mut s = [0u64; CVEC_DIM];
            for j in 0..BBV_DIM {
                s[j] = p1.bbvs[i][j] * BBV_SCALE / tot;
            }
            for j in 0..N_FEAT {
                s[BBV_DIM + j] = p1.feats[i][j] * FEAT_W[j] * BBV_SCALE / tot;
            }
            s
        })
        .collect();
    let km = kmeans(&scaled, max_clusters, KMEANS_SEED);
    let nclus = km.centroids.len();

    // representative per cluster: closest member to the centroid, ties
    // to the earliest interval
    let mut rep = vec![usize::MAX; nclus];
    let mut repd: Vec<(u128, u128)> = vec![(0, 0); nclus];
    for i in 0..n {
        let c = km.assignment[i] as usize;
        let num = dist_num(&scaled[i], &km.centroids[c]);
        let den = (km.centroids[c].count as u128) * (km.centroids[c].count as u128);
        if rep[c] == usize::MAX || num * repd[c].1 < repd[c].0 * den {
            rep[c] = i;
            repd[c] = (num, den);
        }
    }
    let mut weight = vec![0u64; nclus];
    for i in 0..n {
        weight[km.assignment[i] as usize] += iops(i);
    }

    // --- detailed simulation of the representatives ---
    let mut sim = Sim::new(mp, opts);
    for s in sinks {
        sim.attrib.add_sink(s);
    }
    let mut rows_acc: Vec<[u128; NUM_CATEGORIES]> = vec![[0; NUM_CATEGORIES]; mp.funcs.len()];
    let mut ctrs_acc = [0u128; NUM_COUNTERS];
    let mut sampled_ops = 0u64;
    // process representatives in interval order (deterministic trace)
    let mut order: Vec<usize> = (0..nclus).collect();
    order.sort_unstable_by_key(|&c| rep[c]);

    let detail = |sim: &mut Sim,
                  c: usize,
                  rows_acc: &mut Vec<[u128; NUM_CATEGORIES]>,
                  ctrs_acc: &mut [u128; NUM_COUNTERS],
                  sampled_ops: &mut u64|
     -> Result<(), SimTrap> {
        let r = rep[c];
        let before = attrib_snap(sim);
        // target the *recorded* boundary, not the nominal jittered
        // target: pass 1 stops at fused-run granularity, the detailed
        // sim at issue-group granularity, and a nominal target landing
        // inside a fused run would make the two disagree. `ends[r]` is
        // a group boundary, so the detailed sim lands on it exactly.
        let fin = sim.exec(p1.ends[r])?;
        debug_assert_eq!(sim.ops, p1.ends[r], "detail window missed its boundary");
        if let Exec::Done(ret) = fin {
            debug_assert_eq!(ret, p1.ret, "detail replay diverged from profile");
        }
        let rep_ops = iops(r);
        *sampled_ops += rep_ops;
        let w = weight[c];
        for (fi, row) in sim.attrib.matrix().rows().iter().enumerate() {
            for (k, cell) in row.iter().enumerate() {
                let d = cell - before.rows[fi][k];
                rows_acc[fi][k] += scale(d, w, rep_ops);
            }
        }
        let after = sim.attrib.counters().to_array();
        for k in 0..NUM_COUNTERS {
            ctrs_acc[k] += scale(after[k] - before.ctrs[k], w, rep_ops);
        }
        Ok(())
    };

    for &c in &order {
        let r = rep[c];
        let rep_start = if r == 0 { 0 } else { p1.ends[r - 1] };
        let replayed = match warmup {
            Warmup::Full => {
                // the warm pass-1 snapshot nearest the representative
                // carries continuously-warm timing structures; a short
                // warm replay closes the gap
                let (_, s, w) = p1
                    .snaps
                    .iter()
                    .filter(|(_, s, _)| s.ops <= rep_start)
                    .max_by_key(|(_, s, _)| s.ops)
                    .expect("snapshot 0 always qualifies");
                let mut fr = FRun::new(mp, &tabs, opts, s.clone(), false);
                let mut warm = w.clone().expect("warm profile keeps warm snapshots");
                fr.run_to::<true, false>(rep_start, &mut warm, None)
                    .map(|_| (fr, warm))
            }
            Warmup::Cold | Warmup::Ops(_) => {
                let warm_w = match warmup {
                    Warmup::Ops(w) => w,
                    _ => 0,
                };
                let warm_from = rep_start.saturating_sub(warm_w);
                // replay from the nearest snapshot: cold to the warmup
                // window, then warming fresh timing structures
                let (_, s, _) = p1
                    .snaps
                    .iter()
                    .filter(|(_, s, _)| s.ops <= warm_from)
                    .max_by_key(|(_, s, _)| s.ops)
                    .expect("snapshot 0 always qualifies");
                let mut fr = FRun::new(mp, &tabs, opts, s.clone(), false);
                let mut warm = WarmState::new(&opts.config, opts.predictor);
                fr.run_to::<false, false>(warm_from, &mut warm, None)
                    .and_then(|_| fr.run_to::<true, false>(rep_start, &mut warm, None))
                    .map(|_| (fr, warm))
            }
        };
        let Ok((fr, warm)) = replayed else {
            // cannot happen (same value stream as pass 1), but stay
            // honest: fall back to exact
            return run_exact_tagged(mp, args, opts, Vec::new(), None);
        };
        inject(&mut sim, fr.st, warm);
        detail(&mut sim, c, &mut rows_acc, &mut ctrs_acc, &mut sampled_ops)?;
    }

    // --- extrapolate: aggregate categories and the total are *derived*
    // from the scaled matrix, so the accounting identity holds exactly ---
    let mut rows: Vec<[u64; NUM_CATEGORIES]> = rows_acc
        .into_iter()
        .map(|r| {
            let mut o = [0u64; NUM_CATEGORIES];
            for (k, c) in r.into_iter().enumerate() {
                o[k] = u64::try_from(c).expect("extrapolated cycles overflow u64");
            }
            o
        })
        .collect();
    // Kernel is the one column pass 1 measured *exactly* (all kernel
    // charges are value-path events with fixed costs): substitute it
    // for the extrapolated estimate. Wild loads are BBV-invisible and
    // bursty within a phase, so this column otherwise carries the
    // largest per-category error.
    let kcol = Category::Kernel as usize;
    for (fi, row) in rows.iter_mut().enumerate() {
        row[kcol] = p1.kernel_rows[fi];
    }
    let mut acct_cells = [0u64; NUM_CATEGORIES];
    for row in &rows {
        for k in 0..NUM_CATEGORIES {
            acct_cells[k] += row[k];
        }
    }
    let func_matrix = FuncMatrix::from_rows(rows);
    let cycles = func_matrix.total();
    let mut ctrs = [0u64; NUM_COUNTERS];
    for k in 0..NUM_COUNTERS {
        ctrs[k] = u64::try_from(ctrs_acc[k]).expect("extrapolated counter overflow u64");
    }

    // --- heuristic error bound: op-weighted intra-cluster dispersion
    // (total-variation distance between each interval's cluster vector
    // and its centroid; identical-phase runs report ~0). The feature
    // dims contribute their cost-weighted rate dispersion, so CPI
    // heterogeneity the BBV can't see still widens the bound. ---
    let mut wdisp = 0.0f64;
    let mut wtot = 0.0f64;
    for i in 0..n {
        let c = &km.centroids[km.assignment[i] as usize];
        let mut l1 = 0.0f64;
        for j in 0..CVEC_DIM {
            l1 += (scaled[i][j] as f64 - c.sum[j] as f64 / c.count as f64).abs();
        }
        let w = iops(i) as f64;
        wdisp += w * l1 / (2.0 * BBV_SCALE as f64);
        wtot += w;
    }
    let est_error = 0.5 * wdisp / wtot;

    let info = SampleInfo {
        interval_len,
        intervals: n,
        clusters: nclus,
        total_ops: p1.total_ops,
        sampled_ops,
        est_error,
        fallback: false,
        phases: km.assignment,
    };
    let trace = {
        let attrib = std::mem::replace(&mut sim.attrib, Attribution::new(0));
        let (_, _, _, trace) = attrib.finish();
        trace
    };
    Ok(SimResult {
        checksum: checksum(&p1.output),
        output: p1.output,
        ret: p1.ret,
        cycles,
        acct: CycleAccounting::from_cells(acct_cells),
        counters: Counters::from_array(ctrs),
        func_matrix,
        trace,
        sample: Some(info),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random BBVs: `n` vectors drawn from `k`
    /// distinct phase shapes plus per-vector jitter.
    fn synth_bbvs(n: usize, phases: usize, seed: u64) -> Vec<[u64; BBV_DIM]> {
        (0..n)
            .map(|i| {
                let p = mix(seed ^ i as u64) as usize % phases;
                let mut v = [0u64; BBV_DIM];
                for (j, x) in v.iter_mut().enumerate() {
                    // phase base shape + small jitter
                    let base = mix((p as u64) << 32 | j as u64) % BBV_SCALE;
                    let jit = mix(seed ^ (i as u64) << 8 ^ j as u64) % (BBV_SCALE / 64);
                    *x = base + jit;
                }
                v
            })
            .collect()
    }

    #[test]
    fn kmeans_is_deterministic_for_a_fixed_seed() {
        let vecs = synth_bbvs(200, 5, 0xfeed);
        let a = kmeans(&vecs, 8, KMEANS_SEED);
        let b = kmeans(&vecs, 8, KMEANS_SEED);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids.len(), b.centroids.len());
        for (x, y) in a.centroids.iter().zip(&b.centroids) {
            assert_eq!(x.sum, y.sum);
            assert_eq!(x.count, y.count);
        }
    }

    #[test]
    fn kmeans_is_invariant_under_interval_permutation() {
        let vecs = synth_bbvs(150, 4, 0xabcd);
        let base = kmeans(&vecs, 6, KMEANS_SEED);
        // a deterministic permutation: reverse, then swap odd/even pairs
        let mut perm: Vec<usize> = (0..vecs.len()).rev().collect();
        for w in perm.chunks_exact_mut(2) {
            w.swap(0, 1);
        }
        let shuffled: Vec<[u64; BBV_DIM]> = perm.iter().map(|&i| vecs[i]).collect();
        let shuf = kmeans(&shuffled, 6, KMEANS_SEED);
        // initialization reads the sorted-deduped set, so the cluster
        // *indices* match too, not just the partition
        assert_eq!(shuf.centroids.len(), base.centroids.len());
        for (si, &oi) in perm.iter().enumerate() {
            assert_eq!(shuf.assignment[si], base.assignment[oi], "vector {oi}");
        }
    }

    #[test]
    fn kmeans_assigns_every_interval_exactly_once() {
        let vecs = synth_bbvs(97, 3, 0x1234);
        let km = kmeans(&vecs, 5, KMEANS_SEED);
        assert_eq!(km.assignment.len(), vecs.len());
        for &a in &km.assignment {
            assert!((a as usize) < km.centroids.len(), "dangling cluster {a}");
        }
    }

    #[test]
    fn kmeans_cluster_weights_sum_to_interval_count() {
        for (n, k, seed) in [(40usize, 3usize, 7u64), (200, 12, 8), (5, 9, 9)] {
            let vecs = synth_bbvs(n, 4, seed);
            let km = kmeans(&vecs, k, KMEANS_SEED);
            let total: u64 = km.centroids.iter().map(|c| c.count).sum();
            assert_eq!(total, n as u64, "n={n} k={k}");
            // and each centroid's count matches its assignment tally
            for (ci, c) in km.centroids.iter().enumerate() {
                let members = km.assignment.iter().filter(|&&a| a as usize == ci).count() as u64;
                assert_eq!(c.count, members, "cluster {ci}");
            }
        }
    }

    #[test]
    fn kmeans_clamps_k_to_the_distinct_vector_count() {
        let vecs = vec![[1u64; BBV_DIM]; 10];
        let km = kmeans(&vecs, 8, KMEANS_SEED);
        assert_eq!(km.centroids.len(), 1, "identical vectors are one phase");
        assert!(km.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn bbv_slots_stay_in_range() {
        for f in 0..40 {
            for b in (0..4000).step_by(37) {
                assert!(bbv_slot(f, b) < BBV_DIM);
            }
        }
    }

    #[test]
    fn scale_rounds_half_up_exactly() {
        assert_eq!(scale(10, 3, 2), 15);
        assert_eq!(scale(1, 1, 2), 1); // 0.5 rounds up
        assert_eq!(scale(1, 1, 3), 0); // 0.33 rounds down
        assert_eq!(
            scale(u64::MAX, u64::MAX, 1),
            u64::MAX as u128 * u64::MAX as u128
        );
    }
}
