//! Pluggable branch prediction: the predictor zoo, branch-trace capture,
//! and offline replay.
//!
//! The paper's branch study (Sec. 3.5, Fig. 7) measures one design
//! point; this module makes prediction a first-class axis. A
//! [`BranchPredictor`] is a conditional-direction predictor plus a
//! return-address stack, selected by a [`PredictorSpec`] on
//! [`SimOptions`](crate::SimOptions):
//!
//! * [`Gshare`] — the original PR-1 predictor, bit-identical as the
//!   default (enforced by test);
//! * [`Bimodal`] — per-address 2-bit counters, no history;
//! * [`Tage`] — a TAGE-class tagged-geometric predictor (bimodal base
//!   plus four partially-tagged tables over geometric history lengths);
//! * [`Oracle`] — an ideal predictor, the paper's "perfect prediction"
//!   headroom bound.
//!
//! Prediction and training are *split* ([`BranchPredictor::predict`]
//! then [`BranchPredictor::train`]) so the oracle and the replay
//! harness cannot double-count; predictors keep **no** counters — the
//! detailed sim counts through [`Attribution`](crate::Attribution), the
//! sampler's warm state keeps its own tally, and [`replay`] returns
//! [`PredStats`].
//!
//! Capture and replay: the detailed sim fans resolved control-flow
//! events ([`BranchRecord`]) out to [`EventSink::on_branch`]
//! (crate::EventSink) observers; [`BranchTraceSink`] streams them to any
//! writer in a compact 9-byte/record format (bounded, drops counted).
//! Because the simulator is in-order and never executes wrong-path
//! operations, the resolved branch stream is *predictor-independent*:
//! replaying a captured trace through any predictor reproduces that
//! predictor's live misprediction counts exactly (enforced by test).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

/// Default gshare geometry (the PR-1 design point).
pub const GSHARE_TABLE_BITS: u32 = 14;
/// Default gshare history length.
pub const GSHARE_HISTORY_BITS: u32 = 8;
/// Default bimodal geometry.
pub const BIMODAL_TABLE_BITS: u32 = 14;
/// Return-address-stack depth shared by every real predictor.
pub const RSB_DEPTH: usize = 32;

/// Which predictor a simulation uses, with its geometry — the
/// configuration axis threaded from `SimOptions` through the driver and
/// serve job keys down to `epicc --predictor`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredictorSpec {
    /// Global-history-xor-PC indexed 2-bit counters.
    Gshare {
        /// log2 of the counter-table size.
        table_bits: u32,
        /// Global-history length in bits.
        history_bits: u32,
    },
    /// Per-address 2-bit counters, no history.
    Bimodal {
        /// log2 of the counter-table size.
        table_bits: u32,
    },
    /// TAGE-class tagged-geometric predictor (fixed geometry).
    Tage,
    /// Ideal predictor: every direction and return correct.
    Oracle,
}

impl Default for PredictorSpec {
    fn default() -> PredictorSpec {
        PredictorSpec::Gshare {
            table_bits: GSHARE_TABLE_BITS,
            history_bits: GSHARE_HISTORY_BITS,
        }
    }
}

impl PredictorSpec {
    /// The full zoo at default geometries, default first — the rows of
    /// `epicc branches` and `epicc replay`.
    pub const ZOO: [PredictorSpec; 4] = [
        PredictorSpec::Gshare {
            table_bits: GSHARE_TABLE_BITS,
            history_bits: GSHARE_HISTORY_BITS,
        },
        PredictorSpec::Bimodal {
            table_bits: BIMODAL_TABLE_BITS,
        },
        PredictorSpec::Tage,
        PredictorSpec::Oracle,
    ];

    /// Short stable name (CLI value, metric label, JSON field).
    pub fn name(&self) -> &'static str {
        match self {
            PredictorSpec::Gshare { .. } => "gshare",
            PredictorSpec::Bimodal { .. } => "bimodal",
            PredictorSpec::Tage => "tage",
            PredictorSpec::Oracle => "oracle",
        }
    }

    /// Parse a CLI name (`gshare`, `bimodal`, `tage`, `oracle`) at the
    /// default geometry.
    pub fn parse(s: &str) -> Option<PredictorSpec> {
        match s.trim() {
            "gshare" => Some(PredictorSpec::default()),
            "bimodal" => Some(PredictorSpec::Bimodal {
                table_bits: BIMODAL_TABLE_BITS,
            }),
            "tage" => Some(PredictorSpec::Tage),
            "oracle" => Some(PredictorSpec::Oracle),
            _ => None,
        }
    }

    /// Canonical configuration bytes: a variant tag plus every geometry
    /// parameter. Two specs collide iff they are equal — the basis of
    /// both [`config_digest`](Self::config_digest) and the serve job-key
    /// canon.
    pub fn canon_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(9);
        match *self {
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            } => {
                b.push(0);
                b.extend_from_slice(&table_bits.to_le_bytes());
                b.extend_from_slice(&history_bits.to_le_bytes());
            }
            PredictorSpec::Bimodal { table_bits } => {
                b.push(1);
                b.extend_from_slice(&table_bits.to_le_bytes());
            }
            PredictorSpec::Tage => b.push(2),
            PredictorSpec::Oracle => b.push(3),
        }
        b
    }

    /// Deterministic 64-bit digest of the predictor configuration
    /// (FNV-1a over [`canon_bytes`](Self::canon_bytes)) — what cache
    /// keys and bench JSON carry.
    pub fn config_digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &byte in &self.canon_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// A conditional-direction predictor plus a return-address stack.
///
/// The contract is predict-then-train: for every resolved conditional
/// branch the simulator calls [`predict`](Self::predict) exactly once
/// and then [`train`](Self::train) exactly once with the same
/// `(addr, outcome)`. `predict` may stash provider state for the paired
/// `train` (TAGE does), which is why it takes `&mut self`.
///
/// Predictors are plain state machines: no counters live here (see the
/// module docs for who counts), and snapshot/restore for sampled-sim
/// warm-state injection is [`AnyPredictor::snapshot`] — a deep copy of
/// the full table/history/RAS state.
pub trait BranchPredictor {
    /// The spec this predictor was built from.
    fn spec(&self) -> PredictorSpec;

    /// Predict the direction of the conditional branch at `addr`.
    /// `outcome` is the resolved direction — visible only so the ideal
    /// [`Oracle`] is expressible; real predictors must ignore it.
    fn predict(&mut self, addr: u64, outcome: bool) -> bool;

    /// Train on the resolved direction of the branch just predicted.
    fn train(&mut self, addr: u64, outcome: bool);

    /// Record a call's return address.
    fn push_return(&mut self, ret_addr: u64);

    /// Predict a return target; `true` iff the prediction matches
    /// `actual`.
    fn pop_return(&mut self, actual: u64) -> bool;

    /// Deterministic digest of this predictor's configuration.
    fn config_digest(&self) -> u64 {
        self.spec().config_digest()
    }
}

/// The shared return-address stack: a ring — pushes past the depth drop
/// the oldest entry in O(1), so deep recursion overflows gracefully
/// (the outermost returns mispredict, the innermost stay correct).
#[derive(Clone, Debug)]
struct Rsb {
    buf: VecDeque<u64>,
}

impl Rsb {
    fn new() -> Rsb {
        Rsb {
            buf: VecDeque::with_capacity(RSB_DEPTH),
        }
    }

    fn push(&mut self, ret_addr: u64) {
        if self.buf.len() == RSB_DEPTH {
            self.buf.pop_front();
        }
        self.buf.push_back(ret_addr);
    }

    fn pop(&mut self, actual: u64) -> bool {
        match self.buf.pop_back() {
            Some(a) => a == actual,
            None => false,
        }
    }
}

/// Gshare with 2-bit saturating counters — the PR-1 predictor,
/// bit-identical under the split predict/train protocol (the merged
/// `branch()` it replaces read the counter before updating it, exactly
/// what predict-then-train does).
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    rsb: Rsb,
    table_bits: u32,
    history_bits: u32,
}

impl Gshare {
    /// A fresh predictor (counters weakly not-taken).
    pub fn new(table_bits: u32, history_bits: u32) -> Gshare {
        Gshare {
            table: vec![1u8; 1 << table_bits],
            history: 0,
            rsb: Rsb::new(),
            table_bits,
            history_bits,
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> usize {
        (((addr >> 4) ^ self.history) & ((1 << self.table_bits) - 1)) as usize
    }
}

impl BranchPredictor for Gshare {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec::Gshare {
            table_bits: self.table_bits,
            history_bits: self.history_bits,
        }
    }

    #[inline]
    fn predict(&mut self, addr: u64, _outcome: bool) -> bool {
        self.table[self.index(addr)] >= 2
    }

    #[inline]
    fn train(&mut self, addr: u64, outcome: bool) {
        let idx = self.index(addr);
        let ctr = &mut self.table[idx];
        if outcome {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | outcome as u64) & ((1 << self.history_bits) - 1);
    }

    #[inline]
    fn push_return(&mut self, ret_addr: u64) {
        self.rsb.push(ret_addr);
    }

    #[inline]
    fn pop_return(&mut self, actual: u64) -> bool {
        self.rsb.pop(actual)
    }
}

/// Per-address 2-bit counters, no history — the classic baseline the
/// history-aliasing adversary test defeats.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<u8>,
    rsb: Rsb,
    table_bits: u32,
}

impl Bimodal {
    /// A fresh predictor (counters weakly not-taken).
    pub fn new(table_bits: u32) -> Bimodal {
        Bimodal {
            table: vec![1u8; 1 << table_bits],
            rsb: Rsb::new(),
            table_bits,
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> usize {
        ((addr >> 4) & ((1 << self.table_bits) - 1)) as usize
    }
}

impl BranchPredictor for Bimodal {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec::Bimodal {
            table_bits: self.table_bits,
        }
    }

    #[inline]
    fn predict(&mut self, addr: u64, _outcome: bool) -> bool {
        self.table[self.index(addr)] >= 2
    }

    #[inline]
    fn train(&mut self, addr: u64, outcome: bool) {
        let idx = self.index(addr);
        let ctr = &mut self.table[idx];
        if outcome {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
    }

    #[inline]
    fn push_return(&mut self, ret_addr: u64) {
        self.rsb.push(ret_addr);
    }

    #[inline]
    fn pop_return(&mut self, actual: u64) -> bool {
        self.rsb.pop(actual)
    }
}

// TAGE geometry: four partially-tagged tables over geometric history
// lengths on top of a bimodal base. Small by real-hardware standards but
// enough to beat gshare on long-period patterns.
const TAGE_TABLES: usize = 4;
const TAGE_HIST: [u32; TAGE_TABLES] = [5, 11, 23, 44];
const TAGE_INDEX_BITS: u32 = 10;
const TAGE_TAG_BITS: u32 = 10;
const TAGE_BASE_BITS: u32 = 12;
/// Graceful aging: every this many trains, one useful-bit generation is
/// cleared so dead entries become reclaimable.
const TAGE_RESET_PERIOD: u64 = 1 << 18;

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    tag: u16,
    /// 3-bit signed-style counter, 0..=7; >= 4 predicts taken.
    ctr: u8,
    /// 2-bit usefulness.
    useful: u8,
}

/// A TAGE-class tagged-geometric predictor: provider = longest-history
/// tag match, allocation on misprediction into a longer table.
#[derive(Clone, Debug)]
pub struct Tage {
    base: Vec<u8>,
    tables: [Vec<TageEntry>; TAGE_TABLES],
    ghist: u64,
    rsb: Rsb,
    trains: u64,
    // provider state stashed by `predict` for the paired `train`
    ctx: TageCtx,
}

#[derive(Clone, Copy, Debug, Default)]
struct TageCtx {
    /// Matching table (TAGE_TABLES = base) and its index.
    provider: usize,
    index: [usize; TAGE_TABLES],
    tag: [u16; TAGE_TABLES],
    pred: bool,
    altpred: bool,
}

impl Tage {
    /// A fresh predictor.
    pub fn new() -> Tage {
        Tage {
            base: vec![1u8; 1 << TAGE_BASE_BITS],
            tables: std::array::from_fn(|_| vec![TageEntry::default(); 1 << TAGE_INDEX_BITS]),
            ghist: 0,
            rsb: Rsb::new(),
            trains: 0,
            ctx: TageCtx::default(),
        }
    }

    #[inline]
    fn mix(x: u64) -> u64 {
        // splitmix64 finalizer: cheap, deterministic, well-spread
        let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn folded(&self, table: usize) -> u64 {
        let bits = TAGE_HIST[table];
        let h = if bits >= 64 {
            self.ghist
        } else {
            self.ghist & ((1u64 << bits) - 1)
        };
        Self::mix(h ^ ((table as u64) << 60))
    }

    #[inline]
    fn base_index(addr: u64) -> usize {
        ((addr >> 4) & ((1 << TAGE_BASE_BITS) - 1)) as usize
    }
}

impl Default for Tage {
    fn default() -> Tage {
        Tage::new()
    }
}

impl BranchPredictor for Tage {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec::Tage
    }

    fn predict(&mut self, addr: u64, _outcome: bool) -> bool {
        let pc = Self::mix(addr >> 4);
        let mut ctx = TageCtx {
            provider: TAGE_TABLES,
            ..TageCtx::default()
        };
        for t in 0..TAGE_TABLES {
            let f = self.folded(t);
            ctx.index[t] = ((pc ^ f) & ((1 << TAGE_INDEX_BITS) - 1)) as usize;
            ctx.tag[t] =
                (((pc >> TAGE_INDEX_BITS) ^ (f >> 13)) & ((1 << TAGE_TAG_BITS) - 1)) as u16;
        }
        let base_pred = self.base[Self::base_index(addr)] >= 2;
        let mut pred = base_pred;
        let mut altpred = base_pred;
        // longest history wins; the runner-up is the alternate
        for t in (0..TAGE_TABLES).rev() {
            let e = &self.tables[t][ctx.index[t]];
            if e.tag == ctx.tag[t] {
                if ctx.provider == TAGE_TABLES {
                    ctx.provider = t;
                    pred = e.ctr >= 4;
                } else {
                    altpred = e.ctr >= 4;
                    break;
                }
            }
        }
        if ctx.provider == TAGE_TABLES {
            pred = base_pred;
        }
        ctx.pred = pred;
        ctx.altpred = altpred;
        self.ctx = ctx;
        pred
    }

    fn train(&mut self, addr: u64, outcome: bool) {
        let ctx = self.ctx;
        self.trains += 1;
        if self.trains % TAGE_RESET_PERIOD == 0 {
            for t in &mut self.tables {
                for e in t.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
        if ctx.provider < TAGE_TABLES {
            let e = &mut self.tables[ctx.provider][ctx.index[ctx.provider]];
            if outcome {
                e.ctr = (e.ctr + 1).min(7);
            } else {
                e.ctr = e.ctr.saturating_sub(1);
            }
            if ctx.pred != ctx.altpred {
                if ctx.pred == outcome {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        } else {
            let b = &mut self.base[Self::base_index(addr)];
            if outcome {
                *b = (*b + 1).min(3);
            } else {
                *b = b.saturating_sub(1);
            }
        }
        // on a misprediction, try to allocate one entry in a longer table
        if ctx.pred != outcome {
            let start = if ctx.provider < TAGE_TABLES {
                ctx.provider + 1
            } else {
                0
            };
            let mut allocated = false;
            for t in start..TAGE_TABLES {
                let e = &mut self.tables[t][ctx.index[t]];
                if e.useful == 0 {
                    e.tag = ctx.tag[t];
                    e.ctr = if outcome { 4 } else { 3 };
                    e.useful = 0;
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for t in start..TAGE_TABLES {
                    let e = &mut self.tables[t][ctx.index[t]];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        self.ghist = (self.ghist << 1) | outcome as u64;
    }

    #[inline]
    fn push_return(&mut self, ret_addr: u64) {
        self.rsb.push(ret_addr);
    }

    #[inline]
    fn pop_return(&mut self, actual: u64) -> bool {
        self.rsb.pop(actual)
    }
}

/// The ideal predictor: every direction and every return is correct.
/// Upper-bounds how much of the Fig. 5 `br_mispredict_flush` category a
/// better real predictor could recover.
#[derive(Clone, Debug, Default)]
pub struct Oracle;

impl BranchPredictor for Oracle {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec::Oracle
    }

    #[inline]
    fn predict(&mut self, _addr: u64, outcome: bool) -> bool {
        outcome
    }

    #[inline]
    fn train(&mut self, _addr: u64, _outcome: bool) {}

    #[inline]
    fn push_return(&mut self, _ret_addr: u64) {}

    #[inline]
    fn pop_return(&mut self, _actual: u64) -> bool {
        true
    }
}

/// The closed predictor zoo as one `Clone`-able value: enum dispatch
/// keeps the detailed sim's hot path monomorphized per variant (one
/// match, no vtable), while [`BranchPredictor`] is implemented for the
/// enum too so trait-object surfaces (replay, extensions) work
/// uniformly.
#[derive(Clone, Debug)]
pub enum AnyPredictor {
    /// Gshare (the default).
    Gshare(Gshare),
    /// Bimodal.
    Bimodal(Bimodal),
    /// TAGE-class.
    Tage(Tage),
    /// Ideal.
    Oracle(Oracle),
}

impl AnyPredictor {
    /// Build the predictor a spec describes.
    pub fn from_spec(spec: PredictorSpec) -> AnyPredictor {
        match spec {
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            } => AnyPredictor::Gshare(Gshare::new(table_bits, history_bits)),
            PredictorSpec::Bimodal { table_bits } => {
                AnyPredictor::Bimodal(Bimodal::new(table_bits))
            }
            PredictorSpec::Tage => AnyPredictor::Tage(Tage::new()),
            PredictorSpec::Oracle => AnyPredictor::Oracle(Oracle),
        }
    }

    /// Snapshot the full predictor state (tables, history, RAS) — what
    /// the sampler clones at interval boundaries and later injects into
    /// a detailed sim as warm state.
    pub fn snapshot(&self) -> AnyPredictor {
        self.clone()
    }

    /// Predict + train on one resolved conditional branch; returns
    /// whether the prediction was correct. The detailed sim's hot-path
    /// entry point.
    #[inline]
    pub fn observe(&mut self, addr: u64, outcome: bool) -> bool {
        let predicted = self.predict(addr, outcome);
        self.train(addr, outcome);
        predicted == outcome
    }
}

impl Default for AnyPredictor {
    fn default() -> AnyPredictor {
        AnyPredictor::from_spec(PredictorSpec::default())
    }
}

macro_rules! delegate {
    ($self:ident, $p:ident => $e:expr) => {
        match $self {
            AnyPredictor::Gshare($p) => $e,
            AnyPredictor::Bimodal($p) => $e,
            AnyPredictor::Tage($p) => $e,
            AnyPredictor::Oracle($p) => $e,
        }
    };
}

impl BranchPredictor for AnyPredictor {
    fn spec(&self) -> PredictorSpec {
        delegate!(self, p => p.spec())
    }

    #[inline]
    fn predict(&mut self, addr: u64, outcome: bool) -> bool {
        delegate!(self, p => p.predict(addr, outcome))
    }

    #[inline]
    fn train(&mut self, addr: u64, outcome: bool) {
        delegate!(self, p => p.train(addr, outcome))
    }

    #[inline]
    fn push_return(&mut self, ret_addr: u64) {
        delegate!(self, p => p.push_return(ret_addr))
    }

    #[inline]
    fn pop_return(&mut self, actual: u64) -> bool {
        delegate!(self, p => p.pop_return(actual))
    }
}

/// One resolved control-flow event, as the in-order sim retires it —
/// predictor-agnostic by construction (no prediction outcome is
/// recorded, only what the program did), which is what makes a captured
/// trace replayable through any predictor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchRecord {
    /// A conditional branch at `addr` resolved `taken`.
    Cond {
        /// Bundle address of the branch.
        addr: u64,
        /// Resolved direction.
        taken: bool,
    },
    /// A call pushed `ret_addr` as its return target.
    Call {
        /// The architected return address.
        ret_addr: u64,
    },
    /// A return resolved to `actual`.
    Ret {
        /// The architected return target.
        actual: u64,
    },
}

/// Branch-trace file magic.
pub const TRACE_MAGIC: &[u8; 4] = b"EPBT";
/// Branch-trace format version.
pub const TRACE_VERSION: u32 = 1;

impl BranchRecord {
    /// Encoded size: one kind byte + a little-endian u64 payload.
    pub const WIRE_BYTES: usize = 9;

    fn encode(&self, buf: &mut [u8; Self::WIRE_BYTES]) {
        let (kind, payload) = match *self {
            BranchRecord::Cond { addr, taken } => (taken as u8, addr),
            BranchRecord::Call { ret_addr } => (2, ret_addr),
            BranchRecord::Ret { actual } => (3, actual),
        };
        buf[0] = kind;
        buf[1..].copy_from_slice(&payload.to_le_bytes());
    }

    fn decode(buf: &[u8; Self::WIRE_BYTES]) -> io::Result<BranchRecord> {
        let payload = u64::from_le_bytes(buf[1..].try_into().expect("8 payload bytes"));
        match buf[0] {
            0 => Ok(BranchRecord::Cond {
                addr: payload,
                taken: false,
            }),
            1 => Ok(BranchRecord::Cond {
                addr: payload,
                taken: true,
            }),
            2 => Ok(BranchRecord::Call { ret_addr: payload }),
            3 => Ok(BranchRecord::Ret { actual: payload }),
            k => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("branch trace: unknown record kind {k}"),
            )),
        }
    }
}

/// Totals a [`BranchTraceSink`] publishes when it is dropped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchTraceStats {
    /// Records written to the underlying writer.
    pub recorded: u64,
    /// Records dropped because the capture bound was reached.
    pub dropped: u64,
}

/// An [`EventSink`](crate::EventSink) that streams [`BranchRecord`]s to
/// a writer as they retire: a fixed header (`EPBT`, version) followed by
/// 9-byte records. Capture is bounded — records past `cap` are counted
/// as dropped, never buffered — so tracing a long run cannot exhaust
/// memory or disk behind the user's back.
pub struct BranchTraceSink<W: Write> {
    out: io::BufWriter<W>,
    cap: u64,
    stats: BranchTraceStats,
    shared: Arc<Mutex<BranchTraceStats>>,
}

impl<W: Write> BranchTraceSink<W> {
    /// Capture up to `cap` records into `out` (header written
    /// immediately). The returned handle holds the final
    /// [`BranchTraceStats`] after the sink is dropped.
    ///
    /// # Errors
    /// Header write failure.
    pub fn new(out: W, cap: u64) -> io::Result<(BranchTraceSink<W>, Arc<Mutex<BranchTraceStats>>)> {
        let mut out = io::BufWriter::new(out);
        out.write_all(TRACE_MAGIC)?;
        out.write_all(&TRACE_VERSION.to_le_bytes())?;
        let shared = Arc::new(Mutex::new(BranchTraceStats::default()));
        Ok((
            BranchTraceSink {
                out,
                cap,
                stats: BranchTraceStats::default(),
                shared: shared.clone(),
            },
            shared,
        ))
    }

    /// Record one resolved branch (drops past the bound).
    pub fn record(&mut self, rec: &BranchRecord) {
        if self.stats.recorded >= self.cap {
            self.stats.dropped += 1;
            return;
        }
        let mut buf = [0u8; BranchRecord::WIRE_BYTES];
        rec.encode(&mut buf);
        // a full disk surfaces at flush time; per-record errors are not
        // actionable mid-simulation
        let _ = self.out.write_all(&buf);
        self.stats.recorded += 1;
    }
}

impl<W: Write> Drop for BranchTraceSink<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
        *self.shared.lock().expect("branch trace stats") = self.stats;
    }
}

impl<W: Write> crate::EventSink for BranchTraceSink<W> {
    fn on_charge(&mut self, _rec: &crate::ChargeRecord) {}

    fn on_branch(&mut self, rec: &BranchRecord) {
        self.record(rec);
    }
}

/// Decode a branch trace produced by [`BranchTraceSink`].
///
/// # Errors
/// Bad magic/version, a truncated record, or an unknown record kind.
pub fn read_branch_trace<R: Read>(r: &mut R) -> io::Result<Vec<BranchRecord>> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "branch trace: short header"))?;
    if &header[..4] != TRACE_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "branch trace: bad magic",
        ));
    }
    let version = u32::from_le_bytes(header[4..].try_into().expect("4 version bytes"));
    if version != TRACE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("branch trace: unsupported version {version}"),
        ));
    }
    let mut records = Vec::new();
    let mut buf = [0u8; BranchRecord::WIRE_BYTES];
    loop {
        match r.read_exact(&mut buf) {
            Ok(()) => records.push(BranchRecord::decode(&buf)?),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
    }
    Ok(records)
}

/// Replay statistics: what [`replay`] counts (and the live sim's
/// [`Counters`](crate::Counters) mirror for conditional branches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredStats {
    /// Conditional-branch predictions made.
    pub predictions: u64,
    /// Conditional-branch mispredictions.
    pub mispredictions: u64,
    /// Returns predicted.
    pub returns: u64,
    /// Returns the RAS got wrong.
    pub return_mispredictions: u64,
}

impl PredStats {
    /// Conditional misprediction rate in percent (0 when no branches).
    pub fn mispredict_pct(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64 * 100.0
        }
    }
}

/// Drive a captured branch trace through a predictor — the offline
/// half of the capture/replay pair: because the trace is
/// predictor-independent (see [`BranchRecord`]), the returned
/// conditional counts equal what a live simulation with this predictor
/// would produce (enforced by test against the detailed sim).
pub fn replay(records: &[BranchRecord], pred: &mut dyn BranchPredictor) -> PredStats {
    let mut stats = PredStats::default();
    for rec in records {
        match *rec {
            BranchRecord::Cond { addr, taken } => {
                stats.predictions += 1;
                if pred.predict(addr, taken) != taken {
                    stats.mispredictions += 1;
                }
                pred.train(addr, taken);
            }
            BranchRecord::Call { ret_addr } => pred.push_return(ret_addr),
            BranchRecord::Ret { actual } => {
                stats.returns += 1;
                if !pred.pop_return(actual) {
                    stats.return_mispredictions += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-refactor merged predict+train gshare, kept verbatim as
    /// the bit-identity reference for the split protocol.
    struct LegacyGshare {
        table: Vec<u8>,
        history: u64,
    }

    impl LegacyGshare {
        fn new() -> LegacyGshare {
            LegacyGshare {
                table: vec![1u8; 1 << GSHARE_TABLE_BITS],
                history: 0,
            }
        }

        fn branch(&mut self, addr: u64, taken: bool) -> bool {
            let idx = (((addr >> 4) ^ self.history) & ((1 << GSHARE_TABLE_BITS) - 1)) as usize;
            let ctr = &mut self.table[idx];
            let predicted = *ctr >= 2;
            if taken {
                *ctr = (*ctr + 1).min(3);
            } else {
                *ctr = ctr.saturating_sub(1);
            }
            self.history = ((self.history << 1) | taken as u64) & ((1 << GSHARE_HISTORY_BITS) - 1);
            predicted == taken
        }
    }

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed
    }

    #[test]
    fn split_gshare_is_bit_identical_to_the_merged_original() {
        let mut legacy = LegacyGshare::new();
        let mut split = Gshare::new(GSHARE_TABLE_BITS, GSHARE_HISTORY_BITS);
        let mut seed = 7u64;
        for i in 0..200_000u64 {
            // a mix of hot branches, cold branches, and varied outcomes
            let r = lcg(&mut seed);
            let addr = 0x400000 + ((r >> 8) & 0x3fff) * 16 + (i % 3) * 16;
            let taken = match i % 5 {
                0 => true,
                1 => false,
                _ => (r >> 33) & 1 == 1,
            };
            let want = legacy.branch(addr, taken);
            let got = split.predict(addr, taken) == taken;
            split.train(addr, taken);
            assert_eq!(want, got, "diverged at step {i}");
        }
        assert_eq!(legacy.history, split.history, "history state diverged");
        assert_eq!(legacy.table, split.table, "table state diverged");
    }

    fn mispredicts(pred: &mut dyn BranchPredictor, stream: &[(u64, bool)]) -> u64 {
        let mut wrong = 0;
        for &(addr, taken) in stream {
            if pred.predict(addr, taken) != taken {
                wrong += 1;
            }
            pred.train(addr, taken);
        }
        wrong
    }

    #[test]
    fn every_real_predictor_learns_a_biased_branch() {
        for spec in PredictorSpec::ZOO {
            let mut p = AnyPredictor::from_spec(spec);
            let stream: Vec<(u64, bool)> = (0..200).map(|_| (0x400040, true)).collect();
            let wrong = mispredicts(&mut p, &stream);
            assert!(
                wrong <= 10,
                "{}: {wrong} wrong on always-taken",
                spec.name()
            );
        }
    }

    #[test]
    fn loop_exit_pattern_favors_history_predictors() {
        // a 16-iteration loop: 15 taken then one exit, repeated
        let stream: Vec<(u64, bool)> = (0..4096).map(|i| (0x400080, i % 16 != 15)).collect();
        let late = &stream[2048..];
        let mut bimodal = AnyPredictor::from_spec(PredictorSpec::parse("bimodal").unwrap());
        let mut tage = AnyPredictor::from_spec(PredictorSpec::Tage);
        mispredicts(&mut bimodal, &stream[..2048]);
        mispredicts(&mut tage, &stream[..2048]);
        let bimodal_wrong = mispredicts(&mut bimodal, late);
        let tage_wrong = mispredicts(&mut tage, late);
        // bimodal saturates taken and eats every exit: 1 in 16
        assert!(bimodal_wrong >= 100, "bimodal: {bimodal_wrong}");
        assert!(
            tage_wrong * 4 < bimodal_wrong,
            "tage {tage_wrong} vs bimodal {bimodal_wrong}"
        );
    }

    #[test]
    fn history_aliasing_adversary_defeats_bimodal_but_not_tage() {
        // period-4 pattern TTNN: 50/50 overall, so a per-address 2-bit
        // counter oscillates, while any history predictor locks on
        let stream: Vec<(u64, bool)> = (0..4096).map(|i| (0x4000c0, i % 4 < 2)).collect();
        let late = &stream[2048..];
        let mut bimodal = AnyPredictor::from_spec(PredictorSpec::parse("bimodal").unwrap());
        let mut tage = AnyPredictor::from_spec(PredictorSpec::Tage);
        mispredicts(&mut bimodal, &stream[..2048]);
        mispredicts(&mut tage, &stream[..2048]);
        let bimodal_wrong = mispredicts(&mut bimodal, late);
        let tage_wrong = mispredicts(&mut tage, late);
        assert!(
            bimodal_wrong >= late.len() as u64 / 4,
            "bimodal must fail the adversary: {bimodal_wrong}"
        );
        assert!(
            tage_wrong <= 20,
            "tage must learn the pattern: {tage_wrong}"
        );
    }

    #[test]
    fn oracle_never_mispredicts() {
        let mut p = AnyPredictor::from_spec(PredictorSpec::Oracle);
        let mut seed = 3u64;
        for _ in 0..1000 {
            let r = lcg(&mut seed);
            assert!(p.observe(r & 0xffff0, (r >> 40) & 1 == 1));
        }
        assert!(p.pop_return(0xdead));
    }

    #[test]
    fn random_branches_mispredict_often_on_every_real_predictor() {
        for spec in [
            PredictorSpec::default(),
            PredictorSpec::parse("bimodal").unwrap(),
            PredictorSpec::Tage,
        ] {
            let mut p = AnyPredictor::from_spec(spec);
            let mut seed = 42u64;
            let stream: Vec<(u64, bool)> = (0..1000)
                .map(|_| (0x4000c0, (lcg(&mut seed) >> 40) & 1 == 1))
                .collect();
            let wrong = mispredicts(&mut p, &stream);
            assert!(
                wrong > 250,
                "{}: random stream must mispredict: {wrong}",
                spec.name()
            );
        }
    }

    #[test]
    fn return_stack_matches_nested_calls() {
        let mut p = AnyPredictor::default();
        p.push_return(100);
        p.push_return(200);
        assert!(p.pop_return(200));
        assert!(p.pop_return(100));
        assert!(!p.pop_return(1)); // empty
    }

    #[test]
    fn ras_overflow_drops_the_oldest_frames() {
        let mut p = AnyPredictor::default();
        let depth = RSB_DEPTH as u64;
        // push depth + 4 frames: the first 4 fall off the ring
        for i in 0..depth + 4 {
            p.push_return(1000 + i);
        }
        // the newest `depth` returns predict correctly...
        for i in (4..depth + 4).rev() {
            assert!(p.pop_return(1000 + i), "frame {i} should survive");
        }
        // ...the overflowed outermost frames mispredict (stack empty)
        for i in (0..4).rev() {
            assert!(!p.pop_return(1000 + i), "frame {i} was dropped");
        }
    }

    #[test]
    fn specs_parse_name_and_digest_consistently() {
        for spec in PredictorSpec::ZOO {
            assert_eq!(PredictorSpec::parse(spec.name()), Some(spec));
        }
        assert_eq!(
            PredictorSpec::parse("gshare"),
            Some(PredictorSpec::default())
        );
        assert_eq!(PredictorSpec::parse("nonesuch"), None);
        // digests separate every zoo member and every geometry change
        let mut digests: Vec<u64> = PredictorSpec::ZOO
            .iter()
            .map(|s| s.config_digest())
            .collect();
        digests.push(
            PredictorSpec::Gshare {
                table_bits: 12,
                history_bits: GSHARE_HISTORY_BITS,
            }
            .config_digest(),
        );
        digests.push(
            PredictorSpec::Gshare {
                table_bits: GSHARE_TABLE_BITS,
                history_bits: 12,
            }
            .config_digest(),
        );
        let n = digests.len();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), n, "config digests must not collide");
    }

    #[test]
    fn branch_trace_round_trips_and_bounds_capture() {
        let records = vec![
            BranchRecord::Cond {
                addr: 0x400040,
                taken: true,
            },
            BranchRecord::Cond {
                addr: 0x400080,
                taken: false,
            },
            BranchRecord::Call { ret_addr: 0x4000f0 },
            BranchRecord::Ret { actual: 0x4000f0 },
        ];
        let mut buf = Vec::new();
        {
            let (mut sink, stats) = BranchTraceSink::new(&mut buf, 3).unwrap();
            for r in &records {
                sink.record(r);
            }
            drop(sink);
            let s = *stats.lock().unwrap();
            assert_eq!(
                s,
                BranchTraceStats {
                    recorded: 3,
                    dropped: 1
                }
            );
        }
        let got = read_branch_trace(&mut &buf[..]).unwrap();
        assert_eq!(got, records[..3]);
        // corruption is rejected, not misread
        assert!(read_branch_trace(&mut &buf[..7]).is_err());
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_branch_trace(&mut &bad[..]).is_err());
        let mut bad_kind = buf.clone();
        bad_kind[8] = 9;
        assert!(read_branch_trace(&mut &bad_kind[..]).is_err());
    }

    #[test]
    fn replay_matches_a_hand_driven_predictor() {
        // build a deterministic trace, then check replay against driving
        // a fresh predictor of the same spec by hand
        let mut seed = 11u64;
        let mut records = Vec::new();
        for i in 0..5000u64 {
            let r = lcg(&mut seed);
            match r % 8 {
                6 => records.push(BranchRecord::Call {
                    ret_addr: 0x500000 + (i << 4),
                }),
                7 => records.push(BranchRecord::Ret {
                    actual: 0x500000 + ((r >> 20) & 0xfff0),
                }),
                _ => records.push(BranchRecord::Cond {
                    addr: 0x400000 + ((r >> 8) & 0xff0),
                    taken: (r >> 41) & 1 == 1,
                }),
            }
        }
        for spec in PredictorSpec::ZOO {
            let mut replayed = AnyPredictor::from_spec(spec);
            let stats = replay(&records, &mut replayed);
            let mut hand = AnyPredictor::from_spec(spec);
            let mut want = PredStats::default();
            for rec in &records {
                match *rec {
                    BranchRecord::Cond { addr, taken } => {
                        want.predictions += 1;
                        if !hand.observe(addr, taken) {
                            want.mispredictions += 1;
                        }
                    }
                    BranchRecord::Call { ret_addr } => hand.push_return(ret_addr),
                    BranchRecord::Ret { actual } => {
                        want.returns += 1;
                        if !hand.pop_return(actual) {
                            want.return_mispredictions += 1;
                        }
                    }
                }
            }
            assert_eq!(stats, want, "{}", spec.name());
            if spec == PredictorSpec::Oracle {
                assert_eq!(stats.mispredictions, 0);
                assert_eq!(stats.return_mispredictions, 0);
            } else {
                assert!(stats.mispredictions > 0, "{}", spec.name());
            }
        }
    }
}
