//! Register stack engine: call frames allocate fresh register windows; when
//! resident windows exceed the physical stacked registers, the RSE spills
//! the deepest frames to memory and fills them back on return — the
//! paper's Sec. 4.4 cost of register-hungry ILP code (crafty, parser).

/// RSE state and counters.
#[derive(Clone, Debug)]
pub struct Rse {
    frames: Vec<(u32, bool)>, // (size, spilled)
    resident: u32,
    capacity: u32,
    cycles_per_reg: u64,
    /// Registers spilled.
    pub regs_spilled: u64,
    /// Registers filled.
    pub regs_filled: u64,
    /// Total stall cycles charged.
    pub stall_cycles: u64,
}

impl Rse {
    /// An RSE with `capacity` physical stacked registers.
    pub fn new(capacity: u32, cycles_per_reg: u64) -> Rse {
        Rse {
            frames: Vec::new(),
            resident: 0,
            capacity,
            cycles_per_reg,
            regs_spilled: 0,
            regs_filled: 0,
            stall_cycles: 0,
        }
    }

    /// Allocate a window of `n` registers for a call. Returns
    /// `(registers spilled, stall cycles)` so the caller can report the
    /// traffic as one attribution event.
    pub fn call(&mut self, n: u32) -> (u64, u64) {
        let n = n.min(self.capacity);
        self.frames.push((n, false));
        self.resident += n;
        let mut moved = 0;
        if self.resident > self.capacity {
            // spill deepest unspilled frames until we fit
            for f in self.frames.iter_mut() {
                if self.resident <= self.capacity {
                    break;
                }
                if !f.1 {
                    f.1 = true;
                    self.resident -= f.0;
                    self.regs_spilled += f.0 as u64;
                    moved += f.0 as u64;
                }
            }
        }
        let stall = moved * self.cycles_per_reg;
        self.stall_cycles += stall;
        (moved, stall)
    }

    /// Release the top window on return. Returns `(registers filled,
    /// stall cycles)`.
    pub fn ret(&mut self) -> (u64, u64) {
        let Some((size, spilled)) = self.frames.pop() else {
            return (0, 0);
        };
        if !spilled {
            self.resident -= size;
        }
        let mut moved = 0;
        // the caller's frame must be resident again
        if let Some(last) = self.frames.last_mut() {
            if last.1 {
                last.1 = false;
                self.resident += last.0;
                self.regs_filled += last.0 as u64;
                moved += last.0 as u64;
            }
        }
        let stall = moved * self.cycles_per_reg;
        self.stall_cycles += stall;
        (moved, stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cost_under_capacity() {
        let mut r = Rse::new(96, 2);
        assert_eq!(r.call(30), (0, 0));
        assert_eq!(r.call(30), (0, 0));
        assert_eq!(r.ret(), (0, 0));
        assert_eq!(r.ret(), (0, 0));
        assert_eq!(r.stall_cycles, 0);
    }

    #[test]
    fn deep_stack_spills_and_fills() {
        let mut r = Rse::new(96, 2);
        // 4 frames of 30 regs: 120 > 96, so the deepest spills
        assert_eq!(r.call(30), (0, 0));
        assert_eq!(r.call(30), (0, 0));
        assert_eq!(r.call(30), (0, 0));
        let (moved, spill) = r.call(30);
        assert_eq!((moved, spill), (30, 60)); // one 30-reg frame at 2 cy/reg
        assert_eq!(r.regs_spilled, 30);
        // returning down refills the spilled caller when it becomes top-1
        assert_eq!(r.ret(), (0, 0)); // pop frame 4; frame 3 resident
        assert_eq!(r.ret(), (0, 0)); // pop frame 3; frame 2 resident
        let (moved, fill) = r.ret(); // pop frame 2; frame 1 was spilled
        assert_eq!((moved, fill), (30, 60));
        assert_eq!(r.regs_filled, 30);
    }

    #[test]
    fn big_windows_cost_more() {
        let mut small = Rse::new(96, 2);
        let mut big = Rse::new(96, 2);
        for _ in 0..8 {
            small.call(12);
            big.call(40);
        }
        for _ in 0..8 {
            small.ret();
            big.ret();
        }
        assert!(big.stall_cycles > small.stall_cycles);
        assert_eq!(small.stall_cycles, 0);
    }
}
