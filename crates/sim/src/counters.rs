//! Cycle accounting (paper Fig. 5's nine categories) and performance
//! counters (the Pfmon-style measurements every experiment consumes).

/// The paper's Fig. 5 cycle categories.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Issue cycles (the compiler's plan executing without stall).
    Unstalled,
    /// Scoreboard stalls on F-unit producers (multiply/divide here).
    FloatScoreboard,
    /// Integer scoreboard + exception flush + other small contributors.
    Misc,
    /// Scoreboard stalls on loads (data-cache misses).
    IntLoadBubble,
    /// Memory-pipeline stalls: store-forwarding conflicts, DTLB walks.
    Micropipe,
    /// Instruction fetch starvation (I-cache misses past the buffer).
    FrontEndBubble,
    /// Branch misprediction flushes.
    BrMispredictFlush,
    /// Register stack engine spills/fills.
    RegisterStack,
    /// Kernel time: wild-load page-table queries, syscalls, NaT page.
    Kernel,
}

/// All categories, in Fig. 5's stacking order.
pub const CATEGORIES: [Category; 9] = [
    Category::Unstalled,
    Category::FloatScoreboard,
    Category::Misc,
    Category::IntLoadBubble,
    Category::Micropipe,
    Category::FrontEndBubble,
    Category::BrMispredictFlush,
    Category::RegisterStack,
    Category::Kernel,
];

/// Cycle totals per category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CycleAccounting {
    /// Issue cycles.
    pub unstalled: u64,
    /// F-unit scoreboard stalls.
    pub float_scoreboard: u64,
    /// Other scoreboard + exception flush.
    pub misc: u64,
    /// Load-miss scoreboard stalls.
    pub int_load_bubble: u64,
    /// Memory-pipeline (micropipe) stalls.
    pub micropipe: u64,
    /// Fetch starvation.
    pub front_end_bubble: u64,
    /// Misprediction flushes.
    pub br_mispredict_flush: u64,
    /// RSE activity.
    pub register_stack: u64,
    /// Kernel cycles.
    pub kernel: u64,
}

impl CycleAccounting {
    /// Add cycles to a category.
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        *self.slot(cat) += cycles;
    }

    fn slot(&mut self, cat: Category) -> &mut u64 {
        match cat {
            Category::Unstalled => &mut self.unstalled,
            Category::FloatScoreboard => &mut self.float_scoreboard,
            Category::Misc => &mut self.misc,
            Category::IntLoadBubble => &mut self.int_load_bubble,
            Category::Micropipe => &mut self.micropipe,
            Category::FrontEndBubble => &mut self.front_end_bubble,
            Category::BrMispredictFlush => &mut self.br_mispredict_flush,
            Category::RegisterStack => &mut self.register_stack,
            Category::Kernel => &mut self.kernel,
        }
    }

    /// Read a category.
    pub fn get(&self, cat: Category) -> u64 {
        match cat {
            Category::Unstalled => self.unstalled,
            Category::FloatScoreboard => self.float_scoreboard,
            Category::Misc => self.misc,
            Category::IntLoadBubble => self.int_load_bubble,
            Category::Micropipe => self.micropipe,
            Category::FrontEndBubble => self.front_end_bubble,
            Category::BrMispredictFlush => self.br_mispredict_flush,
            Category::RegisterStack => self.register_stack,
            Category::Kernel => self.kernel,
        }
    }

    /// Total execution cycles.
    pub fn total(&self) -> u64 {
        CATEGORIES.iter().map(|c| self.get(*c)).sum()
    }

    /// "Planned" cycles in the paper's Fig. 2 sense: the statically
    /// anticipable components (unstalled + scoreboard categories),
    /// subtracting all dynamic effects.
    pub fn planned(&self) -> u64 {
        self.unstalled + self.float_scoreboard + self.misc
    }

    /// Total minus data-cache stall only (the paper's 1.21 datapoint).
    pub fn total_minus_dcache(&self) -> u64 {
        self.total() - self.int_load_bubble
    }
}

/// Event counters exposed by the simulated performance monitoring unit.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counters {
    /// Retired ops with a true (or absent) qualifying predicate.
    pub retired_useful: u64,
    /// Retired predicate-squashed ops.
    pub retired_squashed: u64,
    /// Retired explicit nops.
    pub retired_nops: u64,
    /// Dynamic branches executed (guard-true or unconditional `Br`).
    pub dynamic_branches: u64,
    /// Conditional-branch predictions.
    pub branch_predictions: u64,
    /// Conditional-branch mispredictions.
    pub branch_mispredictions: u64,
    /// L1I line fetches.
    pub l1i_accesses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 accesses (instruction + data).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Speculative loads executed.
    pub spec_loads: u64,
    /// Speculative loads that faulted to NaT (deferred).
    pub deferred_loads: u64,
    /// Wild loads (invalid non-NULL addresses: kernel page-table query).
    pub wild_loads: u64,
    /// DTLB misses (hardware walks).
    pub dtlb_misses: u64,
    /// `chk` recoveries (sentinel model).
    pub chk_recoveries: u64,
    /// Advanced (data-speculative) loads executed.
    pub adv_loads: u64,
    /// `chk.a` ALAT misses (data-speculation recoveries).
    pub alat_misses: u64,
    /// RSE registers spilled + filled.
    pub rse_regs_moved: u64,
    /// Calls executed.
    pub calls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_planned() {
        let mut a = CycleAccounting::default();
        a.charge(Category::Unstalled, 100);
        a.charge(Category::IntLoadBubble, 30);
        a.charge(Category::FloatScoreboard, 5);
        a.charge(Category::Kernel, 10);
        assert_eq!(a.total(), 145);
        assert_eq!(a.planned(), 105);
        assert_eq!(a.total_minus_dcache(), 115);
        assert_eq!(a.get(Category::Kernel), 10);
    }
}
