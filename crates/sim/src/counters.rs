//! Cycle accounting (paper Fig. 5's nine categories) and performance
//! counters (the Pfmon-style measurements every experiment consumes).
//!
//! [`CycleAccounting`] is a dense `[u64; 9]` indexed by [`Category`]
//! discriminant; the named per-category methods are the public API, so
//! adding a category means touching exactly two places (the enum and
//! [`CATEGORIES`]) instead of a triplicated match.

/// The paper's Fig. 5 cycle categories. Discriminants index
/// [`CycleAccounting`]'s backing array and the per-function matrix rows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Issue cycles (the compiler's plan executing without stall).
    Unstalled = 0,
    /// Scoreboard stalls on F-unit producers (multiply/divide here).
    FloatScoreboard = 1,
    /// Integer scoreboard + exception flush + other small contributors.
    Misc = 2,
    /// Scoreboard stalls on loads (data-cache misses).
    IntLoadBubble = 3,
    /// Memory-pipeline stalls: store-forwarding conflicts, DTLB walks.
    Micropipe = 4,
    /// Instruction fetch starvation (I-cache misses past the buffer).
    FrontEndBubble = 5,
    /// Branch misprediction flushes.
    BrMispredictFlush = 6,
    /// Register stack engine spills/fills.
    RegisterStack = 7,
    /// Kernel time: wild-load page-table queries, syscalls, NaT page.
    Kernel = 8,
}

/// Number of Fig. 5 categories.
pub const NUM_CATEGORIES: usize = 9;

/// All categories, in Fig. 5's stacking order.
pub const CATEGORIES: [Category; NUM_CATEGORIES] = [
    Category::Unstalled,
    Category::FloatScoreboard,
    Category::Misc,
    Category::IntLoadBubble,
    Category::Micropipe,
    Category::FrontEndBubble,
    Category::BrMispredictFlush,
    Category::RegisterStack,
    Category::Kernel,
];

impl Category {
    /// Index into a `[u64; NUM_CATEGORIES]` accounting array.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short stable label (used by reports, tables, and JSON dumps).
    pub fn name(self) -> &'static str {
        match self {
            Category::Unstalled => "unstalled",
            Category::FloatScoreboard => "float-scoreboard",
            Category::Misc => "misc",
            Category::IntLoadBubble => "int-load-bubble",
            Category::Micropipe => "micropipe",
            Category::FrontEndBubble => "front-end-bubble",
            Category::BrMispredictFlush => "br-mispredict-flush",
            Category::RegisterStack => "register-stack",
            Category::Kernel => "kernel",
        }
    }
}

/// Cycle totals per category, stored as one array indexed by
/// [`Category::index`]. Read through the named accessors or [`get`].
///
/// [`get`]: CycleAccounting::get
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleAccounting {
    cells: [u64; NUM_CATEGORIES],
}

impl CycleAccounting {
    /// Rebuild an accounting from a raw cell array (in [`CATEGORIES`]
    /// order) — the inverse of [`cells`](CycleAccounting::cells), used
    /// when a cached simulation result is loaded back from disk.
    pub fn from_cells(cells: [u64; NUM_CATEGORIES]) -> CycleAccounting {
        CycleAccounting { cells }
    }

    /// Add cycles to a category.
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        self.cells[cat.index()] += cycles;
    }

    /// Read a category.
    pub fn get(&self, cat: Category) -> u64 {
        self.cells[cat.index()]
    }

    /// The backing array, in [`CATEGORIES`] order.
    pub fn cells(&self) -> &[u64; NUM_CATEGORIES] {
        &self.cells
    }

    /// Issue cycles.
    pub fn unstalled(&self) -> u64 {
        self.get(Category::Unstalled)
    }

    /// F-unit scoreboard stalls.
    pub fn float_scoreboard(&self) -> u64 {
        self.get(Category::FloatScoreboard)
    }

    /// Other scoreboard + exception flush.
    pub fn misc(&self) -> u64 {
        self.get(Category::Misc)
    }

    /// Load-miss scoreboard stalls.
    pub fn int_load_bubble(&self) -> u64 {
        self.get(Category::IntLoadBubble)
    }

    /// Memory-pipeline (micropipe) stalls.
    pub fn micropipe(&self) -> u64 {
        self.get(Category::Micropipe)
    }

    /// Fetch starvation.
    pub fn front_end_bubble(&self) -> u64 {
        self.get(Category::FrontEndBubble)
    }

    /// Misprediction flushes.
    pub fn br_mispredict_flush(&self) -> u64 {
        self.get(Category::BrMispredictFlush)
    }

    /// RSE activity.
    pub fn register_stack(&self) -> u64 {
        self.get(Category::RegisterStack)
    }

    /// Kernel cycles.
    pub fn kernel(&self) -> u64 {
        self.get(Category::Kernel)
    }

    /// Total execution cycles.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// "Planned" cycles in the paper's Fig. 2 sense: the statically
    /// anticipable components (unstalled + scoreboard categories),
    /// subtracting all dynamic effects.
    pub fn planned(&self) -> u64 {
        self.unstalled() + self.float_scoreboard() + self.misc()
    }

    /// Total minus data-cache stall only (the paper's 1.21 datapoint).
    pub fn total_minus_dcache(&self) -> u64 {
        self.total() - self.int_load_bubble()
    }
}

/// Event counters exposed by the simulated performance monitoring unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Retired ops with a true (or absent) qualifying predicate.
    pub retired_useful: u64,
    /// Retired predicate-squashed ops.
    pub retired_squashed: u64,
    /// Retired explicit nops.
    pub retired_nops: u64,
    /// Dynamic branches executed (guard-true or unconditional `Br`).
    pub dynamic_branches: u64,
    /// Conditional-branch predictions.
    pub branch_predictions: u64,
    /// Conditional-branch mispredictions.
    pub branch_mispredictions: u64,
    /// L1I line fetches.
    pub l1i_accesses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 accesses (instruction + data).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 accesses (everything that missed L2).
    pub l3_accesses: u64,
    /// L3 misses (accesses served by main memory).
    pub l3_misses: u64,
    /// Speculative loads executed.
    pub spec_loads: u64,
    /// Speculative loads that faulted to NaT (deferred).
    pub deferred_loads: u64,
    /// Wild loads (invalid non-NULL addresses: kernel page-table query).
    pub wild_loads: u64,
    /// DTLB misses (hardware walks).
    pub dtlb_misses: u64,
    /// `chk` recoveries (sentinel model).
    pub chk_recoveries: u64,
    /// Advanced (data-speculative) loads executed.
    pub adv_loads: u64,
    /// `chk.a` ALAT misses (data-speculation recoveries).
    pub alat_misses: u64,
    /// RSE registers spilled + filled.
    pub rse_regs_moved: u64,
    /// Calls executed.
    pub calls: u64,
}

/// Number of fields in [`Counters`] (the [`Counters::to_array`] length).
pub const NUM_COUNTERS: usize = 23;

impl Counters {
    /// All counters as a dense array, in declaration order — the shape
    /// sampled extrapolation and serialization work in. Inverse of
    /// [`Counters::from_array`].
    pub fn to_array(&self) -> [u64; NUM_COUNTERS] {
        [
            self.retired_useful,
            self.retired_squashed,
            self.retired_nops,
            self.dynamic_branches,
            self.branch_predictions,
            self.branch_mispredictions,
            self.l1i_accesses,
            self.l1i_misses,
            self.l1d_accesses,
            self.l1d_misses,
            self.l2_accesses,
            self.l2_misses,
            self.l3_accesses,
            self.l3_misses,
            self.spec_loads,
            self.deferred_loads,
            self.wild_loads,
            self.dtlb_misses,
            self.chk_recoveries,
            self.adv_loads,
            self.alat_misses,
            self.rse_regs_moved,
            self.calls,
        ]
    }

    /// Rebuild counters from a [`Counters::to_array`] array.
    pub fn from_array(a: [u64; NUM_COUNTERS]) -> Counters {
        Counters {
            retired_useful: a[0],
            retired_squashed: a[1],
            retired_nops: a[2],
            dynamic_branches: a[3],
            branch_predictions: a[4],
            branch_mispredictions: a[5],
            l1i_accesses: a[6],
            l1i_misses: a[7],
            l1d_accesses: a[8],
            l1d_misses: a[9],
            l2_accesses: a[10],
            l2_misses: a[11],
            l3_accesses: a[12],
            l3_misses: a[13],
            spec_loads: a[14],
            deferred_loads: a[15],
            wild_loads: a[16],
            dtlb_misses: a[17],
            chk_recoveries: a[18],
            adv_loads: a[19],
            alat_misses: a[20],
            rse_regs_moved: a[21],
            calls: a[22],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_planned() {
        let mut a = CycleAccounting::default();
        a.charge(Category::Unstalled, 100);
        a.charge(Category::IntLoadBubble, 30);
        a.charge(Category::FloatScoreboard, 5);
        a.charge(Category::Kernel, 10);
        assert_eq!(a.total(), 145);
        assert_eq!(a.planned(), 105);
        assert_eq!(a.total_minus_dcache(), 115);
        assert_eq!(a.get(Category::Kernel), 10);
        assert_eq!(a.kernel(), 10);
        assert_eq!(a.unstalled(), 100);
    }

    #[test]
    fn category_indices_are_dense_and_ordered() {
        for (i, c) in CATEGORIES.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
        // every category has a distinct label
        let mut names: Vec<&str> = CATEGORIES.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CATEGORIES);
    }

    #[test]
    fn named_accessors_agree_with_get() {
        let mut a = CycleAccounting::default();
        for (i, c) in CATEGORIES.iter().enumerate() {
            a.charge(*c, (i as u64 + 1) * 7);
        }
        assert_eq!(a.unstalled(), a.get(Category::Unstalled));
        assert_eq!(a.float_scoreboard(), a.get(Category::FloatScoreboard));
        assert_eq!(a.misc(), a.get(Category::Misc));
        assert_eq!(a.int_load_bubble(), a.get(Category::IntLoadBubble));
        assert_eq!(a.micropipe(), a.get(Category::Micropipe));
        assert_eq!(a.front_end_bubble(), a.get(Category::FrontEndBubble));
        assert_eq!(a.br_mispredict_flush(), a.get(Category::BrMispredictFlush));
        assert_eq!(a.register_stack(), a.get(Category::RegisterStack));
        assert_eq!(a.kernel(), a.get(Category::Kernel));
        assert_eq!(a.total(), a.cells().iter().sum::<u64>());
    }
}
