//! [`TraceSink`]: the bridge from the attribution engine's charge
//! stream to `epic-trace` histograms.
//!
//! The sink sees every arbitrated charge (millions per simulation), so
//! it accumulates into plain-`u64` [`LocalHisto`]s — no atomics, no
//! locks on the hot path — and publishes the totals into a shared
//! [`ChargeStats`] exactly once, when the simulator drops it at the end
//! of the run. The caller then folds the stats into whichever
//! [`Registry`](epic_trace::Registry) the measurement is tracing into.

use crate::attrib::{ChargeRecord, EventSink};
use crate::counters::{CATEGORIES, NUM_CATEGORIES};
use epic_trace::{LocalHisto, Registry};
use std::sync::{Arc, Mutex};

/// Aggregated charge statistics from one simulation run: per-category
/// distributions of charge sizes plus the total charge count. Purely a
/// function of the (deterministic) simulation, so identical runs
/// produce identical stats.
#[derive(Default)]
pub struct ChargeStats {
    /// One histogram of charge sizes per Fig. 5 category.
    pub by_cat: Vec<LocalHisto>,
    /// Total number of nonzero charges observed.
    pub charges: u64,
}

impl ChargeStats {
    fn merge(&mut self, by_cat: &[LocalHisto], charges: u64) {
        if self.by_cat.is_empty() {
            self.by_cat = by_cat.to_vec();
        } else {
            for (acc, l) in self.by_cat.iter_mut().zip(by_cat) {
                for (a, &b) in acc.buckets.iter_mut().zip(&l.buckets) {
                    *a += b;
                }
                acc.count += l.count;
                acc.sum = acc.sum.wrapping_add(l.sum);
            }
        }
        self.charges += charges;
    }

    /// Publish into a registry as `sim.charge.<category>` histograms
    /// plus a `sim.charges` counter.
    pub fn flush_into(&self, reg: &Registry) {
        reg.counter("sim.charges").add(self.charges);
        for (cat, l) in CATEGORIES.iter().zip(&self.by_cat) {
            if l.count > 0 {
                reg.histogram(&format!("sim.charge.{}", cat.name()))
                    .merge_local(l);
            }
        }
    }
}

/// An [`EventSink`] that histograms charge sizes per category. Create
/// with [`TraceSink::new`], hand the sink to
/// [`run_with_sinks`](crate::machine::run_with_sinks), and read the
/// shared [`ChargeStats`] after the run returns.
pub struct TraceSink {
    by_cat: Vec<LocalHisto>,
    charges: u64,
    out: Arc<Mutex<ChargeStats>>,
}

impl TraceSink {
    /// A sink plus the handle its totals land in when the run finishes.
    pub fn new() -> (TraceSink, Arc<Mutex<ChargeStats>>) {
        let out = Arc::new(Mutex::new(ChargeStats::default()));
        (
            TraceSink {
                by_cat: vec![LocalHisto::default(); NUM_CATEGORIES],
                charges: 0,
                out: Arc::clone(&out),
            },
            out,
        )
    }
}

impl EventSink for TraceSink {
    fn on_charge(&mut self, rec: &ChargeRecord) {
        self.by_cat[rec.cat.index()].record(rec.cycles);
        self.charges += 1;
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.out
            .lock()
            .expect("charge stats")
            .merge(&self.by_cat, self.charges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::Location;
    use crate::counters::Category;

    #[test]
    fn sink_accumulates_and_flushes_on_drop() {
        let (mut sink, stats) = TraceSink::new();
        for (cat, cycles) in [
            (Category::Unstalled, 1),
            (Category::Unstalled, 1),
            (Category::IntLoadBubble, 9),
        ] {
            sink.on_charge(&ChargeRecord {
                cycle: 0,
                at: Location::default(),
                cat,
                cycles,
            });
        }
        assert_eq!(stats.lock().unwrap().charges, 0, "flushes only on drop");
        drop(sink);
        let stats = stats.lock().unwrap();
        assert_eq!(stats.charges, 3);
        assert_eq!(stats.by_cat[Category::Unstalled.index()].count, 2);
        assert_eq!(stats.by_cat[Category::IntLoadBubble.index()].sum, 9);

        let reg = Registry::new();
        stats.flush_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.charges"), 3);
        let h = snap.histogram("sim.charge.unstalled").unwrap();
        assert_eq!(h.count, 2);
        assert!(
            snap.histogram("sim.charge.kernel").is_none(),
            "empty categories stay out"
        );
    }
}
