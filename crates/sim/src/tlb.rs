//! Data TLB with LRU replacement and hardware (VHPT) walk modeling.

use epic_ir::mem::PAGE_SIZE;
use std::collections::HashMap;

/// Fully-associative LRU DTLB (stamp-based: O(1) hits, O(capacity) only
/// on evicting misses).
#[derive(Clone, Debug)]
pub struct Dtlb {
    entries: HashMap<u64, u64>, // page -> last-use stamp
    capacity: usize,
    clock: u64,
    /// Accesses.
    pub accesses: u64,
    /// Misses (hardware walks).
    pub misses: u64,
}

impl Dtlb {
    /// A DTLB with `capacity` entries.
    pub fn new(capacity: usize) -> Dtlb {
        Dtlb {
            entries: HashMap::with_capacity(capacity + 1),
            capacity,
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Translate the page of `addr`; returns true on hit. Misses insert
    /// the translation (the simulator charges the walk).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let page = addr / PAGE_SIZE;
        let clock = self.clock;
        if let Some(stamp) = self.entries.get_mut(&page) {
            *stamp = clock;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // evict the least recently used entry
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &s)| s) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(page, clock);
        false
    }

    /// Probe without filling (sentinel-model `ld.s` defers on DTLB miss
    /// without walking).
    pub fn probe(&self, addr: u64) -> bool {
        self.entries.contains_key(&(addr / PAGE_SIZE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill_and_lru() {
        let mut t = Dtlb::new(2);
        assert!(!t.access(0x10000));
        assert!(t.access(0x10008));
        assert!(!t.access(0x20000));
        assert!(t.access(0x10000)); // MRU refresh
        assert!(!t.access(0x30000)); // evicts 0x20000
        assert!(!t.access(0x20000));
        assert_eq!(t.misses, 4);
    }

    #[test]
    fn probe_does_not_fill() {
        let mut t = Dtlb::new(2);
        assert!(!t.probe(0x40000));
        assert_eq!(t.accesses, 0);
        t.access(0x40000);
        assert!(t.probe(0x40001));
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = Dtlb::new(8);
        for i in 0..100u64 {
            t.access(i * PAGE_SIZE);
        }
        assert_eq!(t.misses, 100);
        // the 8 most recent pages hit
        for i in 92..100u64 {
            assert!(t.probe(i * PAGE_SIZE), "page {i} should be resident");
        }
        assert!(!t.probe(0));
    }
}
