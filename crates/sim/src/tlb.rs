//! Data TLB with LRU replacement and hardware (VHPT) walk modeling.

use epic_ir::mem::PAGE_SIZE;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for page-number keys (std's SipHash is ~10x
/// slower and shows up in profiles: the DTLB is probed on every
/// load/store of both the detailed and the functional-warmup path).
#[derive(Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, x: u64) {
        let mut z = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        self.0 = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
}

type PageMap<V> = HashMap<u64, V, BuildHasherDefault<PageHasher>>;

/// Intrusive doubly-linked LRU list node (slab index links).
#[derive(Clone, Copy, Debug)]
struct Node {
    page: u64,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

/// Fully-associative LRU DTLB: O(1) hits *and* misses (hash lookup plus
/// intrusive-list splice; eviction pops the list tail).
#[derive(Clone, Debug)]
pub struct Dtlb {
    map: PageMap<u32>, // page -> slab slot
    slab: Vec<Node>,
    head: u32, // MRU
    tail: u32, // LRU
    capacity: usize,
    /// Accesses.
    pub accesses: u64,
    /// Misses (hardware walks).
    pub misses: u64,
}

impl Dtlb {
    /// A DTLB with `capacity` entries.
    pub fn new(capacity: usize) -> Dtlb {
        let capacity = capacity.max(1);
        Dtlb {
            map: PageMap::with_capacity_and_hasher(capacity + 1, Default::default()),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            accesses: 0,
            misses: 0,
        }
    }

    /// Unlink `slot` from the recency list.
    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.slab[slot as usize];
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    /// Link `slot` at the MRU head.
    fn push_front(&mut self, slot: u32) {
        let old = self.head;
        {
            let n = &mut self.slab[slot as usize];
            n.prev = NIL;
            n.next = old;
        }
        match old {
            NIL => self.tail = slot,
            h => self.slab[h as usize].prev = slot,
        }
        self.head = slot;
    }

    /// Translate the page of `addr`; returns true on hit. Misses insert
    /// the translation (the simulator charges the walk).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let page = addr / PAGE_SIZE;
        if let Some(&slot) = self.map.get(&page) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        self.misses += 1;
        let slot = if self.slab.len() < self.capacity {
            self.slab.push(Node {
                page,
                prev: NIL,
                next: NIL,
            });
            (self.slab.len() - 1) as u32
        } else {
            // evict the least recently used entry, reusing its slot
            let victim = self.tail;
            self.unlink(victim);
            let old_page = self.slab[victim as usize].page;
            self.map.remove(&old_page);
            self.slab[victim as usize].page = page;
            victim
        };
        self.map.insert(page, slot);
        self.push_front(slot);
        false
    }

    /// Probe without filling (sentinel-model `ld.s` defers on DTLB miss
    /// without walking).
    pub fn probe(&self, addr: u64) -> bool {
        self.map.contains_key(&(addr / PAGE_SIZE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill_and_lru() {
        let mut t = Dtlb::new(2);
        assert!(!t.access(0x10000));
        assert!(t.access(0x10008));
        assert!(!t.access(0x20000));
        assert!(t.access(0x10000)); // MRU refresh
        assert!(!t.access(0x30000)); // evicts 0x20000
        assert!(!t.access(0x20000));
        assert_eq!(t.misses, 4);
    }

    #[test]
    fn probe_does_not_fill() {
        let mut t = Dtlb::new(2);
        assert!(!t.probe(0x40000));
        assert_eq!(t.accesses, 0);
        t.access(0x40000);
        assert!(t.probe(0x40001));
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = Dtlb::new(8);
        for i in 0..100u64 {
            t.access(i * PAGE_SIZE);
        }
        assert_eq!(t.misses, 100);
        // the 8 most recent pages hit
        for i in 92..100u64 {
            assert!(t.probe(i * PAGE_SIZE), "page {i} should be resident");
        }
        assert!(!t.probe(0));
    }

    /// The slab LRU agrees with a naive reference model under a random
    /// mixed workload (hits, misses, evictions, re-touches).
    #[test]
    fn matches_reference_lru() {
        let mut t = Dtlb::new(4);
        let mut reference: Vec<u64> = Vec::new(); // MRU first
        let mut seed = 0x1234_5678u64;
        for _ in 0..10_000 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (seed >> 33) % 9;
            let addr = page * PAGE_SIZE;
            let expect_hit = reference.contains(&page);
            assert_eq!(t.access(addr), expect_hit, "page {page}");
            reference.retain(|&p| p != page);
            reference.insert(0, page);
            reference.truncate(4);
            for &p in &reference {
                assert!(t.probe(p * PAGE_SIZE));
            }
        }
    }
}
