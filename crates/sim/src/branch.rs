//! Branch prediction: a gshare direction predictor with a return-address
//! stack (a ring: pushes past the depth drop the oldest entry in O(1)). (The paper notes branch misprediction accounts for relatively
//! few cycles on Itanium 2 — Sec. 3.5 — which a competent predictor
//! reproduces.)

/// Gshare predictor with 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct Predictor {
    table: Vec<u8>,
    history: u64,
    rsb: std::collections::VecDeque<u64>,
    /// Conditional-branch predictions made.
    pub predictions: u64,
    /// Conditional-branch mispredictions.
    pub mispredictions: u64,
}

const TABLE_BITS: u32 = 14;
const HISTORY_BITS: u32 = 8;
const RSB_DEPTH: usize = 32;

impl Predictor {
    /// A fresh predictor (counters weakly not-taken).
    pub fn new() -> Predictor {
        Predictor {
            table: vec![1u8; 1 << TABLE_BITS],
            history: 0,
            rsb: std::collections::VecDeque::with_capacity(RSB_DEPTH),
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predict + train on a conditional branch at `addr` with actual
    /// outcome `taken`. Returns whether the prediction was correct.
    pub fn branch(&mut self, addr: u64, taken: bool) -> bool {
        self.predictions += 1;
        let idx = (((addr >> 4) ^ self.history) & ((1 << TABLE_BITS) - 1)) as usize;
        let ctr = &mut self.table[idx];
        let predicted = *ctr >= 2;
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & ((1 << HISTORY_BITS) - 1);
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Record a call's return address.
    pub fn push_return(&mut self, ret_addr: u64) {
        if self.rsb.len() == RSB_DEPTH {
            self.rsb.pop_front();
        }
        self.rsb.push_back(ret_addr);
    }

    /// Predict a return; returns whether the RSB was correct.
    pub fn pop_return(&mut self, actual: u64) -> bool {
        match self.rsb.pop_back() {
            Some(a) => a == actual,
            None => false,
        }
    }
}

impl Default for Predictor {
    fn default() -> Predictor {
        Predictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Predictor::new();
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.branch(0x400040, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 10, "mispredictions on always-taken: {wrong}");
        assert_eq!(p.predictions, 100);
        assert_eq!(p.mispredictions, wrong);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = Predictor::new();
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let correct = p.branch(0x400080, taken);
            if i >= 200 && !correct {
                wrong_late += 1;
            }
        }
        assert!(wrong_late <= 10, "late mispredictions: {wrong_late}");
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = Predictor::new();
        let mut seed = 42u64;
        let mut wrong = 0;
        for _ in 0..1000 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if !p.branch(0x4000C0, (seed >> 40) & 1 == 1) {
                wrong += 1;
            }
        }
        assert!(wrong > 250, "random stream must mispredict: {wrong}");
    }

    #[test]
    fn return_stack_matches_nested_calls() {
        let mut p = Predictor::new();
        p.push_return(100);
        p.push_return(200);
        assert!(p.pop_return(200));
        assert!(p.pop_return(100));
        assert!(!p.pop_return(1)); // empty
    }
}
