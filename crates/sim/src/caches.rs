//! Set-associative LRU caches and the three-level hierarchy
//! (16K L1I / 16K L1D, unified 256K L2 and 3M L3, as in paper Fig. 1).

use epic_mach::config::CacheConfig;

/// Tag value marking an unfilled way. Unreachable as a real tag: it
/// would require an address within one line of `u64::MAX`.
const EMPTY: u64 = u64::MAX;

/// One set-associative LRU cache. Tags live in a single flat array,
/// MRU-first within each set's way slice.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Box<[u64]>, // n_sets x ways, MRU first per set
    n_sets: u64,
    ways: usize,
    line_shift: u32, // valid only when `pow2`
    pow2: bool,      // line size and set count both powers of two
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl Cache {
    /// Build a cache from its geometry.
    pub fn new(cfg: CacheConfig) -> Cache {
        let n_sets = (cfg.size / (cfg.line * cfg.ways)).max(1);
        let ways = cfg.ways as usize;
        Cache {
            cfg,
            tags: vec![EMPTY; n_sets as usize * ways].into_boxed_slice(),
            n_sets,
            ways,
            line_shift: cfg.line.trailing_zeros(),
            pow2: cfg.line.is_power_of_two() && n_sets.is_power_of_two(),
            accesses: 0,
            misses: 0,
        }
    }

    /// Access the line containing `addr`; returns true on hit. Misses
    /// allocate (evicting LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let (tag, si) = if self.pow2 {
            let tag = addr >> self.line_shift;
            (tag, (tag & (self.n_sets - 1)) as usize)
        } else {
            let tag = addr / self.cfg.line;
            (tag, (tag % self.n_sets) as usize)
        };
        let base = si * self.ways;
        let set = &mut self.tags[base..base + self.ways];
        if set[0] == tag {
            return true;
        }
        for i in 1..set.len() {
            if set[i] == tag {
                set.copy_within(..i, 1);
                set[0] = tag;
                return true;
            }
        }
        self.misses += 1;
        set.copy_within(..set.len() - 1, 1);
        set[0] = tag;
        false
    }

    /// Hit latency of this level.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Line size in bytes.
    pub fn line(&self) -> u64 {
        self.cfg.line
    }
}

/// Which level serviced an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Level {
    /// First-level hit.
    L1,
    /// Second-level hit.
    L2,
    /// Third-level hit.
    L3,
    /// Main memory.
    Mem,
}

/// The unified L2/L3 + memory behind both L1s.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Unified L3.
    pub l3: Cache,
    mem_latency: u64,
}

impl Hierarchy {
    /// Build from a machine configuration.
    pub fn new(cfg: &epic_mach::MachineConfig) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            mem_latency: cfg.mem_latency,
        }
    }

    /// Instruction fetch of the line containing `addr`:
    /// `(total latency, level)`.
    pub fn fetch_inst(&mut self, addr: u64) -> (u64, Level) {
        if self.l1i.access(addr) {
            return (self.l1i.latency(), Level::L1);
        }
        self.lower(addr, self.l1i.latency())
    }

    /// Data access of `addr`: `(total latency, level)`.
    pub fn access_data(&mut self, addr: u64) -> (u64, Level) {
        if self.l1d.access(addr) {
            return (self.l1d.latency(), Level::L1);
        }
        self.lower(addr, self.l1d.latency())
    }

    fn lower(&mut self, addr: u64, base: u64) -> (u64, Level) {
        if self.l2.access(addr) {
            return (base + self.l2.latency(), Level::L2);
        }
        if self.l3.access(addr) {
            return (base + self.l2.latency() + self.l3.latency(), Level::L3);
        }
        (
            base + self.l2.latency() + self.l3.latency() + self.mem_latency,
            Level::Mem,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_mach::MachineConfig;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size: 256,
            line: 64,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn hits_after_fill() {
        let mut c = small();
        assert!(!c.access(0));
        assert!(c.access(8)); // same line
        assert!(c.access(63));
        assert!(!c.access(64));
        assert_eq!(c.accesses, 4);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small(); // 2 sets, 2 ways
                             // set 0 lines: 0, 128, 256 (tags 0,2,4)
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0)); // 0 now MRU
        assert!(!c.access(256)); // evicts 128
        assert!(c.access(0));
        assert!(!c.access(128)); // was evicted
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let mut h = Hierarchy::new(&MachineConfig::default());
        let (lat, lvl) = h.access_data(0x2000_0000);
        assert_eq!(lvl, Level::Mem);
        assert_eq!(lat, 1 + 5 + 12 + 140);
        let (lat, lvl) = h.access_data(0x2000_0000);
        assert_eq!(lvl, Level::L1);
        assert_eq!(lat, 1);
    }

    #[test]
    fn l2_is_shared_between_inst_and_data() {
        let mut h = Hierarchy::new(&MachineConfig::default());
        let addr = 0x40_0000;
        h.fetch_inst(addr); // fills L2/L3 via instruction path
                            // evict from tiny L1D domain is irrelevant; data access to the same
                            // line must now hit L2 (shared)
        let (lat, lvl) = h.access_data(addr);
        assert_eq!(lvl, Level::L2);
        assert_eq!(lat, 1 + 5);
    }

    /// Invariant: hits + misses == accesses.
    #[test]
    fn counts_are_consistent() {
        let mut c = small();
        let mut seed = 1u64;
        for _ in 0..1000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(seed % 4096);
        }
        assert_eq!(c.accesses, 1000);
        assert!(c.misses <= c.accesses);
    }
}
