//! Centralized cycle/event attribution.
//!
//! Every simulator component reports what *happened* as a typed
//! [`SimEvent`]; this module decides what it *costs* and which Fig. 5
//! category pays — the single arbitration point that used to be ~25
//! `acct.charge` calls scattered through the dispatch loop. The
//! [`Attribution`] engine owns the aggregate [`CycleAccounting`] and
//! [`Counters`], maintains the running total cycle counter (so fuel
//! checks and scoreboard timestamps are one field read, not a 9-way
//! sum), and fans every charge out to its sinks:
//!
//! * the built-in aggregate (always on, zero overhead beyond the add);
//! * the built-in per-function × per-category [`FuncMatrix`] — the
//!   real Fig. 10 drill-down;
//! * an optional bounded [`RingTrace`] for debugging hot regions;
//! * any number of caller-supplied [`EventSink`]s.
//!
//! The engine enforces the accounting identity — every cycle is charged
//! to exactly one category and exactly one function, so
//! `sum(categories) == total == sum(function rows)` — as debug
//! assertions at [`Attribution::finish`]; `epic_fuzz` re-checks it on
//! every fuzz case via [`crate::SimResult::check_identity`].

use crate::caches::Level;
use crate::counters::{Category, Counters, CycleAccounting, NUM_CATEGORIES};
use crate::predict::BranchRecord;
use std::collections::VecDeque;

/// What a stalled-on source register was produced by. The engine
/// arbitrates this into a Fig. 5 category ([`Category::IntLoadBubble`],
/// [`Category::FloatScoreboard`], or [`Category::Misc`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StallProducer {
    /// Anything else (integer scoreboard, exception flush, ...).
    #[default]
    Other,
    /// A load that has not returned yet.
    Load,
    /// An F-unit op (multiply/divide) still in flight.
    Float,
}

/// Why kernel time was spent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelReason {
    /// An `Out` syscall.
    Syscall,
    /// An `Alloc` syscall.
    Alloc,
    /// Architected NaT-page response for a NULL-page speculative access.
    NatPage,
    /// A wild speculative load walking the kernel page tables
    /// (paper Sec. 4.3; also bumps the `wild_loads` counter).
    WildLoad,
}

/// Which cache port an access went through.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Port {
    /// Instruction fetch (L1I front end).
    Inst,
    /// Data access (L1D).
    Data,
}

/// How an operation retired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Retire {
    /// Qualifying predicate true (or absent): the op did work.
    Useful,
    /// Predicate-squashed.
    Squashed,
    /// An explicit nop slot.
    Nop,
}

/// One typed report from a simulator component. Events either cost
/// cycles (the engine arbitrates the category), bump counters, or both.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimEvent {
    /// The current issue group retired: one unstalled issue cycle.
    Issue,
    /// Front-end starvation past the decoupling buffer.
    FetchBubble {
        /// Bubble cycles (already net of what the buffer hid).
        cycles: u64,
    },
    /// The scoreboard held the whole group waiting on a source.
    ScoreboardStall {
        /// The producer blamed for the latest-arriving source.
        producer: StallProducer,
        /// Stall cycles.
        cycles: u64,
    },
    /// A conditional branch was predicted and resolved.
    BranchPredicted {
        /// Whether the gshare prediction matched the outcome.
        correct: bool,
        /// Pipeline flush cost if it did not.
        flush_cycles: u64,
    },
    /// A return missed the return-address stack (flush, no prediction
    /// counter: the RSB is not a conditional-branch predictor).
    ReturnMispredicted {
        /// Pipeline flush cost.
        flush_cycles: u64,
    },
    /// RSE spill/fill traffic on a call or return.
    RseTraffic {
        /// Registers moved to/from the backing store.
        regs: u64,
        /// Stall cycles the move cost.
        stall: u64,
    },
    /// A DTLB miss triggered a hardware (VHPT) walk.
    DtlbWalk {
        /// Walk cycles (charged to micropipe).
        cycles: u64,
    },
    /// A load hit a store-buffer forwarding conflict.
    StoreForward {
        /// Conflict stall cycles (micropipe).
        cycles: u64,
    },
    /// Kernel time.
    Kernel {
        /// What the kernel was doing.
        reason: KernelReason,
        /// Kernel cycles.
        cycles: u64,
    },
    /// A `chk` found a deferred NaT and ran sentinel recovery.
    ChkRecovery {
        /// Recovery cost (misc).
        cycles: u64,
    },
    /// A `chk.a` missed the ALAT and re-executed its load.
    AlatMiss {
        /// Recovery cost (misc).
        cycles: u64,
    },
    /// An operation retired.
    Retired(Retire),
    /// A dynamic branch executed (taken `Br`, `Call`, or `Ret`).
    BranchExecuted,
    /// A call executed.
    CallExecuted,
    /// A cache access was serviced at `level` on `port`.
    CacheAccess {
        /// Instruction or data port.
        port: Port,
        /// The level that serviced it.
        level: Level,
    },
    /// A speculative (`ld.s`) load executed.
    SpecLoad,
    /// A speculative load deferred to NaT.
    DeferredLoad,
    /// An advanced (`ld.a`) load installed an ALAT entry.
    AdvLoad,
}

/// Where the machine currently is: the function and first bundle of the
/// issue group being executed. Charges are attributed at group
/// granularity, matching the paper's Pfmon-style sampling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Location {
    /// Function index (into `MachProgram::funcs`).
    pub func: usize,
    /// First bundle of the current issue group.
    pub bundle: usize,
}

/// One charge record delivered to sinks (and kept by [`RingTrace`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChargeRecord {
    /// Total cycles *after* this charge landed.
    pub cycle: u64,
    /// Where the machine was.
    pub at: Location,
    /// The category that paid.
    pub cat: Category,
    /// How many cycles were charged.
    pub cycles: u64,
}

/// A pluggable observer of arbitrated charges. Sinks see every nonzero
/// charge after the aggregate has been updated; they cannot alter
/// attribution, only observe it.
pub trait EventSink {
    /// One arbitrated, nonzero charge.
    fn on_charge(&mut self, rec: &ChargeRecord);

    /// One resolved control-flow event (conditional branch, call, or
    /// return), as the program retired it — predictor-agnostic by
    /// construction. Default: ignore; only capture sinks (e.g.
    /// [`crate::predict::BranchTraceSink`]) override this.
    fn on_branch(&mut self, _rec: &BranchRecord) {}
}

/// Per-function × per-category cycle matrix: the Fig. 10 drill-down.
/// Row sums reproduce the old flat `cycles_by_func` vector; column sums
/// reproduce the aggregate [`CycleAccounting`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncMatrix {
    rows: Vec<[u64; NUM_CATEGORIES]>,
}

impl FuncMatrix {
    /// An all-zero matrix with one row per function.
    pub fn new(num_funcs: usize) -> FuncMatrix {
        FuncMatrix {
            rows: vec![[0; NUM_CATEGORIES]; num_funcs],
        }
    }

    /// Rebuild a matrix from raw rows (each in [`crate::CATEGORIES`]
    /// order) — the inverse of [`rows`](FuncMatrix::rows), used when a
    /// cached simulation result is loaded back from disk.
    pub fn from_rows(rows: Vec<[u64; NUM_CATEGORIES]>) -> FuncMatrix {
        FuncMatrix { rows }
    }

    /// All rows, indexed by function id.
    pub fn rows(&self) -> &[[u64; NUM_CATEGORIES]] {
        &self.rows
    }

    fn add(&mut self, func: usize, cat: Category, cycles: u64) {
        self.rows[func][cat.index()] += cycles;
    }

    /// Number of function rows.
    pub fn num_funcs(&self) -> usize {
        self.rows.len()
    }

    /// Cycles charged to `(func, cat)`.
    pub fn get(&self, func: usize, cat: Category) -> u64 {
        self.rows[func][cat.index()]
    }

    /// One function's full category row, in [`CATEGORIES`] order.
    pub fn row(&self, func: usize) -> &[u64; NUM_CATEGORIES] {
        &self.rows[func]
    }

    /// Total cycles attributed to one function (Fig. 10 bar width).
    pub fn row_total(&self, func: usize) -> u64 {
        self.rows[func].iter().sum()
    }

    /// Total cycles in one category across all functions; equals the
    /// aggregate accounting's entry for `cat`.
    pub fn col_total(&self, cat: Category) -> u64 {
        self.rows.iter().map(|r| r[cat.index()]).sum()
    }

    /// Grand total; equals the simulation's total cycles.
    pub fn total(&self) -> u64 {
        self.rows.iter().flatten().sum()
    }

    /// The flat per-function cycle vector (row totals) — the shape the
    /// original Fig. 10 plot consumes.
    pub fn by_func(&self) -> Vec<u64> {
        (0..self.rows.len()).map(|f| self.row_total(f)).collect()
    }
}

/// Bounded ring-buffer trace of the most recent charges — cheap enough
/// to leave on while bisecting a hot region, impossible to grow without
/// bound. Also usable as a standalone [`EventSink`].
#[derive(Clone, Debug, Default)]
pub struct RingTrace {
    buf: VecDeque<ChargeRecord>,
    capacity: usize,
    /// Records evicted because the buffer was full.
    pub dropped: u64,
}

impl RingTrace {
    /// A trace keeping at most `capacity` records (0 keeps nothing).
    pub fn new(capacity: usize) -> RingTrace {
        RingTrace {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &ChargeRecord> {
        self.buf.iter()
    }

    /// Drain into a plain vector, oldest first.
    pub fn into_records(self) -> Vec<ChargeRecord> {
        self.buf.into_iter().collect()
    }

    fn push(&mut self, rec: ChargeRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

impl EventSink for RingTrace {
    fn on_charge(&mut self, rec: &ChargeRecord) {
        self.push(*rec);
    }
}

/// The attribution engine. See the module docs for the event model.
pub struct Attribution {
    acct: CycleAccounting,
    counters: Counters,
    matrix: FuncMatrix,
    /// Running total of every charged cycle — kept in lockstep with the
    /// category array so fuel checks are one comparison.
    total: u64,
    at: Location,
    trace: Option<RingTrace>,
    sinks: Vec<Box<dyn EventSink>>,
}

impl Attribution {
    /// An engine for a program with `num_funcs` functions.
    pub fn new(num_funcs: usize) -> Attribution {
        Attribution {
            acct: CycleAccounting::default(),
            counters: Counters::default(),
            matrix: FuncMatrix::new(num_funcs),
            total: 0,
            at: Location::default(),
            trace: None,
            sinks: Vec::new(),
        }
    }

    /// Enable the bounded ring-buffer trace (capacity 0 disables).
    pub fn with_trace(mut self, capacity: usize) -> Attribution {
        self.trace = (capacity > 0).then(|| RingTrace::new(capacity));
        self
    }

    /// Attach an external observer of arbitrated charges.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Move the attribution cursor: subsequent charges land on this
    /// function/bundle.
    pub fn at(&mut self, func: usize, bundle: usize) {
        self.at = Location { func, bundle };
    }

    /// Total cycles charged so far (the simulator's clock).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Read-only view of the aggregate accounting.
    pub fn acct(&self) -> &CycleAccounting {
        &self.acct
    }

    /// Read-only view of the counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Read-only view of the per-function matrix (used by
    /// `crate::sample` to diff per-interval charges out of a live
    /// engine without tearing it down).
    pub fn matrix(&self) -> &FuncMatrix {
        &self.matrix
    }

    /// Whether any sink is attached — lets the dispatch loop skip
    /// building [`BranchRecord`]s entirely on untraced runs.
    pub fn wants_branches(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Fan one resolved control-flow event out to the sinks. Carries no
    /// cost and no prediction outcome: what the predictor did with the
    /// branch is reported separately via [`SimEvent::BranchPredicted`].
    pub fn branch(&mut self, rec: BranchRecord) {
        for s in &mut self.sinks {
            s.on_branch(&rec);
        }
    }

    /// Report one event. This is the *only* way cycles or counters move:
    /// the match below is the complete cost/category model.
    pub fn emit(&mut self, ev: SimEvent) {
        match ev {
            SimEvent::Issue => self.charge(Category::Unstalled, 1),
            SimEvent::FetchBubble { cycles } => self.charge(Category::FrontEndBubble, cycles),
            SimEvent::ScoreboardStall { producer, cycles } => {
                // the multi-cause arbitration point: one producer kind,
                // one category, every stall cycle charged exactly once
                let cat = match producer {
                    StallProducer::Load => Category::IntLoadBubble,
                    StallProducer::Float => Category::FloatScoreboard,
                    StallProducer::Other => Category::Misc,
                };
                self.charge(cat, cycles);
            }
            SimEvent::BranchPredicted {
                correct,
                flush_cycles,
            } => {
                self.counters.branch_predictions += 1;
                if !correct {
                    self.counters.branch_mispredictions += 1;
                    self.charge(Category::BrMispredictFlush, flush_cycles);
                }
            }
            SimEvent::ReturnMispredicted { flush_cycles } => {
                self.charge(Category::BrMispredictFlush, flush_cycles);
            }
            SimEvent::RseTraffic { regs, stall } => {
                self.counters.rse_regs_moved += regs;
                self.charge(Category::RegisterStack, stall);
            }
            SimEvent::DtlbWalk { cycles } => {
                self.counters.dtlb_misses += 1;
                self.charge(Category::Micropipe, cycles);
            }
            SimEvent::StoreForward { cycles } => self.charge(Category::Micropipe, cycles),
            SimEvent::Kernel { reason, cycles } => {
                if reason == KernelReason::WildLoad {
                    self.counters.wild_loads += 1;
                }
                self.charge(Category::Kernel, cycles);
            }
            SimEvent::ChkRecovery { cycles } => {
                self.counters.chk_recoveries += 1;
                self.charge(Category::Misc, cycles);
            }
            SimEvent::AlatMiss { cycles } => {
                self.counters.alat_misses += 1;
                self.charge(Category::Misc, cycles);
            }
            SimEvent::Retired(kind) => match kind {
                Retire::Useful => self.counters.retired_useful += 1,
                Retire::Squashed => self.counters.retired_squashed += 1,
                Retire::Nop => self.counters.retired_nops += 1,
            },
            SimEvent::BranchExecuted => self.counters.dynamic_branches += 1,
            SimEvent::CallExecuted => self.counters.calls += 1,
            SimEvent::CacheAccess { port, level } => {
                let (acc, miss): (&mut u64, &mut u64) = match port {
                    Port::Inst => (
                        &mut self.counters.l1i_accesses,
                        &mut self.counters.l1i_misses,
                    ),
                    Port::Data => (
                        &mut self.counters.l1d_accesses,
                        &mut self.counters.l1d_misses,
                    ),
                };
                *acc += 1;
                if level != Level::L1 {
                    *miss += 1;
                    self.counters.l2_accesses += 1;
                    if level != Level::L2 {
                        self.counters.l2_misses += 1;
                        self.counters.l3_accesses += 1;
                        if level != Level::L3 {
                            self.counters.l3_misses += 1;
                        }
                    }
                }
            }
            SimEvent::SpecLoad => self.counters.spec_loads += 1,
            SimEvent::DeferredLoad => self.counters.deferred_loads += 1,
            SimEvent::AdvLoad => self.counters.adv_loads += 1,
        }
    }

    fn charge(&mut self, cat: Category, cycles: u64) {
        self.acct.charge(cat, cycles);
        self.matrix.add(self.at.func, cat, cycles);
        self.total += cycles;
        if cycles > 0 && (self.trace.is_some() || !self.sinks.is_empty()) {
            let rec = ChargeRecord {
                cycle: self.total,
                at: self.at,
                cat,
                cycles,
            };
            if let Some(t) = &mut self.trace {
                t.push(rec);
            }
            for s in &mut self.sinks {
                s.on_charge(&rec);
            }
        }
    }

    /// Tear down into the final measurements, checking the accounting
    /// identity in debug builds: every cycle charged exactly once to a
    /// category and exactly once to a function.
    pub fn finish(self) -> (CycleAccounting, Counters, FuncMatrix, Vec<ChargeRecord>) {
        debug_assert_eq!(
            self.total,
            self.acct.total(),
            "running total diverged from the category sum"
        );
        debug_assert_eq!(
            self.matrix.total(),
            self.total,
            "per-function matrix diverged from the total"
        );
        #[cfg(debug_assertions)]
        for c in crate::counters::CATEGORIES {
            debug_assert_eq!(
                self.matrix.col_total(c),
                self.acct.get(c),
                "column {c:?} diverged from the aggregate"
            );
        }
        let trace = self.trace.map(RingTrace::into_records).unwrap_or_default();
        (self.acct, self.counters, self.matrix, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CATEGORIES;

    #[test]
    fn arbitration_maps_each_event_to_one_category() {
        let mut a = Attribution::new(2);
        a.at(0, 0);
        a.emit(SimEvent::Issue);
        a.emit(SimEvent::ScoreboardStall {
            producer: StallProducer::Load,
            cycles: 7,
        });
        a.at(1, 3);
        a.emit(SimEvent::ScoreboardStall {
            producer: StallProducer::Float,
            cycles: 2,
        });
        a.emit(SimEvent::Kernel {
            reason: KernelReason::WildLoad,
            cycles: 160,
        });
        a.emit(SimEvent::DtlbWalk { cycles: 25 });
        let (acct, ctr, matrix, _) = a.finish();
        assert_eq!(acct.unstalled(), 1);
        assert_eq!(acct.int_load_bubble(), 7);
        assert_eq!(acct.float_scoreboard(), 2);
        assert_eq!(acct.kernel(), 160);
        assert_eq!(acct.micropipe(), 25);
        assert_eq!(acct.total(), 195);
        assert_eq!(ctr.wild_loads, 1);
        assert_eq!(ctr.dtlb_misses, 1);
        // function attribution followed the cursor
        assert_eq!(matrix.row_total(0), 8);
        assert_eq!(matrix.row_total(1), 187);
        assert_eq!(matrix.total(), acct.total());
    }

    #[test]
    fn cache_events_reconstruct_hierarchy_counters() {
        let mut a = Attribution::new(1);
        a.emit(SimEvent::CacheAccess {
            port: Port::Data,
            level: Level::L1,
        });
        a.emit(SimEvent::CacheAccess {
            port: Port::Data,
            level: Level::Mem,
        });
        a.emit(SimEvent::CacheAccess {
            port: Port::Inst,
            level: Level::L3,
        });
        let (_, c, ..) = a.finish();
        assert_eq!((c.l1d_accesses, c.l1d_misses), (2, 1));
        assert_eq!((c.l1i_accesses, c.l1i_misses), (1, 1));
        assert_eq!((c.l2_accesses, c.l2_misses), (2, 2));
        assert_eq!((c.l3_accesses, c.l3_misses), (2, 1));
    }

    #[test]
    fn matrix_rows_and_columns_sum_to_total() {
        let mut a = Attribution::new(3);
        for f in 0..3usize {
            a.at(f, f * 10);
            a.emit(SimEvent::Issue);
            a.emit(SimEvent::FetchBubble {
                cycles: f as u64 * 5,
            });
        }
        let (acct, _, m, _) = a.finish();
        assert_eq!(m.total(), acct.total());
        assert_eq!(m.by_func().iter().sum::<u64>(), acct.total());
        for c in CATEGORIES {
            assert_eq!(m.col_total(c), acct.get(c), "{c:?}");
        }
        assert_eq!(m.get(2, Category::FrontEndBubble), 10);
    }

    #[test]
    fn ring_trace_is_bounded_and_counts_drops() {
        let mut a = Attribution::new(1).with_trace(4);
        for _ in 0..10 {
            a.emit(SimEvent::Issue);
        }
        // zero-cycle charges never enter the trace
        a.emit(SimEvent::FetchBubble { cycles: 0 });
        let (.., trace) = a.finish();
        assert_eq!(trace.len(), 4);
        // oldest-first: the surviving records are charges 7..=10
        assert_eq!(trace[0].cycle, 7);
        assert_eq!(trace[3].cycle, 10);
        assert!(trace.iter().all(|r| r.cat == Category::Unstalled));
    }

    #[test]
    fn external_sinks_observe_every_nonzero_charge() {
        struct CountSink(std::rc::Rc<std::cell::RefCell<Vec<ChargeRecord>>>);
        impl EventSink for CountSink {
            fn on_charge(&mut self, rec: &ChargeRecord) {
                self.0.borrow_mut().push(*rec);
            }
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut a = Attribution::new(1);
        a.add_sink(Box::new(CountSink(seen.clone())));
        a.emit(SimEvent::Issue);
        a.emit(SimEvent::StoreForward { cycles: 0 }); // zero: not delivered
        a.emit(SimEvent::StoreForward { cycles: 4 });
        drop(a.finish());
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[1].cat, Category::Micropipe);
        assert_eq!(seen[1].cycle, 5);
    }

    #[test]
    fn retire_and_branch_events_only_touch_counters() {
        let mut a = Attribution::new(1);
        a.emit(SimEvent::Retired(Retire::Useful));
        a.emit(SimEvent::Retired(Retire::Squashed));
        a.emit(SimEvent::Retired(Retire::Nop));
        a.emit(SimEvent::BranchExecuted);
        a.emit(SimEvent::CallExecuted);
        a.emit(SimEvent::SpecLoad);
        a.emit(SimEvent::DeferredLoad);
        a.emit(SimEvent::AdvLoad);
        a.emit(SimEvent::BranchPredicted {
            correct: true,
            flush_cycles: 6,
        });
        assert_eq!(a.total(), 0, "counter events must not charge cycles");
        let (acct, c, ..) = a.finish();
        assert_eq!(acct.total(), 0);
        assert_eq!(c.retired_useful, 1);
        assert_eq!(c.retired_squashed, 1);
        assert_eq!(c.retired_nops, 1);
        assert_eq!(c.dynamic_branches, 1);
        assert_eq!(c.calls, 1);
        assert_eq!(c.spec_loads, 1);
        assert_eq!(c.deferred_loads, 1);
        assert_eq!(c.adv_loads, 1);
        assert_eq!((c.branch_predictions, c.branch_mispredictions), (1, 0));
    }
}
