//! The in-order EPIC performance simulator.
//!
//! Executes [`epic_mach::MachProgram`] code functionally *and* charges
//! cycles to the paper's Fig. 5 categories. The core follows Itanium 2
//! semantics: issue groups execute atomically (all reads see pre-group
//! state, with the architected exception that a branch may consume a
//! compare result from its own group), a taken branch squashes the rest
//! of its group, predicated-off operations retire without effect, and
//! speculative loads defer faults to NaT. Timing is modeled by a
//! register scoreboard (loads are scheduled for the L1 hit; misses stall
//! consumers), an I-cache-fed front end decoupled by a 48-op buffer, a
//! pluggable branch predictor ([`crate::predict`], gshare by default), a
//! DTLB with hardware walks, the register stack engine, and the
//! general/sentinel speculation recovery models of paper Fig. 9.
//!
//! The dispatch loop contains *no accounting code*: every cycle cost and
//! counter bump is reported as a typed [`SimEvent`] to the
//! [`Attribution`] engine ([`crate::attrib`]), which arbitrates the
//! category, maintains the running clock, and builds the per-function
//! drill-down matrix.

use crate::attrib::{Attribution, FuncMatrix, KernelReason, Port, Retire, SimEvent, StallProducer};
use crate::caches::Hierarchy;
use crate::counters::{Counters, CycleAccounting, CATEGORIES};
use crate::predict::{AnyPredictor, BranchPredictor, BranchRecord, PredictorSpec};
use crate::rse::Rse;
use crate::tlb::Dtlb;
use epic_ir::interp::checksum;
use epic_ir::mem::{func_from_addr, Memory, STACK_TOP};
use epic_ir::{Opcode, Operand, Value, Vreg};
use epic_mach::{MachProgram, MachineConfig, Slot};
use std::collections::VecDeque;

/// Speculation recovery model (paper Fig. 9 / Sec. 4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SpecModel {
    /// Wild speculative loads complete via an expensive, uncacheable
    /// kernel page-table query (charged to kernel cycles).
    #[default]
    General,
    /// Speculative loads defer cheaply on DTLB miss; `chk` recovers.
    Sentinel,
}

/// Simulator options.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Machine configuration.
    pub config: MachineConfig,
    /// Hard cycle limit.
    pub fuel_cycles: u64,
    /// Speculation recovery model.
    pub spec_model: SpecModel,
    /// Keep the last N arbitrated charges in a ring-buffer trace
    /// (`SimResult::trace`); 0 disables tracing (the default).
    pub trace_capacity: usize,
    /// Exact cycle-accurate simulation (the default) or SimPoint-style
    /// sampled estimation (`crate::sample`).
    pub sample: crate::sample::SamplePolicy,
    /// Which branch predictor the core models (`crate::predict`); the
    /// default gshare reproduces the pre-zoo simulator bit for bit.
    pub predictor: PredictorSpec,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            config: MachineConfig::default(),
            fuel_cycles: 20_000_000_000,
            spec_model: SpecModel::General,
            trace_capacity: 0,
            sample: crate::sample::SamplePolicy::Exact,
            predictor: PredictorSpec::default(),
        }
    }
}

/// The class of an abnormal termination (what went wrong).
#[derive(Clone, Debug, PartialEq)]
pub enum TrapKind {
    /// Non-speculative access to an invalid address.
    MemFault(u64),
    /// Division by zero.
    DivByZero,
    /// Indirect call to a non-function address.
    BadCall(u64),
    /// Cycle budget exhausted.
    OutOfFuel,
    /// Deferred NaT consumed by a non-speculative side effect; the payload
    /// names the consuming operation ("store", "call", "out", …).
    NatConsumed(&'static str),
    /// Ill-formed machine code (compiler bug).
    Malformed(String),
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrapKind::MemFault(a) => write!(f, "memory fault at {a:#x}"),
            TrapKind::DivByZero => write!(f, "division by zero"),
            TrapKind::BadCall(a) => write!(f, "call to non-function {a:#x}"),
            TrapKind::OutOfFuel => write!(f, "cycle budget exhausted"),
            TrapKind::NatConsumed(w) => write!(f, "NaT consumed by {w}"),
            TrapKind::Malformed(w) => write!(f, "malformed machine code: {w}"),
        }
    }
}

/// Abnormal termination, located: which function and bundle trapped, and
/// at what cycle — structured so triage tooling (the fuzzer's failure
/// bucketing, shrinker progress checks) can classify without parsing
/// strings.
#[derive(Clone, Debug, PartialEq)]
pub struct SimTrap {
    /// What went wrong.
    pub kind: TrapKind,
    /// Name of the function executing when the trap fired.
    pub func: String,
    /// Bundle index of the issue group that trapped.
    pub bundle: usize,
    /// Total cycle count at the trap.
    pub cycle: u64,
}

impl SimTrap {
    /// Short stable key for failure triage ("mem-fault", "div0", …) —
    /// same kind, any location, maps to the same bucket.
    pub fn bucket(&self) -> &'static str {
        match self.kind {
            TrapKind::MemFault(_) => "mem-fault",
            TrapKind::DivByZero => "div0",
            TrapKind::BadCall(_) => "bad-call",
            TrapKind::OutOfFuel => "fuel",
            TrapKind::NatConsumed(_) => "nat",
            TrapKind::Malformed(_) => "malformed",
        }
    }
}

impl std::fmt::Display for SimTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in {} at bundle {}, cycle {}",
            self.kind, self.func, self.bundle, self.cycle
        )
    }
}

impl std::error::Error for SimTrap {}

/// Simulation results: functional output plus all measurements.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The `Out` stream.
    pub output: Vec<u64>,
    /// FNV-1a checksum of the output.
    pub checksum: u64,
    /// `main`'s return value.
    pub ret: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Fig. 5 cycle accounting.
    pub acct: CycleAccounting,
    /// Performance counters.
    pub counters: Counters,
    /// Per-function × per-category cycle attribution (the Fig. 10
    /// drill-down), indexed by `FuncId` row. Row totals are the old flat
    /// `cycles_by_func`; column totals reproduce `acct`.
    pub func_matrix: FuncMatrix,
    /// The most recent arbitrated charges when
    /// [`SimOptions::trace_capacity`] was nonzero; empty otherwise.
    pub trace: Vec<crate::attrib::ChargeRecord>,
    /// Sampling metadata when the run used
    /// [`SamplePolicy::Sampled`](crate::sample::SamplePolicy); `None` for
    /// exact runs. Cycles/acct/counters/matrix are *estimates* when this
    /// is `Some` (output, checksum, and ret are always exact).
    pub sample: Option<crate::sample::SampleInfo>,
}

impl SimResult {
    /// Verify the accounting identity: the category sum, the running
    /// total, and the per-function matrix (rows *and* columns) must all
    /// describe the same cycles. Returns a description of the first
    /// violation — the fuzzer's accounting-identity oracle and `epicc
    /// report` both call this.
    ///
    /// # Errors
    /// A human-readable description of the first violated identity.
    pub fn check_identity(&self) -> Result<(), String> {
        if self.acct.total() != self.cycles {
            return Err(format!(
                "category sum {} != total cycles {}",
                self.acct.total(),
                self.cycles
            ));
        }
        if self.func_matrix.total() != self.cycles {
            return Err(format!(
                "per-function matrix total {} != total cycles {}",
                self.func_matrix.total(),
                self.cycles
            ));
        }
        for cat in CATEGORIES {
            if self.func_matrix.col_total(cat) != self.acct.get(cat) {
                return Err(format!(
                    "matrix column {} = {} != aggregate {}",
                    cat.name(),
                    self.func_matrix.col_total(cat),
                    self.acct.get(cat)
                ));
            }
        }
        Ok(())
    }
}

#[derive(Clone)]
pub(crate) struct Frame {
    pub(crate) regs: Vec<Value>,
    pub(crate) ready: Vec<u64>,
    pub(crate) producer: Vec<StallProducer>,
    pub(crate) sp: u64,
    pub(crate) ret_pos: (usize, usize),
    pub(crate) ret_dst: Option<Vreg>,
}

impl Frame {
    pub(crate) fn new(nregs: usize, sp: u64) -> Frame {
        Frame {
            regs: vec![Value::default(); nregs],
            ready: vec![0; nregs],
            producer: vec![StallProducer::Other; nregs],
            sp,
            ret_pos: (usize::MAX, usize::MAX),
            ret_dst: None,
        }
    }
}

pub(crate) const NREGS: usize = (epic_mach::GR_WINDOW + epic_mach::PR_COUNT) as usize;

/// Run a compiled program.
///
/// # Errors
/// Returns a [`SimTrap`] on any runtime error; correct compiled workloads
/// never trap.
pub fn run(mp: &MachProgram, args: &[i64], opts: &SimOptions) -> Result<SimResult, SimTrap> {
    run_with_sinks(mp, args, opts, Vec::new())
}

/// [`run`] with caller-supplied [`EventSink`]s attached to the
/// attribution engine before dispatch starts. Sinks observe every
/// arbitrated charge; they are dropped (and may publish their totals —
/// see [`crate::tracesink::TraceSink`]) when the run completes. Under
/// [`SamplePolicy::Sampled`](crate::sample::SamplePolicy) sinks observe
/// only the detailed-simulated representative intervals.
///
/// # Errors
/// Same as [`run`].
pub fn run_with_sinks(
    mp: &MachProgram,
    args: &[i64],
    opts: &SimOptions,
    sinks: Vec<Box<dyn crate::attrib::EventSink>>,
) -> Result<SimResult, SimTrap> {
    match opts.sample {
        crate::sample::SamplePolicy::Exact => {
            let mut sim = Sim::new(mp, opts);
            for sink in sinks {
                sim.attrib.add_sink(sink);
            }
            sim.run(args)
        }
        crate::sample::SamplePolicy::Sampled {
            interval_len,
            max_clusters,
            warmup,
        } => crate::sample::run_sampled(mp, args, opts, interval_len, max_clusters, warmup, sinks),
    }
}

/// How a bounded [`Sim::exec`] call ended.
pub(crate) enum Exec {
    /// The program returned from `main` with this value.
    Done(u64),
    /// The op budget was reached; execution stopped at an issue-group
    /// boundary and can resume with another `exec` call.
    Paused,
}

pub(crate) struct Sim<'a> {
    pub(crate) mp: &'a MachProgram,
    pub(crate) cfg: MachineConfig,
    pub(crate) spec_model: SpecModel,
    pub(crate) fuel: u64,
    pub(crate) mem: Memory,
    pub(crate) hier: Hierarchy,
    pub(crate) pred: AnyPredictor,
    pub(crate) dtlb: Dtlb,
    pub(crate) rse: Rse,
    pub(crate) attrib: Attribution,
    pub(crate) output: Vec<u64>,
    pub(crate) ib_ops: f64,
    pub(crate) last_line: u64,
    pub(crate) recent_stores: VecDeque<(u64, u64)>,
    /// ALAT: (frame depth, value register) -> watched address range.
    pub(crate) alat: VecDeque<((usize, u32), u64, u64)>,
    pub(crate) depth: usize,
    /// Current frame, frame stack, and next issue-group position —
    /// fields (not `run` locals) so execution can pause and resume at
    /// group boundaries for sampled simulation.
    pub(crate) frame: Frame,
    pub(crate) stack: Vec<Frame>,
    pub(crate) pos: (usize, usize),
    /// Retired-slot count (real ops incl. squashed, excl. nops), the
    /// interval clock for `crate::sample`.
    pub(crate) ops: u64,
}

impl<'a> Sim<'a> {
    pub(crate) fn new(mp: &'a MachProgram, opts: &SimOptions) -> Sim<'a> {
        let mut mem = Memory::new();
        mem.init_globals(&mp.ir);
        Sim {
            mp,
            cfg: opts.config,
            spec_model: opts.spec_model,
            fuel: opts.fuel_cycles,
            mem,
            hier: Hierarchy::new(&opts.config),
            pred: AnyPredictor::from_spec(opts.predictor),
            dtlb: Dtlb::new(opts.config.dtlb_entries),
            rse: Rse::new(opts.config.rse_capacity, opts.config.rse_cycle_per_reg),
            attrib: Attribution::new(mp.funcs.len()).with_trace(opts.trace_capacity),
            output: Vec::new(),
            ib_ops: 0.0,
            last_line: u64::MAX,
            recent_stores: VecDeque::new(),
            alat: VecDeque::new(),
            depth: 0,
            frame: Frame::new(0, 0),
            stack: Vec::new(),
            pos: (0, 0),
            ops: 0,
        }
    }

    /// Wrap a [`TrapKind`] with the machine position `(func, bundle)` and
    /// the current cycle count.
    fn trap_at(&self, kind: TrapKind, pos: (usize, usize)) -> SimTrap {
        SimTrap {
            kind,
            func: self.mp.funcs[pos.0].name.clone(),
            bundle: pos.1,
            cycle: self.attrib.total(),
        }
    }

    fn run(mut self, args: &[i64]) -> Result<SimResult, SimTrap> {
        self.start(args);
        match self.exec(u64::MAX)? {
            Exec::Done(ret) => Ok(self.into_result(ret)),
            Exec::Paused => unreachable!("unbounded exec cannot pause"),
        }
    }

    /// Set up `main`'s frame, arguments, and RSE window. Must be called
    /// exactly once before [`Sim::exec`].
    pub(crate) fn start(&mut self, args: &[i64]) {
        let mp = self.mp;
        let entry = mp.ir.entry.index();
        let ef = &mp.funcs[entry];
        let mut frame = Frame::new(NREGS, STACK_TOP - ((ef.frame_size + 15) & !15));
        for (i, &r) in ef.param_regs.iter().enumerate() {
            frame.regs[r as usize] = Value::new(args.get(i).copied().unwrap_or(0) as u64);
        }
        self.frame = frame;
        self.pos = (entry, ef.entry);
        // start the RSE with main's window
        self.attrib.at(entry, ef.entry);
        let (regs, stall) = self.rse.call(ef.n_gr);
        self.attrib.emit(SimEvent::RseTraffic { regs, stall });
    }

    /// Package a finished run. `ret` is `main`'s return value.
    pub(crate) fn into_result(self, ret: u64) -> SimResult {
        let cycles = self.attrib.total();
        let (acct, counters, func_matrix, trace) = self.attrib.finish();
        SimResult {
            checksum: checksum(&self.output),
            output: self.output,
            ret,
            cycles,
            acct,
            counters,
            func_matrix,
            trace,
            sample: None,
        }
    }

    /// Dispatch issue groups until the program returns or `self.ops`
    /// reaches `op_budget` (checked at group boundaries, so a bundle —
    /// indeed a whole issue group — is never split). `u64::MAX` runs to
    /// completion.
    pub(crate) fn exec(&mut self, op_budget: u64) -> Result<Exec, SimTrap> {
        // reusable per-group write buffer (avoids a heap allocation per
        // simulated cycle)
        let mut writes: Vec<(Vreg, Value, u64, StallProducer)> = Vec::with_capacity(16);
        let mp = self.mp;

        loop {
            if self.ops >= op_budget {
                return Ok(Exec::Paused);
            }
            let pos = self.pos;
            if self.attrib.total() > self.fuel {
                return Err(self.trap_at(TrapKind::OutOfFuel, pos));
            }
            let (func_i, first_bundle) = pos;
            // attribute everything this group does — fetch, stall, issue,
            // recovery — to the function executing it
            self.attrib.at(func_i, first_bundle);
            let f = &mp.funcs[func_i];
            if first_bundle >= f.bundles.len() {
                return Err(self.trap_at(
                    TrapKind::Malformed(format!("fell off code at bundle {first_bundle}")),
                    pos,
                ));
            }
            // --- collect the issue group ---
            let mut end_bundle = first_bundle;
            while !f.bundles[end_bundle].stop {
                end_bundle += 1;
                if end_bundle >= f.bundles.len() {
                    return Err(self.trap_at(
                        TrapKind::Malformed("issue group runs off the code".into()),
                        pos,
                    ));
                }
            }
            let group_bundles = &f.bundles[first_bundle..=end_bundle];
            let group_size: usize = group_bundles.iter().map(|b| b.op_count()).sum();
            self.ops += group_size as u64;

            // --- front end: fetch the group's cache lines ---
            for k in 0..group_bundles.len() {
                let addr = f.bundle_addr(first_bundle + k);
                let line = addr / self.cfg.l1i.line;
                if line != self.last_line {
                    self.last_line = line;
                    let (lat, lvl) = self.hier.fetch_inst(addr);
                    self.attrib.emit(SimEvent::CacheAccess {
                        port: Port::Inst,
                        level: lvl,
                    });
                    let extra = lat.saturating_sub(self.cfg.l1i.latency);
                    if extra > 0 {
                        // the decoupling buffer hides what it has buffered
                        let per_cycle = group_size.max(1) as f64;
                        let hidden = (self.ib_ops / per_cycle).min(extra as f64);
                        self.ib_ops -= hidden * per_cycle;
                        let bubble = extra - hidden as u64;
                        self.attrib.emit(SimEvent::FetchBubble { cycles: bubble });
                    }
                }
            }
            // refill the buffer when streaming
            self.ib_ops =
                (self.ib_ops + 6.0 - group_size as f64).clamp(0.0, self.cfg.ib_ops as f64);

            // --- scoreboard: group issues when all sources are ready ---
            let now0 = self.attrib.total();
            let mut need = now0;
            let mut blame = StallProducer::Other;
            for b in group_bundles {
                for s in &b.slots {
                    let Slot::Op(op) = s else { continue };
                    for u in op.uses() {
                        let mut t = self.frame.ready[u.index()];
                        if op.is_branch() && op.guard == Some(u) {
                            t = t.saturating_sub(1); // predicate->branch forwarding
                        }
                        if t > need {
                            need = t;
                            blame = self.frame.producer[u.index()];
                        }
                    }
                }
            }
            if need > now0 {
                self.attrib.emit(SimEvent::ScoreboardStall {
                    producer: blame,
                    cycles: need - now0,
                });
            }
            let issue = self.attrib.total();

            // --- execute (two-phase: reads see pre-group state) ---
            writes.clear();
            let mut next_pos = (func_i, end_bundle + 1);
            let mut transfer = false;
            let mut call_push: Option<Frame> = None;
            let mut program_done: Option<u64> = None;
            'slots: for (k, b) in group_bundles.iter().enumerate() {
                for s in &b.slots {
                    let op = match s {
                        Slot::Op(op) => op,
                        Slot::Nop => {
                            self.attrib.emit(SimEvent::Retired(Retire::Nop));
                            continue;
                        }
                        Slot::LContinuation => continue,
                    };
                    // guard evaluation
                    let guard_val = match op.guard {
                        None => true,
                        Some(g) => {
                            let v = if op.is_branch() {
                                // may consume this group's compare
                                writes
                                    .iter()
                                    .rev()
                                    .find(|(r, ..)| *r == g)
                                    .map(|(_, v, ..)| *v)
                                    .unwrap_or(self.frame.regs[g.index()])
                            } else {
                                self.frame.regs[g.index()]
                            };
                            v.is_true()
                        }
                    };
                    if op.is_branch() && op.guard.is_some() {
                        // conditional branch: predict on both outcomes
                        let addr = f.bundle_addr(first_bundle + k);
                        let correct = self.pred.observe(addr, guard_val);
                        self.attrib.emit(SimEvent::BranchPredicted {
                            correct,
                            flush_cycles: self.cfg.mispredict_penalty,
                        });
                        if self.attrib.wants_branches() {
                            self.attrib.branch(BranchRecord::Cond {
                                addr,
                                taken: guard_val,
                            });
                        }
                    }
                    if !guard_val {
                        self.attrib.emit(SimEvent::Retired(Retire::Squashed));
                        continue;
                    }
                    self.attrib.emit(SimEvent::Retired(Retire::Useful));
                    macro_rules! ev {
                        ($o:expr) => {
                            eval_operand(&self.frame, mp, $o)
                        };
                    }
                    match op.opcode {
                        Opcode::Add
                        | Opcode::Sub
                        | Opcode::Mul
                        | Opcode::And
                        | Opcode::Or
                        | Opcode::Xor
                        | Opcode::Shl
                        | Opcode::Shr
                        | Opcode::Sar => {
                            let a = ev!(&op.srcs[0]);
                            let c = ev!(&op.srcs[1]);
                            let v = Value::lift2(a, c, |x, y| alu(op.opcode, x, y));
                            let kind = if matches!(op.opcode, Opcode::Mul) {
                                StallProducer::Float
                            } else {
                                StallProducer::Other
                            };
                            let lat = epic_mach::units::latency(op) as u64;
                            writes.push((op.dsts[0], v, issue + lat, kind));
                        }
                        Opcode::Div | Opcode::Rem => {
                            let a = ev!(&op.srcs[0]);
                            let c = ev!(&op.srcs[1]);
                            let v = if a.nat || c.nat {
                                Value::NAT
                            } else if c.bits == 0 {
                                return Err(self.trap_at(TrapKind::DivByZero, pos));
                            } else {
                                let (x, y) = (a.bits as i64, c.bits as i64);
                                Value::new(if matches!(op.opcode, Opcode::Div) {
                                    x.wrapping_div(y) as u64
                                } else {
                                    x.wrapping_rem(y) as u64
                                })
                            };
                            let lat = epic_mach::units::latency(op) as u64;
                            writes.push((op.dsts[0], v, issue + lat, StallProducer::Float));
                        }
                        Opcode::Cmp(kind) => {
                            let a = ev!(&op.srcs[0]);
                            let c = ev!(&op.srcs[1]);
                            let (t, fv) = if a.nat || c.nat {
                                (0u64, 0u64)
                            } else {
                                let r = kind.eval(a.bits, c.bits);
                                (r as u64, !r as u64)
                            };
                            writes.push((
                                op.dsts[0],
                                Value::new(t),
                                issue + 1,
                                StallProducer::Other,
                            ));
                            if let Some(d1) = op.dsts.get(1) {
                                writes.push((*d1, Value::new(fv), issue + 1, StallProducer::Other));
                            }
                        }
                        Opcode::Mov => {
                            let v = ev!(&op.srcs[0]);
                            writes.push((op.dsts[0], v, issue + 1, StallProducer::Other));
                        }
                        Opcode::Ld(size) => {
                            let addr = ev!(&op.srcs[0]);
                            let (v, ready) = self
                                .do_load(addr, size.bytes(), op.spec, issue)
                                .map_err(|k| self.trap_at(k, pos))?;
                            if op.adv && !addr.nat && !v.nat {
                                self.attrib.emit(SimEvent::AdvLoad);
                                self.alat_insert(op.dsts[0].0, addr.bits, size.bytes());
                            }
                            writes.push((op.dsts[0], v, ready, StallProducer::Load));
                        }
                        Opcode::ChkA(size) => {
                            let v = ev!(&op.srcs[0]);
                            let key = match op.srcs[0] {
                                Operand::Reg(r) => (self.depth, r.0),
                                _ => unreachable!("verified chk.a shape"),
                            };
                            let hit = self.alat.iter().any(|(k, ..)| *k == key) && !v.nat;
                            if hit {
                                writes.push((op.dsts[0], v, issue + 1, StallProducer::Other));
                            } else {
                                self.attrib.emit(SimEvent::AlatMiss {
                                    cycles: self.cfg.alat_recovery_cycles,
                                });
                                let (rv, ready) = self
                                    .do_load(ev!(&op.srcs[1]), size.bytes(), false, issue)
                                    .map_err(|k| self.trap_at(k, pos))?;
                                writes.push((op.dsts[0], rv, ready, StallProducer::Load));
                            }
                        }
                        Opcode::Chk(size) => {
                            let v = ev!(&op.srcs[0]);
                            if v.nat {
                                self.attrib.emit(SimEvent::ChkRecovery {
                                    cycles: self.cfg.chk_recovery_cycles,
                                });
                                let (rv, ready) = self
                                    .do_load(ev!(&op.srcs[1]), size.bytes(), false, issue)
                                    .map_err(|k| self.trap_at(k, pos))?;
                                writes.push((op.dsts[0], rv, ready, StallProducer::Load));
                            } else {
                                writes.push((op.dsts[0], v, issue + 1, StallProducer::Other));
                            }
                        }
                        Opcode::St(size) => {
                            let addr = ev!(&op.srcs[0]);
                            let val = ev!(&op.srcs[1]);
                            if addr.nat || val.nat {
                                return Err(self.trap_at(TrapKind::NatConsumed("store"), pos));
                            }
                            if !self.dtlb.access(addr.bits) {
                                self.attrib.emit(SimEvent::DtlbWalk {
                                    cycles: self.cfg.tlb_walk_cycles,
                                });
                            }
                            self.mem
                                .write(addr.bits, size.bytes(), val.bits)
                                .map_err(|e| self.trap_at(TrapKind::MemFault(e.addr), pos))?;
                            let (_, lvl) = self.hier.access_data(addr.bits);
                            self.attrib.emit(SimEvent::CacheAccess {
                                port: Port::Data,
                                level: lvl,
                            });
                            if self.recent_stores.len() == self.cfg.store_buffer {
                                self.recent_stores.pop_front();
                            }
                            self.recent_stores.push_back((addr.bits >> 3, issue));
                            // stores invalidate overlapping ALAT entries
                            let (sa, sz) = (addr.bits, size.bytes());
                            self.alat
                                .retain(|&(_, ea, es)| sa + sz <= ea || ea + es <= sa);
                        }
                        Opcode::Br => {
                            self.attrib.emit(SimEvent::BranchExecuted);
                            let target = op.srcs[0].label().expect("branch label");
                            let bi = f.block_entry[target.index()].ok_or_else(|| {
                                self.trap_at(
                                    TrapKind::Malformed(format!("no code for {target}")),
                                    pos,
                                )
                            })?;
                            next_pos = (func_i, bi);
                            transfer = true;
                            break 'slots;
                        }
                        Opcode::Call => {
                            let callee = match op.srcs[0] {
                                Operand::FuncAddr(t) => t.index(),
                                ref o => {
                                    let v = ev!(o);
                                    if v.nat {
                                        return Err(
                                            self.trap_at(TrapKind::NatConsumed("call"), pos)
                                        );
                                    }
                                    func_from_addr(v.bits)
                                        .ok_or_else(|| {
                                            self.trap_at(TrapKind::BadCall(v.bits), pos)
                                        })?
                                        .index()
                                }
                            };
                            self.attrib.emit(SimEvent::CallExecuted);
                            self.attrib.emit(SimEvent::BranchExecuted);
                            let cf = &mp.funcs[callee];
                            let (regs, stall) = self.rse.call(cf.n_gr);
                            self.attrib.emit(SimEvent::RseTraffic { regs, stall });
                            let ret_addr = f.bundle_addr(end_bundle + 1);
                            self.pred.push_return(ret_addr);
                            if self.attrib.wants_branches() {
                                self.attrib.branch(BranchRecord::Call { ret_addr });
                            }
                            let sp = self.frame.sp - ((cf.frame_size + 15) & !15);
                            if sp < STACK_TOP - epic_ir::mem::STACK_MAX {
                                return Err(self.trap_at(TrapKind::MemFault(sp), pos));
                            }
                            let mut nf = Frame::new(NREGS, sp);
                            for (ai, &pr) in cf.param_regs.iter().enumerate() {
                                if let Some(a) = op.srcs.get(1 + ai) {
                                    nf.regs[pr as usize] = ev!(a);
                                    nf.ready[pr as usize] = issue + 1;
                                }
                            }
                            nf.ret_pos = (func_i, end_bundle + 1);
                            nf.ret_dst = op.dsts.first().copied();
                            self.depth += 1;
                            next_pos = (callee, cf.entry);
                            transfer = true;
                            call_push = Some(nf);
                            break 'slots;
                        }
                        Opcode::Ret => {
                            self.attrib.emit(SimEvent::BranchExecuted);
                            let val = op.srcs.first().map(|o| ev!(o)).unwrap_or(Value::new(0));
                            let (regs, stall) = self.rse.ret();
                            self.attrib.emit(SimEvent::RseTraffic { regs, stall });
                            match self.stack.pop() {
                                Some(mut caller) => {
                                    // the return-address stack predicts
                                    // returns; underflow mispredicts
                                    let expected = mp.funcs[self.frame.ret_pos.0]
                                        .bundle_addr(self.frame.ret_pos.1);
                                    if !self.pred.pop_return(expected) {
                                        self.attrib.emit(SimEvent::ReturnMispredicted {
                                            flush_cycles: self.cfg.mispredict_penalty,
                                        });
                                    }
                                    if self.attrib.wants_branches() {
                                        self.attrib.branch(BranchRecord::Ret { actual: expected });
                                    }
                                    if let Some(d) = self.frame.ret_dst {
                                        caller.regs[d.index()] = val;
                                        caller.ready[d.index()] = issue + 1;
                                        caller.producer[d.index()] = StallProducer::Other;
                                    }
                                    next_pos = self.frame.ret_pos;
                                    self.frame = caller;
                                    transfer = true;
                                    let d = self.depth;
                                    self.alat.retain(|&((fd, _), ..)| fd < d);
                                    self.depth -= 1;
                                    break 'slots;
                                }
                                None => {
                                    if val.nat {
                                        return Err(
                                            self.trap_at(TrapKind::NatConsumed("main return"), pos)
                                        );
                                    }
                                    program_done = Some(val.bits);
                                    break 'slots;
                                }
                            }
                        }
                        Opcode::Out => {
                            let v = ev!(&op.srcs[0]);
                            if v.nat {
                                return Err(self.trap_at(TrapKind::NatConsumed("out"), pos));
                            }
                            self.output.push(v.bits);
                            self.attrib.emit(SimEvent::Kernel {
                                reason: KernelReason::Syscall,
                                cycles: self.cfg.syscall_kernel_cycles,
                            });
                        }
                        Opcode::Alloc => {
                            let n = ev!(&op.srcs[0]);
                            if n.nat {
                                return Err(self.trap_at(TrapKind::NatConsumed("alloc"), pos));
                            }
                            let p = self.mem.alloc(n.bits);
                            self.attrib.emit(SimEvent::Kernel {
                                reason: KernelReason::Alloc,
                                cycles: self.cfg.syscall_kernel_cycles / 2,
                            });
                            writes.push((
                                op.dsts[0],
                                Value::new(p),
                                issue + 2,
                                StallProducer::Other,
                            ));
                        }
                        Opcode::Nop => {
                            self.attrib.emit(SimEvent::Retired(Retire::Nop));
                        }
                    }
                }
            }
            // --- commit ---
            if call_push.is_none() {
                for (r, v, ready, kind) in writes.drain(..) {
                    self.frame.regs[r.index()] = v;
                    self.frame.ready[r.index()] = ready;
                    self.frame.producer[r.index()] = kind;
                }
            }
            // (on a call, writes belong to the *caller* frame; but a call
            // is alone in its group, so only argument evaluation happened)
            if let Some(nf) = call_push {
                self.stack.push(std::mem::replace(&mut self.frame, nf));
            }
            self.attrib.emit(SimEvent::Issue);
            if let Some(ret) = program_done {
                return Ok(Exec::Done(ret));
            }
            if !transfer {
                // fall through to the next group of the same block
                self.pos = (func_i, end_bundle + 1);
            } else {
                self.pos = next_pos;
                // control transfers restart the fetch line
                self.last_line = u64::MAX;
            }
        }
    }

    /// Install an ALAT entry (FIFO replacement at capacity).
    fn alat_insert(&mut self, reg: u32, addr: u64, size: u64) {
        let key = (self.depth, reg);
        self.alat.retain(|(k, ..)| *k != key);
        if self.alat.len() >= self.cfg.alat_entries {
            self.alat.pop_front();
        }
        self.alat.push_back((key, addr, size));
    }

    /// Execute a load's memory access, returning `(value, ready_time)`.
    /// Traps come back as a bare [`TrapKind`]; the caller attaches the
    /// machine position via [`Sim::trap_at`].
    fn do_load(
        &mut self,
        addr: Value,
        bytes: u64,
        spec: bool,
        issue: u64,
    ) -> Result<(Value, u64), TrapKind> {
        if addr.nat {
            return if spec {
                self.attrib.emit(SimEvent::SpecLoad);
                self.attrib.emit(SimEvent::DeferredLoad);
                Ok((Value::NAT, issue + 1))
            } else {
                Err(TrapKind::NatConsumed("load"))
            };
        }
        let a = addr.bits;
        if spec {
            self.attrib.emit(SimEvent::SpecLoad);
        }
        if !self.mem.is_valid(a) {
            if !spec {
                return Err(TrapKind::MemFault(a));
            }
            self.attrib.emit(SimEvent::DeferredLoad);
            if Memory::is_null_page(a) {
                // architected NaT page: cheap in both models
                self.attrib.emit(SimEvent::Kernel {
                    reason: KernelReason::NatPage,
                    cycles: self.cfg.nat_page_cycles,
                });
                return Ok((Value::NAT, issue + 1));
            }
            match self.spec_model {
                SpecModel::General => {
                    // wild load: traverse the page-mapping hierarchy in the
                    // kernel; results are not cached (paper Sec. 4.3)
                    self.attrib.emit(SimEvent::Kernel {
                        reason: KernelReason::WildLoad,
                        cycles: self.cfg.wild_load_kernel_cycles,
                    });
                    Ok((Value::NAT, issue + 1))
                }
                SpecModel::Sentinel => {
                    // early deferral: only the DTLB was probed
                    Ok((Value::NAT, issue + 1))
                }
            }
        } else {
            if self.spec_model == SpecModel::Sentinel && spec && !self.dtlb.probe(a) {
                // sentinel ld.s defers on DTLB miss without walking
                self.attrib.emit(SimEvent::DeferredLoad);
                return Ok((Value::NAT, issue + 1));
            }
            if !self.dtlb.access(a) {
                self.attrib.emit(SimEvent::DtlbWalk {
                    cycles: self.cfg.tlb_walk_cycles,
                });
            }
            let v = self
                .mem
                .read(a, bytes)
                .map_err(|e| TrapKind::MemFault(e.addr))?;
            let (lat, lvl) = self.hier.access_data(a);
            self.attrib.emit(SimEvent::CacheAccess {
                port: Port::Data,
                level: lvl,
            });
            // store-to-load forwarding conflict (micropipe)
            if self
                .recent_stores
                .iter()
                .any(|&(sa, sc)| sa == a >> 3 && issue.saturating_sub(sc) <= 2)
            {
                self.attrib.emit(SimEvent::StoreForward {
                    cycles: self.cfg.store_forward_stall,
                });
            }
            Ok((Value::new(v), issue + lat))
        }
    }
}

/// Evaluate a non-label operand against a frame (pre-group register
/// state, as IA-64 issue groups require).
pub(crate) fn eval_operand(frame: &Frame, mp: &MachProgram, o: &Operand) -> Value {
    match *o {
        Operand::Reg(v) => frame.regs[v.index()],
        Operand::Imm(i) => Value::new(i as u64),
        Operand::Global(g) => Value::new(mp.ir.globals[g.index()].addr),
        Operand::FuncAddr(t) => Value::new(epic_ir::mem::func_addr(t)),
        Operand::FrameAddr(off) => Value::new(frame.sp + off),
        Operand::Label(_) => unreachable!("label evaluated as value"),
    }
}

#[inline]
pub(crate) fn alu(opcode: Opcode, a: u64, b: u64) -> u64 {
    match opcode {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a << (b & 63),
        Opcode::Shr => a >> (b & 63),
        Opcode::Sar => ((a as i64) >> (b & 63)) as u64,
        _ => unreachable!("non-ALU opcode"),
    }
}
