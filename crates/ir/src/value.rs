//! Runtime values with IA-64 NaT ("not a thing") deferral bits.

/// A 64-bit runtime value plus its NaT bit.
///
/// A speculative load that faults writes NaT into its destination; NaT
/// propagates through computation so that a deferred exception surfaces only
/// if the result is genuinely consumed (general speculation) or at a `chk`
/// (sentinel speculation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Value {
    /// The payload (garbage when `nat` is set).
    pub bits: u64,
    /// Deferred-exception token.
    pub nat: bool,
}

impl Value {
    /// A normal value.
    pub fn new(bits: u64) -> Value {
        Value { bits, nat: false }
    }

    /// The NaT token.
    pub const NAT: Value = Value { bits: 0, nat: true };

    /// Truthiness for guards and conditional branches (NaT is never true;
    /// a NaT consumed by a *non-speculative* control decision is a deferred
    /// exception surfacing, which callers must check separately).
    pub fn is_true(self) -> bool {
        !self.nat && self.bits != 0
    }

    /// Combine two inputs through a pure operator, propagating NaT.
    pub fn lift2(a: Value, b: Value, f: impl FnOnce(u64, u64) -> u64) -> Value {
        if a.nat || b.nat {
            Value::NAT
        } else {
            Value::new(f(a.bits, b.bits))
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::new(v as u64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_propagates_through_lift2() {
        let v = Value::lift2(Value::new(2), Value::NAT, |a, b| a + b);
        assert!(v.nat);
        let v = Value::lift2(Value::new(2), Value::new(3), |a, b| a + b);
        assert_eq!(v, Value::new(5));
    }

    #[test]
    fn nat_is_never_true() {
        assert!(!Value::NAT.is_true());
        assert!(Value::new(1).is_true());
        assert!(!Value::new(0).is_true());
    }
}
