//! A small dense bitset used by the dataflow analyses.

/// Fixed-capacity dense bitset over `usize` indices.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` elements.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`. Returns true if newly inserted.
    ///
    /// # Panics
    /// Panics if `i` is out of capacity.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bitset index {i} out of capacity {}",
            self.len
        );
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let newly = *w & bit == 0;
        *w |= bit;
        newly
    }

    /// Remove `i`.
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`. Returns true if `self` changed.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Does `self` intersect `other`?
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// True if no elements are present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a bitset sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitSet {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        s.remove(129);
        assert!(!s.contains(129));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(3);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(3));
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [5usize, 1, 70].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 70]);
    }

    #[test]
    fn subtract_and_intersects() {
        let mut a: BitSet = [1usize, 2, 3].into_iter().collect();
        let mut b = BitSet::new(4);
        b.insert(2);
        assert!(a.intersects(&b));
        a.subtract(&b);
        assert!(!a.contains(2));
        assert!(!a.intersects(&b));
    }
}
