//! Flat 64-bit memory model shared by the reference interpreter and the
//! performance simulator.
//!
//! The address space is divided into fixed regions (all little-endian):
//!
//! | Region   | Range                               | Notes                      |
//! |----------|-------------------------------------|----------------------------|
//! | NULL     | `[0, PAGE_SIZE)`                    | never mapped (NaT page)    |
//! | funcs    | `FUNC_ADDR_BASE + 16*FuncId`        | call targets only          |
//! | globals  | `[GLOBAL_BASE, globals_end)`        | from program layout        |
//! | heap     | `[HEAP_BASE, brk)`                  | bump allocation            |
//! | stack    | `[STACK_TOP - STACK_MAX, STACK_TOP)`| grows downward             |
//!
//! Accesses outside every region *fault*: a non-speculative access traps
//! (program error), while a speculative load defers to NaT — on the paper's
//! general-speculation model such "wild loads" also traverse the page-table
//! hierarchy at great expense (Sec. 4.3), which the simulator charges to
//! kernel cycles.

use crate::types::FuncId;
use std::collections::HashMap;

/// Page size for both the memory map and the simulated DTLB.
pub const PAGE_SIZE: u64 = 4096;
/// Base of the global-variable region.
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Base of the heap region.
pub const HEAP_BASE: u64 = 0x2000_0000;
/// Heap region hard limit.
pub const HEAP_MAX: u64 = 0x6000_0000;
/// Top of the downward-growing stack.
pub const STACK_TOP: u64 = 0x7FF0_0000;
/// Maximum stack size in bytes.
pub const STACK_MAX: u64 = 16 << 20;
/// Base of the (unmapped) function-address region.
pub const FUNC_ADDR_BASE: u64 = 0x0F00_0000;

/// The runtime "address" of a function, used for indirect calls.
pub fn func_addr(f: FuncId) -> u64 {
    FUNC_ADDR_BASE + 16 * f.0 as u64
}

/// Recover a function id from an address produced by [`func_addr`].
pub fn func_from_addr(addr: u64) -> Option<FuncId> {
    if (FUNC_ADDR_BASE..GLOBAL_BASE).contains(&addr) && (addr - FUNC_ADDR_BASE).is_multiple_of(16) {
        Some(FuncId(((addr - FUNC_ADDR_BASE) / 16) as u32))
    } else {
        None
    }
}

/// A memory access fault (address outside every valid region).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting address.
    pub addr: u64,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory fault at {:#x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// Sparse paged memory with region-validity checking.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    /// Current heap break; [`HEAP_BASE`]`..brk` is valid heap.
    pub brk: u64,
    /// End of the global region (set from the program's layout).
    pub globals_end: u64,
}

impl Memory {
    /// Fresh memory with an empty heap and no globals.
    pub fn new() -> Memory {
        Memory {
            pages: HashMap::new(),
            brk: HEAP_BASE,
            globals_end: GLOBAL_BASE,
        }
    }

    /// Initialize globals from a program (which must already have had
    /// [`crate::Program::assign_layout`] run).
    pub fn init_globals(&mut self, prog: &crate::Program) {
        let mut end = GLOBAL_BASE;
        for g in &prog.globals {
            end = end.max(g.addr + g.size);
            for (i, &byte) in g.init.iter().enumerate() {
                self.write_byte(g.addr + i as u64, byte);
            }
        }
        self.globals_end = (end + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
    }

    /// Is `addr` within some valid region (mappable on demand)?
    pub fn is_valid(&self, addr: u64) -> bool {
        (GLOBAL_BASE..self.globals_end).contains(&addr)
            || (HEAP_BASE..self.brk).contains(&addr)
            || (STACK_TOP - STACK_MAX..STACK_TOP).contains(&addr)
    }

    /// Is `addr` in the architected NULL page? (The simulator gives these a
    /// cheap 2-cycle NaT response rather than a full page walk.)
    pub fn is_null_page(addr: u64) -> bool {
        addr < PAGE_SIZE
    }

    /// Bump-allocate `n` bytes from the heap (16-byte aligned), returning
    /// the base address.
    ///
    /// # Panics
    /// Panics if the heap region is exhausted (workloads are sized to fit).
    pub fn alloc(&mut self, n: u64) -> u64 {
        let base = self.brk;
        let n = (n.max(1) + 15) & !15;
        self.brk += n;
        assert!(self.brk <= HEAP_MAX, "simulated heap exhausted");
        base
    }

    fn write_byte(&mut self, addr: u64, byte: u8) {
        let page = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = byte;
    }

    fn read_byte(&self, addr: u64) -> u8 {
        self.pages
            .get(&(addr / PAGE_SIZE))
            .map_or(0, |p| p[(addr % PAGE_SIZE) as usize])
    }

    /// Read `size` bytes at `addr`, zero-extended.
    ///
    /// # Errors
    /// Faults if any accessed byte lies outside a valid region.
    pub fn read(&self, addr: u64, size: u64) -> Result<u64, MemFault> {
        for i in 0..size {
            if !self.is_valid(addr.wrapping_add(i)) {
                return Err(MemFault {
                    addr: addr.wrapping_add(i),
                });
            }
        }
        let mut v = 0u64;
        for i in (0..size).rev() {
            v = (v << 8) | self.read_byte(addr.wrapping_add(i)) as u64;
        }
        Ok(v)
    }

    /// Write the low `size` bytes of `val` at `addr`.
    ///
    /// # Errors
    /// Faults if any accessed byte lies outside a valid region.
    pub fn write(&mut self, addr: u64, size: u64, val: u64) -> Result<(), MemFault> {
        for i in 0..size {
            if !self.is_valid(addr.wrapping_add(i)) {
                return Err(MemFault {
                    addr: addr.wrapping_add(i),
                });
            }
        }
        for i in 0..size {
            self.write_byte(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_mem() -> Memory {
        Memory::new()
    }

    #[test]
    fn round_trip_all_sizes() {
        let mut m = stack_mem();
        let a = STACK_TOP - 64;
        for size in [1u64, 2, 4, 8] {
            m.write(a, size, 0xDEAD_BEEF_CAFE_F00D).unwrap();
            let v = m.read(a, size).unwrap();
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * size)) - 1
            };
            assert_eq!(v, 0xDEAD_BEEF_CAFE_F00D & mask);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut m = stack_mem();
        let a = STACK_TOP - PAGE_SIZE - 4; // straddles a page boundary
        m.write(a, 8, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read(a, 8).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn wild_access_faults() {
        let mut m = stack_mem();
        assert_eq!(m.read(0x1234, 8), Err(MemFault { addr: 0x1234 }));
        assert!(m.write(0x8000_0000, 8, 1).is_err());
        assert!(m.read(0, 1).is_err()); // NULL page
        assert!(Memory::is_null_page(8));
    }

    #[test]
    fn heap_alloc_extends_validity() {
        let mut m = stack_mem();
        assert!(!m.is_valid(HEAP_BASE));
        let p = m.alloc(100);
        assert_eq!(p, HEAP_BASE);
        assert!(m.is_valid(p + 99));
        assert!(!m.is_valid(p + 112)); // rounded to 112? 100 -> 112 aligned
        let q = m.alloc(1);
        assert_eq!(q, HEAP_BASE + 112);
    }

    #[test]
    fn func_addr_round_trip() {
        let f = FuncId(7);
        assert_eq!(func_from_addr(func_addr(f)), Some(f));
        assert_eq!(func_from_addr(0x42), None);
        assert_eq!(func_from_addr(func_addr(f) + 1), None);
    }

    #[test]
    fn uninitialized_valid_memory_reads_zero() {
        let m = stack_mem();
        assert_eq!(m.read(STACK_TOP - 8, 8).unwrap(), 0);
    }
}
