//! Flat 64-bit memory model shared by the reference interpreter and the
//! performance simulator.
//!
//! The address space is divided into fixed regions (all little-endian):
//!
//! | Region   | Range                               | Notes                      |
//! |----------|-------------------------------------|----------------------------|
//! | NULL     | `[0, PAGE_SIZE)`                    | never mapped (NaT page)    |
//! | funcs    | `FUNC_ADDR_BASE + 16*FuncId`        | call targets only          |
//! | globals  | `[GLOBAL_BASE, globals_end)`        | from program layout        |
//! | heap     | `[HEAP_BASE, brk)`                  | bump allocation            |
//! | stack    | `[STACK_TOP - STACK_MAX, STACK_TOP)`| grows downward             |
//!
//! Accesses outside every region *fault*: a non-speculative access traps
//! (program error), while a speculative load defers to NaT — on the paper's
//! general-speculation model such "wild loads" also traverse the page-table
//! hierarchy at great expense (Sec. 4.3), which the simulator charges to
//! kernel cycles.

use crate::types::FuncId;
use std::sync::Arc;

/// Page size for both the memory map and the simulated DTLB.
pub const PAGE_SIZE: u64 = 4096;
/// Base of the global-variable region.
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Base of the heap region.
pub const HEAP_BASE: u64 = 0x2000_0000;
/// Heap region hard limit.
pub const HEAP_MAX: u64 = 0x6000_0000;
/// Top of the downward-growing stack.
pub const STACK_TOP: u64 = 0x7FF0_0000;
/// Maximum stack size in bytes.
pub const STACK_MAX: u64 = 16 << 20;
/// Base of the (unmapped) function-address region.
pub const FUNC_ADDR_BASE: u64 = 0x0F00_0000;

/// The runtime "address" of a function, used for indirect calls.
pub fn func_addr(f: FuncId) -> u64 {
    FUNC_ADDR_BASE + 16 * f.0 as u64
}

/// Recover a function id from an address produced by [`func_addr`].
pub fn func_from_addr(addr: u64) -> Option<FuncId> {
    if (FUNC_ADDR_BASE..GLOBAL_BASE).contains(&addr) && (addr - FUNC_ADDR_BASE).is_multiple_of(16) {
        Some(FuncId(((addr - FUNC_ADDR_BASE) / 16) as u32))
    } else {
        None
    }
}

/// A memory access fault (address outside every valid region).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting address.
    pub addr: u64,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory fault at {:#x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// One simulated page.
type Page = [u8; PAGE_SIZE as usize];

/// Base of the stack region (the lowest valid stack address).
const STACK_BASE: u64 = STACK_TOP - STACK_MAX;

/// Lazily-populated flat page table for one contiguous region: page
/// lookup is a subtract, a shift, and an index — no hashing. Missing
/// entries read as zero.
#[derive(Clone, Debug, Default)]
struct PageTable {
    pages: Vec<Option<Arc<Page>>>,
}

impl PageTable {
    #[inline]
    fn get(&self, index: u64) -> Option<&Page> {
        match self.pages.get(index as usize) {
            Some(Some(p)) => Some(p),
            _ => None,
        }
    }

    /// The page at `index`, materializing it (and the table up to it) on
    /// first write. Copy-on-write: a shared page is cloned before any
    /// mutation.
    fn get_mut(&mut self, index: u64) -> &mut Page {
        let i = index as usize;
        if i >= self.pages.len() {
            self.pages.resize(i + 1, None);
        }
        Arc::make_mut(self.pages[i].get_or_insert_with(|| Arc::new([0u8; PAGE_SIZE as usize])))
    }
}

/// Sparse paged memory with region-validity checking.
///
/// Each region (globals, heap, stack) has its own flat page table, so
/// the load/store hot path is branch + index rather than a hash lookup.
/// Pages are reference-counted copy-on-write: `clone` shares every page
/// and a later write re-materializes only the touched page, so interval
/// snapshots in `epic_sim::sample` cost O(resident pages) pointer bumps
/// rather than a deep copy.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    globals: PageTable,
    heap: PageTable,
    stack: PageTable,
    /// Current heap break; [`HEAP_BASE`]`..brk` is valid heap.
    pub brk: u64,
    /// End of the global region (set from the program's layout).
    pub globals_end: u64,
}

impl Memory {
    /// The page table owning `addr` and the page index within it.
    /// `None` for addresses outside every storage region (NULL page,
    /// function addresses, unmapped gaps). Storage regions are *static*
    /// bounds — validity (`brk`, `globals_end`) is checked separately.
    #[inline]
    fn table(&self, addr: u64) -> Option<(&PageTable, u64)> {
        if (HEAP_BASE..HEAP_MAX).contains(&addr) {
            Some((&self.heap, (addr - HEAP_BASE) / PAGE_SIZE))
        } else if addr >= STACK_BASE && addr < STACK_TOP {
            Some((&self.stack, (addr - STACK_BASE) / PAGE_SIZE))
        } else if (GLOBAL_BASE..HEAP_BASE).contains(&addr) {
            Some((&self.globals, (addr - GLOBAL_BASE) / PAGE_SIZE))
        } else {
            None
        }
    }

    /// Mutable variant of [`Memory::table`].
    #[inline]
    fn table_mut(&mut self, addr: u64) -> Option<(&mut PageTable, u64)> {
        if (HEAP_BASE..HEAP_MAX).contains(&addr) {
            Some((&mut self.heap, (addr - HEAP_BASE) / PAGE_SIZE))
        } else if addr >= STACK_BASE && addr < STACK_TOP {
            Some((&mut self.stack, (addr - STACK_BASE) / PAGE_SIZE))
        } else if (GLOBAL_BASE..HEAP_BASE).contains(&addr) {
            Some((&mut self.globals, (addr - GLOBAL_BASE) / PAGE_SIZE))
        } else {
            None
        }
    }

    /// One-shot region classification for the access fast path:
    /// `(table, region base, valid start, valid end)`. Folds the
    /// [`Memory::table`] dispatch and both [`Memory::is_valid`] probes
    /// of an access into a single range-check chain.
    #[inline]
    fn region(&self, addr: u64) -> Option<(&PageTable, u64, u64, u64)> {
        if (HEAP_BASE..HEAP_MAX).contains(&addr) {
            Some((&self.heap, HEAP_BASE, HEAP_BASE, self.brk))
        } else if addr >= STACK_BASE && addr < STACK_TOP {
            Some((&self.stack, STACK_BASE, STACK_TOP - STACK_MAX, STACK_TOP))
        } else if (GLOBAL_BASE..HEAP_BASE).contains(&addr) {
            Some((&self.globals, GLOBAL_BASE, GLOBAL_BASE, self.globals_end))
        } else {
            None
        }
    }

    /// Mutable variant of [`Memory::region`].
    #[inline]
    fn region_mut(&mut self, addr: u64) -> Option<(&mut PageTable, u64, u64, u64)> {
        if (HEAP_BASE..HEAP_MAX).contains(&addr) {
            Some((&mut self.heap, HEAP_BASE, HEAP_BASE, self.brk))
        } else if addr >= STACK_BASE && addr < STACK_TOP {
            Some((
                &mut self.stack,
                STACK_BASE,
                STACK_TOP - STACK_MAX,
                STACK_TOP,
            ))
        } else if (GLOBAL_BASE..HEAP_BASE).contains(&addr) {
            Some((
                &mut self.globals,
                GLOBAL_BASE,
                GLOBAL_BASE,
                self.globals_end,
            ))
        } else {
            None
        }
    }
}

impl Memory {
    /// Fresh memory with an empty heap and no globals.
    pub fn new() -> Memory {
        Memory {
            brk: HEAP_BASE,
            globals_end: GLOBAL_BASE,
            ..Memory::default()
        }
    }

    /// Initialize globals from a program (which must already have had
    /// [`crate::Program::assign_layout`] run).
    pub fn init_globals(&mut self, prog: &crate::Program) {
        let mut end = GLOBAL_BASE;
        for g in &prog.globals {
            end = end.max(g.addr + g.size);
            for (i, &byte) in g.init.iter().enumerate() {
                self.write_byte(g.addr + i as u64, byte);
            }
        }
        self.globals_end = (end + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
    }

    /// Is `addr` within some valid region (mappable on demand)?
    pub fn is_valid(&self, addr: u64) -> bool {
        (GLOBAL_BASE..self.globals_end).contains(&addr)
            || (HEAP_BASE..self.brk).contains(&addr)
            || (STACK_TOP - STACK_MAX..STACK_TOP).contains(&addr)
    }

    /// Is `addr` in the architected NULL page? (The simulator gives these a
    /// cheap 2-cycle NaT response rather than a full page walk.)
    pub fn is_null_page(addr: u64) -> bool {
        addr < PAGE_SIZE
    }

    /// Bump-allocate `n` bytes from the heap (16-byte aligned), returning
    /// the base address.
    ///
    /// # Panics
    /// Panics if the heap region is exhausted (workloads are sized to fit).
    pub fn alloc(&mut self, n: u64) -> u64 {
        let base = self.brk;
        let n = (n.max(1) + 15) & !15;
        self.brk += n;
        assert!(self.brk <= HEAP_MAX, "simulated heap exhausted");
        base
    }

    fn write_byte(&mut self, addr: u64, byte: u8) {
        if let Some((t, pi)) = self.table_mut(addr) {
            t.get_mut(pi)[(addr % PAGE_SIZE) as usize] = byte;
        }
    }

    fn read_byte(&self, addr: u64) -> u8 {
        match self.table(addr) {
            Some((t, pi)) => t.get(pi).map_or(0, |p| p[(addr % PAGE_SIZE) as usize]),
            None => 0,
        }
    }

    /// Read `size` bytes at `addr`, zero-extended.
    ///
    /// # Errors
    /// Faults if any accessed byte lies outside a valid region.
    pub fn read(&self, addr: u64, size: u64) -> Result<u64, MemFault> {
        for i in 0..size {
            if !self.is_valid(addr.wrapping_add(i)) {
                return Err(MemFault {
                    addr: addr.wrapping_add(i),
                });
            }
        }
        let mut v = 0u64;
        for i in (0..size).rev() {
            v = (v << 8) | self.read_byte(addr.wrapping_add(i)) as u64;
        }
        Ok(v)
    }

    /// Write the low `size` bytes of `val` at `addr`.
    ///
    /// # Errors
    /// Faults if any accessed byte lies outside a valid region.
    pub fn write(&mut self, addr: u64, size: u64, val: u64) -> Result<(), MemFault> {
        for i in 0..size {
            if !self.is_valid(addr.wrapping_add(i)) {
                return Err(MemFault {
                    addr: addr.wrapping_add(i),
                });
            }
        }
        for i in 0..size {
            self.write_byte(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
        Ok(())
    }

    /// [`Memory::read`] with a single-page fast path: one validity range
    /// check and one page lookup for the common case of an access that
    /// does not straddle a page boundary. Region gaps are all far wider
    /// than the 8-byte maximum access, so first-and-last-byte validity
    /// implies every intermediate byte is valid.
    ///
    /// # Errors
    /// Identical accept/reject behavior to [`Memory::read`].
    #[inline]
    pub fn read_fast(&self, addr: u64, size: u64) -> Result<u64, MemFault> {
        let off = addr % PAGE_SIZE;
        if off + size <= PAGE_SIZE && size > 0 {
            if let Some((t, base, lo, hi)) = self.region(addr) {
                // same-page access + page-aligned region boundaries mean
                // first-and-last-byte validity covers every byte
                if addr >= lo && addr + (size - 1) < hi {
                    let page = t.get((addr - base) / PAGE_SIZE);
                    let o = off as usize;
                    return Ok(match (page, size) {
                        (Some(p), 8) => {
                            u64::from_le_bytes(p[o..o + 8].try_into().expect("8 bytes"))
                        }
                        (Some(p), 4) => {
                            u32::from_le_bytes(p[o..o + 4].try_into().expect("4 bytes")).into()
                        }
                        (Some(p), _) => {
                            let mut v = 0u64;
                            for i in (0..size).rev() {
                                v = (v << 8) | u64::from(p[o + i as usize]);
                            }
                            v
                        }
                        (None, _) => 0,
                    });
                }
            }
        }
        self.read(addr, size)
    }

    /// [`Memory::write`] with the same single-page fast path as
    /// [`Memory::read_fast`].
    ///
    /// # Errors
    /// Identical accept/reject behavior to [`Memory::write`].
    #[inline]
    pub fn write_fast(&mut self, addr: u64, size: u64, val: u64) -> Result<(), MemFault> {
        let off = addr % PAGE_SIZE;
        if off + size <= PAGE_SIZE && size > 0 {
            if let Some((t, base, lo, hi)) = self.region_mut(addr) {
                if addr >= lo && addr + (size - 1) < hi {
                    let page = t.get_mut((addr - base) / PAGE_SIZE);
                    let o = off as usize;
                    match size {
                        8 => page[o..o + 8].copy_from_slice(&val.to_le_bytes()),
                        4 => page[o..o + 4].copy_from_slice(&(val as u32).to_le_bytes()),
                        _ => {
                            for i in 0..size {
                                page[o + i as usize] = (val >> (8 * i)) as u8;
                            }
                        }
                    }
                    return Ok(());
                }
            }
        }
        self.write(addr, size, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_mem() -> Memory {
        Memory::new()
    }

    #[test]
    fn round_trip_all_sizes() {
        let mut m = stack_mem();
        let a = STACK_TOP - 64;
        for size in [1u64, 2, 4, 8] {
            m.write(a, size, 0xDEAD_BEEF_CAFE_F00D).unwrap();
            let v = m.read(a, size).unwrap();
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * size)) - 1
            };
            assert_eq!(v, 0xDEAD_BEEF_CAFE_F00D & mask);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut m = stack_mem();
        let a = STACK_TOP - PAGE_SIZE - 4; // straddles a page boundary
        m.write(a, 8, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read(a, 8).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn wild_access_faults() {
        let mut m = stack_mem();
        assert_eq!(m.read(0x1234, 8), Err(MemFault { addr: 0x1234 }));
        assert!(m.write(0x8000_0000, 8, 1).is_err());
        assert!(m.read(0, 1).is_err()); // NULL page
        assert!(Memory::is_null_page(8));
    }

    #[test]
    fn heap_alloc_extends_validity() {
        let mut m = stack_mem();
        assert!(!m.is_valid(HEAP_BASE));
        let p = m.alloc(100);
        assert_eq!(p, HEAP_BASE);
        assert!(m.is_valid(p + 99));
        assert!(!m.is_valid(p + 112)); // rounded to 112? 100 -> 112 aligned
        let q = m.alloc(1);
        assert_eq!(q, HEAP_BASE + 112);
    }

    #[test]
    fn func_addr_round_trip() {
        let f = FuncId(7);
        assert_eq!(func_from_addr(func_addr(f)), Some(f));
        assert_eq!(func_from_addr(0x42), None);
        assert_eq!(func_from_addr(func_addr(f) + 1), None);
    }

    #[test]
    fn fast_paths_match_slow_paths() {
        let mut m = stack_mem();
        m.alloc(64);
        let probes = [
            STACK_TOP - 64,
            STACK_TOP - PAGE_SIZE - 4, // straddles a page boundary
            HEAP_BASE + 60,            // last bytes run past brk
            0x1234,                    // wild
            0,                         // NULL page
        ];
        for &a in &probes {
            for size in [1u64, 2, 4, 8] {
                let mut slow = stack_mem();
                slow.alloc(64);
                let ws = slow.write(a, size, 0x1122_3344_5566_7788);
                let wf = m.write_fast(a, size, 0x1122_3344_5566_7788);
                assert_eq!(ws, wf, "write {a:#x} size {size}");
                assert_eq!(
                    slow.read(a, size),
                    m.read_fast(a, size),
                    "read {a:#x} size {size}"
                );
            }
        }
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut m = stack_mem();
        m.write(STACK_TOP - 8, 8, 111).unwrap();
        let snap = m.clone();
        m.write(STACK_TOP - 8, 8, 222).unwrap();
        assert_eq!(snap.read(STACK_TOP - 8, 8).unwrap(), 111);
        assert_eq!(m.read(STACK_TOP - 8, 8).unwrap(), 222);
    }

    #[test]
    fn uninitialized_valid_memory_reads_zero() {
        let m = stack_mem();
        assert_eq!(m.read(STACK_TOP - 8, 8).unwrap(), 0);
    }
}
