//! Backward liveness analysis over virtual registers.
//!
//! Two subtleties of the Lcode-like IR shape this analysis:
//!
//! * **Predicate-guarded definitions are *may*-defs**: they do not kill
//!   liveness (the old value survives when the guard is false).
//! * **Blocks are extended blocks with mid-block side exits**: a value may
//!   escape through an early side-exit branch and then be overwritten
//!   later in the same block, so the classic block-level gen/kill
//!   formulation is wrong — a late kill would hide the early escape.
//!   The transfer function therefore walks the block's operations in
//!   reverse, unioning each branch target's live-in at the branch.

use crate::bitset::BitSet;
use crate::func::Function;
use crate::types::BlockId;

/// Per-block live-in / live-out register sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

impl Liveness {
    /// Compute liveness for all live blocks of `f`.
    pub fn compute(f: &Function) -> Liveness {
        let nv = f.vreg_count();
        let nb = f.blocks.len();
        let mut live_in = vec![BitSet::new(nv); nb];
        let mut live_out = vec![BitSet::new(nv); nb];
        // Iterate to fixpoint in postorder (reverse RPO) for fast
        // convergence; the per-block transfer walks ops in reverse and
        // merges side-exit targets' live-ins at each branch.
        let mut order = f.rpo();
        order.reverse();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut live = BitSet::new(nv);
                for op in f.block(b).ops.iter().rev() {
                    if let Some(t) = op.branch_target() {
                        live.union_with(&live_in[t.index()]);
                    }
                    if op.guard.is_none() {
                        for d in op.defs() {
                            live.remove(d.index());
                        }
                    }
                    for u in op.uses() {
                        live.insert(u.index());
                    }
                }
                // live_out (for external consumers): union of succ live-ins
                let mut out = BitSet::new(nv);
                for s in f.block(b).succs() {
                    out.union_with(&live_in[s.index()]);
                }
                if live != live_in[b.index()] || out != live_out[b.index()] {
                    changed = true;
                    live_in[b.index()] = live;
                    live_out[b.index()] = out;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &BitSet {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b` (union over successors' live-ins,
    /// including side-exit targets).
    pub fn live_out(&self, b: BlockId) -> &BitSet {
        &self.live_out[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::mk_br;
    use crate::types::{FuncId, Opcode, Operand, Vreg};
    use crate::{Function, Op};

    fn add(f: &mut Function, d: Vreg, a: Operand, b: Operand) -> Op {
        Op::new(f.new_op_id(), Opcode::Add, vec![d], vec![a, b])
    }

    #[test]
    fn straight_line_liveness() {
        let mut f = Function::new(FuncId(0), "t");
        let b1 = f.add_block();
        let (x, y) = (f.new_vreg(), f.new_vreg());
        // b0: y = x + 1 ; br b1     (x live-in)
        // b1: ret y                 (y live-in)
        let a0 = add(&mut f, y, Operand::Reg(x), Operand::Imm(1));
        let br = mk_br(f.new_op_id(), b1);
        f.block_mut(crate::BlockId(0)).ops.extend([a0, br]);
        let ret = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![Operand::Reg(y)]);
        f.block_mut(b1).ops.push(ret);
        let l = Liveness::compute(&f);
        assert!(l.live_in(crate::BlockId(0)).contains(x.index()));
        assert!(!l.live_in(crate::BlockId(0)).contains(y.index()));
        assert!(l.live_out(crate::BlockId(0)).contains(y.index()));
        assert!(l.live_in(b1).contains(y.index()));
    }

    #[test]
    fn guarded_def_does_not_kill() {
        let mut f = Function::new(FuncId(0), "t");
        let b1 = f.add_block();
        let (x, p) = (f.new_vreg(), f.new_vreg());
        // b0: (p) x = 1 ; br b1
        // b1: ret x
        let mut def = add(&mut f, x, Operand::Imm(1), Operand::Imm(0));
        def.guard = Some(p);
        let br = mk_br(f.new_op_id(), b1);
        f.block_mut(crate::BlockId(0)).ops.extend([def, br]);
        let ret = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![Operand::Reg(x)]);
        f.block_mut(b1).ops.push(ret);
        let l = Liveness::compute(&f);
        // x is live into b0: the guarded def may not execute.
        assert!(l.live_in(crate::BlockId(0)).contains(x.index()));
        assert!(l.live_in(crate::BlockId(0)).contains(p.index()));
    }

    #[test]
    fn loop_carried_liveness() {
        let mut f = Function::new(FuncId(0), "t");
        let b1 = f.add_block();
        let b2 = f.add_block();
        let (i, p) = (f.new_vreg(), f.new_vreg());
        // b0: i = 0; br b1
        // b1: i = i + 1; p = cmp i < 10; (p) br b1; br b2
        // b2: ret i
        let init = add(&mut f, i, Operand::Imm(0), Operand::Imm(0));
        let br0 = mk_br(f.new_op_id(), b1);
        f.block_mut(crate::BlockId(0)).ops.extend([init, br0]);
        let inc = add(&mut f, i, Operand::Reg(i), Operand::Imm(1));
        let cmp = Op::new(
            f.new_op_id(),
            Opcode::Cmp(crate::types::CmpKind::SLt),
            vec![p],
            vec![Operand::Reg(i), Operand::Imm(10)],
        );
        let mut back = mk_br(f.new_op_id(), b1);
        back.guard = Some(p);
        let out = mk_br(f.new_op_id(), b2);
        f.block_mut(b1).ops.extend([inc, cmp, back, out]);
        let ret = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![Operand::Reg(i)]);
        f.block_mut(b2).ops.push(ret);
        let l = Liveness::compute(&f);
        assert!(l.live_in(b1).contains(i.index()));
        assert!(l.live_out(b1).contains(i.index()));
        assert!(!l.live_in(crate::BlockId(0)).contains(i.index()));
    }

    /// Regression for the miscompile found by random differential testing:
    /// a value that escapes through an *early* side exit must stay live
    /// into the block even when an unconditional definition *later* in the
    /// same block kills it on the fall-through path.
    ///
    /// ```text
    /// b0: v = -30 ; br b1
    /// b1: (p) br b2        <- v escapes here
    ///     v = 50           <- block-level kill would hide the escape
    ///     br b2
    /// b2: out v ; ret
    /// ```
    #[test]
    fn early_side_exit_defeats_late_kill() {
        let mut f = Function::new(FuncId(0), "t");
        let b1 = f.add_block();
        let b2 = f.add_block();
        let (v, p) = (f.new_vreg(), f.new_vreg());
        let init = Op::new(f.new_op_id(), Opcode::Mov, vec![v], vec![Operand::Imm(-30)]);
        let br0 = mk_br(f.new_op_id(), b1);
        f.block_mut(crate::BlockId(0)).ops.extend([init, br0]);
        let mut side = mk_br(f.new_op_id(), b2);
        side.guard = Some(p);
        let redef = Op::new(f.new_op_id(), Opcode::Mov, vec![v], vec![Operand::Imm(50)]);
        let term = mk_br(f.new_op_id(), b2);
        f.block_mut(b1).ops.extend([side, redef, term]);
        let use_v = Op::new(f.new_op_id(), Opcode::Out, vec![], vec![Operand::Reg(v)]);
        let ret = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]);
        f.block_mut(b2).ops.extend([use_v, ret]);
        let l = Liveness::compute(&f);
        assert!(
            l.live_in(b1).contains(v.index()),
            "v escapes through the side exit before the kill"
        );
        assert!(l.live_in(crate::BlockId(0)).contains(p.index()));
    }
}
