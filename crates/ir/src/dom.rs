//! Dominator-tree construction (Cooper–Harvey–Kennedy iterative algorithm).

use crate::func::Function;
use crate::types::BlockId;

/// Immediate-dominator table plus RPO numbering for a function's CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
    rpo: Vec<BlockId>,
}

impl DomTree {
    /// Compute dominators for all blocks reachable from entry.
    pub fn compute(f: &Function) -> DomTree {
        let rpo = f.rpo();
        let n = f.blocks.len();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = f.preds();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if rpo_index[p.index()] == usize::MAX || idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            rpo_index,
            rpo,
        }
    }

    /// The immediate dominator of `b` (entry's idom is itself). `None` for
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Does `a` dominate `b`? (Reflexive; false if either is unreachable.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        if self.idom[a.index()].is_none() || self.idom[b.index()].is_none() {
            return false;
        }
        loop {
            if cur == a {
                return true;
            }
            let next = match self.idom[cur.index()] {
                Some(i) => i,
                None => return false,
            };
            if next == cur {
                return false; // reached entry
            }
            cur = next;
        }
    }

    /// Reverse postorder of reachable blocks.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// RPO index of a block (`usize::MAX` if unreachable).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b.index()]
    }

    /// Is the block reachable from entry?
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{mk_br, Function};
    use crate::types::{FuncId, Opcode, Vreg};
    use crate::Op;

    /// Build a CFG from an edge list; block 0 is entry. Conditional splits
    /// are modeled with guarded branches.
    fn cfg(n: usize, edges: &[(u32, u32)]) -> Function {
        let mut f = Function::new(FuncId(0), "t");
        for _ in 1..n {
            f.add_block();
        }
        let p = f.new_vreg();
        for b in 0..n as u32 {
            let outs: Vec<u32> = edges
                .iter()
                .filter(|(s, _)| *s == b)
                .map(|&(_, d)| d)
                .collect();
            let mut ops = Vec::new();
            for (i, &d) in outs.iter().enumerate() {
                let mut br = mk_br(f.new_op_id(), BlockId(d));
                if i + 1 != outs.len() {
                    br.guard = Some(p);
                }
                ops.push(br);
            }
            if outs.is_empty() {
                ops.push(Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]));
            }
            f.block_mut(BlockId(b)).ops = ops;
        }
        let _ = Vreg(0);
        f
    }

    #[test]
    fn diamond_dominators() {
        // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3
        let f = cfg(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let d = DomTree::compute(&f);
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(0)));
        assert!(d.dominates(BlockId(0), BlockId(3)));
        assert!(!d.dominates(BlockId(1), BlockId(3)));
        assert!(d.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_dominators() {
        // 0 -> 1 ; 1 -> 2 ; 2 -> 1,3
        let f = cfg(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let d = DomTree::compute(&f);
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(1)));
        assert!(d.dominates(BlockId(1), BlockId(3)));
        assert!(d.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = cfg(3, &[(0, 1), (1, 2)]);
        let orphan = f.add_block();
        f.block_mut(orphan).ops.push(Op::new(
            crate::types::OpId(999),
            Opcode::Ret,
            vec![],
            vec![],
        ));
        let d = DomTree::compute(&f);
        assert_eq!(d.idom(orphan), None);
        assert!(!d.is_reachable(orphan));
        assert!(!d.dominates(BlockId(0), orphan));
    }

    /// Property: naive dominator computation agrees with CHK on random CFGs.
    #[test]
    fn matches_naive_on_random_cfgs() {
        // Simple deterministic pseudo-random edge sets.
        let mut seed = 0x12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _case in 0..50 {
            let n = 3 + (next() % 8) as usize;
            let mut edges = Vec::new();
            for b in 0..n as u32 {
                for _ in 0..=(next() % 2) {
                    let d = next() % n as u32;
                    edges.push((b, d));
                }
            }
            // ensure connectivity skeleton
            for b in 1..n as u32 {
                edges.push((b - 1, b));
            }
            let f = cfg(n, &edges);
            let d = DomTree::compute(&f);
            let naive = naive_dominators(&f);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        d.dominates(BlockId(a as u32), BlockId(b as u32)),
                        naive[b].contains(&a),
                        "dom({a},{b}) mismatch on case {_case}"
                    );
                }
            }
        }
    }

    /// O(n^2) reference: a dominates b iff removing a disconnects b from
    /// entry.
    fn naive_dominators(f: &Function) -> Vec<std::collections::HashSet<usize>> {
        let n = f.blocks.len();
        let reachable = |skip: Option<usize>| -> Vec<bool> {
            let mut seen = vec![false; n];
            if skip == Some(f.entry.index()) {
                return seen;
            }
            let mut stack = vec![f.entry];
            seen[f.entry.index()] = true;
            while let Some(b) = stack.pop() {
                for s in f.block(b).succs() {
                    if Some(s.index()) != skip && !seen[s.index()] {
                        seen[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
            seen
        };
        let base = reachable(None);
        (0..n)
            .map(|b| {
                let mut doms = std::collections::HashSet::new();
                if !base[b] {
                    return doms; // unreachable: no dominators reported
                }
                for a in 0..n {
                    if a == b {
                        doms.insert(a);
                        continue;
                    }
                    if base[a] && !reachable(Some(a))[b] {
                        doms.insert(a);
                    }
                }
                doms
            })
            .collect()
    }
}
