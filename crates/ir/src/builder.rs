//! Ergonomic construction of IR functions (used by the frontend lowering,
//! tests, and the property-based program generator).

use crate::func::Function;
use crate::op::Op;
use crate::types::{BlockId, CmpKind, FuncId, MemSize, Opcode, Operand, Vreg};

/// Builds one [`Function`], tracking a current insertion block.
#[derive(Debug)]
pub struct FuncBuilder {
    f: Function,
    cur: BlockId,
}

impl FuncBuilder {
    /// Start building a function; the entry block is current.
    pub fn new(id: FuncId, name: impl Into<String>) -> FuncBuilder {
        let f = Function::new(id, name);
        let cur = f.entry;
        FuncBuilder { f, cur }
    }

    /// Declare a parameter register.
    pub fn param(&mut self) -> Vreg {
        let v = self.f.new_vreg();
        self.f.params.push(v);
        v
    }

    /// Allocate a fresh vreg.
    pub fn vreg(&mut self) -> Vreg {
        self.f.new_vreg()
    }

    /// Create a new (empty) block without switching to it.
    pub fn block(&mut self) -> BlockId {
        self.f.add_block()
    }

    /// Make `b` the insertion block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Reserve `bytes` of frame storage, returning its frame offset.
    pub fn frame_alloc(&mut self, bytes: u64) -> u64 {
        let off = self.f.frame_size;
        self.f.frame_size += (bytes + 7) & !7;
        off
    }

    /// Append a raw op to the current block.
    pub fn push(&mut self, mut op: Op) {
        op.id = self.f.new_op_id();
        self.f.block_mut(self.cur).ops.push(op);
    }

    fn emit(&mut self, opcode: Opcode, dsts: Vec<Vreg>, srcs: Vec<Operand>) {
        let op = Op::new(crate::types::OpId(0), opcode, dsts, srcs);
        self.push(op);
    }

    /// `dst = a <op> b` into a fresh register.
    pub fn binop(&mut self, opcode: Opcode, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        let d = self.vreg();
        self.emit(opcode, vec![d], vec![a.into(), b.into()]);
        d
    }

    /// `dst = a <op> b` into a named register.
    pub fn binop_to(
        &mut self,
        dst: Vreg,
        opcode: Opcode,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.emit(opcode, vec![dst], vec![a.into(), b.into()]);
    }

    /// `dst = src` into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Vreg {
        let d = self.vreg();
        self.emit(Opcode::Mov, vec![d], vec![src.into()]);
        d
    }

    /// `dst = src` into a named register.
    pub fn mov_to(&mut self, dst: Vreg, src: impl Into<Operand>) {
        self.emit(Opcode::Mov, vec![dst], vec![src.into()]);
    }

    /// `p = a <kind> b` (single predicate destination).
    pub fn cmp(&mut self, kind: CmpKind, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        let p = self.vreg();
        self.emit(Opcode::Cmp(kind), vec![p], vec![a.into(), b.into()]);
        p
    }

    /// `p, q = a <kind> b` (predicate and complement, as IA-64 `cmp`).
    pub fn cmp2(
        &mut self,
        kind: CmpKind,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> (Vreg, Vreg) {
        let p = self.vreg();
        let q = self.vreg();
        self.emit(Opcode::Cmp(kind), vec![p, q], vec![a.into(), b.into()]);
        (p, q)
    }

    /// `dst = mem[addr]`.
    pub fn load(&mut self, size: MemSize, addr: impl Into<Operand>) -> Vreg {
        let d = self.vreg();
        self.emit(Opcode::Ld(size), vec![d], vec![addr.into()]);
        d
    }

    /// `mem[addr] = val`.
    pub fn store(&mut self, size: MemSize, addr: impl Into<Operand>, val: impl Into<Operand>) {
        self.emit(Opcode::St(size), vec![], vec![addr.into(), val.into()]);
    }

    /// Unconditional branch (block terminator).
    pub fn br(&mut self, target: BlockId) {
        self.emit(Opcode::Br, vec![], vec![Operand::Label(target)]);
    }

    /// Conditional branch: taken when `pred` is non-zero.
    pub fn brc(&mut self, pred: Vreg, target: BlockId) {
        let op = {
            let mut op = Op::new(
                crate::types::OpId(0),
                Opcode::Br,
                vec![],
                vec![Operand::Label(target)],
            );
            op.guard = Some(pred);
            op
        };
        self.push(op);
    }

    /// Call returning a value.
    pub fn call(&mut self, callee: impl Into<Operand>, args: &[Operand]) -> Vreg {
        let d = self.vreg();
        let mut srcs = vec![callee.into()];
        srcs.extend_from_slice(args);
        self.emit(Opcode::Call, vec![d], srcs);
        d
    }

    /// Call ignoring any return value.
    pub fn call_void(&mut self, callee: impl Into<Operand>, args: &[Operand]) {
        let mut srcs = vec![callee.into()];
        srcs.extend_from_slice(args);
        self.emit(Opcode::Call, vec![], srcs);
    }

    /// Return (optionally with a value).
    pub fn ret(&mut self, val: Option<Operand>) {
        self.emit(Opcode::Ret, vec![], val.into_iter().collect());
    }

    /// Emit a value to the observable output stream.
    pub fn out(&mut self, val: impl Into<Operand>) {
        self.emit(Opcode::Out, vec![], vec![val.into()]);
    }

    /// Heap allocation.
    pub fn alloc(&mut self, bytes: impl Into<Operand>) -> Vreg {
        let d = self.vreg();
        self.emit(Opcode::Alloc, vec![d], vec![bytes.into()]);
        d
    }

    /// Finish, returning the function.
    pub fn finish(self) -> Function {
        self.f
    }

    /// Peek at the function under construction.
    pub fn func(&self) -> &Function {
        &self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn builds_verified_loop() {
        // sum 0..n
        let mut b = FuncBuilder::new(FuncId(0), "sum");
        let n = b.param();
        let body = b.block();
        let done = b.block();
        let i = b.vreg();
        let acc = b.vreg();
        b.mov_to(i, 0i64);
        b.mov_to(acc, 0i64);
        b.br(body);
        b.switch_to(body);
        b.binop_to(acc, Opcode::Add, acc, i);
        b.binop_to(i, Opcode::Add, i, 1i64);
        let p = b.cmp(CmpKind::SLt, i, n);
        b.brc(p, body);
        b.br(done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(acc)));
        let f = b.finish();
        verify_function(&f).unwrap();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.block_ids().count(), 3);
    }

    #[test]
    fn frame_alloc_aligns() {
        let mut b = FuncBuilder::new(FuncId(0), "t");
        assert_eq!(b.frame_alloc(5), 0);
        assert_eq!(b.frame_alloc(8), 8);
        assert_eq!(b.func().frame_size, 16);
        b.ret(None);
        verify_function(&b.finish()).unwrap();
    }
}
