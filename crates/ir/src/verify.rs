//! Structural IR verifier.
//!
//! Transformation passes call this after mutating a function; differential
//! tests call it on whole programs. It enforces the block discipline
//! (exactly one terminator, at the end), operand shapes per opcode, and
//! label sanity.

use crate::func::Function;
use crate::op::Op;
use crate::types::{Opcode, Operand};
use crate::Program;

/// A verification failure, with enough context to locate the bad op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole program.
///
/// # Errors
/// Returns every violation found across all functions.
pub fn verify_program(p: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for f in &p.funcs {
        if let Err(mut e) = verify_function(f) {
            errs.append(&mut e);
        }
    }
    if p.entry.index() >= p.funcs.len() {
        errs.push(VerifyError("program entry out of range".into()));
    }
    for f in &p.funcs {
        for b in f.block_ids() {
            for op in &f.block(b).ops {
                if op.mem_tag as usize >= p.alias_sets.len() {
                    errs.push(VerifyError(format!(
                        "{}: {b}: mem_tag {} out of range",
                        f.name, op.mem_tag
                    )));
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verify one function.
///
/// # Errors
/// Returns every violation found.
pub fn verify_function(f: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    let mut err = |msg: String| errs.push(VerifyError(format!("{}: {msg}", f.name)));
    if f.entry.index() >= f.blocks.len() || f.blocks[f.entry.index()].removed {
        err("entry block is missing or removed".into());
    }
    for b in f.block_ids() {
        let blk = f.block(b);
        if blk.ops.is_empty() {
            err(format!("{b}: live block is empty"));
            continue;
        }
        let last = blk.ops.len() - 1;
        for (i, op) in blk.ops.iter().enumerate() {
            if op.is_terminator() && i != last {
                err(format!("{b}[{i}]: terminator {op} not at end of block"));
            }
            if let Err(m) = check_shape(op) {
                err(format!("{b}[{i}]: {m}"));
            }
            for s in &op.srcs {
                if let Operand::Label(t) = s {
                    if !op.is_branch() {
                        err(format!("{b}[{i}]: label operand on non-branch {op}"));
                    } else if t.index() >= f.blocks.len() || f.blocks[t.index()].removed {
                        err(format!("{b}[{i}]: branch to dead block {t}"));
                    }
                }
            }
        }
        if !blk.ops[last].is_terminator() {
            err(format!("{b}: does not end in a terminator"));
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn check_shape(op: &Op) -> Result<(), String> {
    let (d, s) = (op.dsts.len(), op.srcs.len());
    let want = |ok: bool, shape: &str| {
        if ok {
            Ok(())
        } else {
            Err(format!("bad operand shape for {op} (want {shape})"))
        }
    };
    if op.spec && !matches!(op.opcode, Opcode::Ld(_)) {
        return Err(format!("spec flag on non-load {op}"));
    }
    if op.adv && !matches!(op.opcode, Opcode::Ld(_)) {
        return Err(format!("adv flag on non-load {op}"));
    }
    match op.opcode {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::Div
        | Opcode::Rem
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::Shr
        | Opcode::Sar => want(d == 1 && s == 2, "1 dst, 2 srcs"),
        Opcode::Cmp(_) => want((d == 1 || d == 2) && s == 2, "1-2 dsts, 2 srcs"),
        Opcode::Mov => want(d == 1 && s == 1, "1 dst, 1 src"),
        Opcode::Ld(_) => want(d == 1 && s == 1, "1 dst, 1 src"),
        Opcode::St(_) => want(d == 0 && s == 2, "0 dsts, 2 srcs"),
        Opcode::Br => {
            want(d == 0 && s == 1, "0 dsts, 1 src")?;
            if op.srcs[0].label().is_none() {
                return Err(format!("branch without label operand: {op}"));
            }
            Ok(())
        }
        Opcode::Call => {
            want(d <= 1 && s >= 1, "≤1 dst, ≥1 srcs")?;
            match op.srcs[0] {
                Operand::FuncAddr(_) | Operand::Reg(_) => Ok(()),
                _ => Err(format!("call target must be FuncAddr or Reg: {op}")),
            }
        }
        Opcode::Ret => {
            if op.guard.is_some() {
                return Err(format!("guarded return: {op}"));
            }
            want(d == 0 && s <= 1, "0 dsts, ≤1 src")
        }
        Opcode::Alloc => want(d == 1 && s == 1, "1 dst, 1 src"),
        Opcode::Out => want(d == 0 && s == 1, "0 dsts, 1 src"),
        Opcode::Chk(_) => want(d == 1 && s == 2, "1 dst, 2 srcs"),
        Opcode::ChkA(_) => {
            want(d == 1 && s == 2, "1 dst, 2 srcs")?;
            if op.srcs[0].reg() != Some(op.dsts[0]) {
                return Err(format!("chk.a must check its own destination: {op}"));
            }
            Ok(())
        }
        Opcode::Nop => want(d == 0 && s == 0, "no operands"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::mk_br;
    use crate::types::{BlockId, FuncId, OpId, Vreg};
    use crate::Function;

    #[test]
    fn accepts_minimal_function() {
        let mut f = Function::new(FuncId(0), "ok");
        let ret = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]);
        f.block_mut(BlockId(0)).ops.push(ret);
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new(FuncId(0), "bad");
        let add = Op::new(
            f.new_op_id(),
            Opcode::Add,
            vec![Vreg(0)],
            vec![Operand::Imm(1), Operand::Imm(2)],
        );
        f.block_mut(BlockId(0)).ops.push(add);
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("terminator")));
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let mut f = Function::new(FuncId(0), "bad");
        let r1 = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]);
        let r2 = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]);
        f.block_mut(BlockId(0)).ops.extend([r1, r2]);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_branch_to_dead_block() {
        let mut f = Function::new(FuncId(0), "bad");
        let b1 = f.add_block();
        let ret = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]);
        f.block_mut(b1).ops.push(ret);
        let br = mk_br(f.new_op_id(), b1);
        f.block_mut(BlockId(0)).ops.push(br);
        assert!(verify_function(&f).is_ok());
        f.remove_block(b1);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_spec_store_and_guarded_ret() {
        let mut f = Function::new(FuncId(0), "bad");
        let mut st = Op::new(
            OpId(0),
            Opcode::St(crate::types::MemSize::B8),
            vec![],
            vec![Operand::Imm(0), Operand::Imm(0)],
        );
        st.spec = true;
        let mut ret = Op::new(OpId(1), Opcode::Ret, vec![], vec![]);
        ret.guard = Some(Vreg(0));
        f.block_mut(BlockId(0)).ops.extend([st, ret.clone()]);
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("spec flag")));
        // ret with guard is not a terminator, so block also fails discipline
        assert!(errs.iter().any(|e| e.0.contains("guarded return")));
    }
}
