//! Deterministic test support: a seeded PRNG and structured random-program
//! generators, replacing the external `proptest`/`rand` crates so the whole
//! test suite builds and runs fully offline.
//!
//! The PRNG is the same LCG the original differential harness used
//! (`state * 6364136223846793005 + 1442695040888963407`, top 31 bits), so
//! every saved regression seed regenerates byte-identical programs.
//!
//! Typical use in a test:
//!
//! ```
//! use epic_ir::testing::Rng;
//! let mut rng = Rng::new(42);
//! let die = rng.pick(6) + 1;
//! assert!((1..=6).contains(&die));
//! ```

use crate::func::mk_br;
use crate::{BlockId, FuncId, Function, Op, Opcode, Operand};

/// Seeded linear-congruential PRNG (Knuth MMIX constants, top 31 bits per
/// draw). Not cryptographic; deterministic across platforms and runs.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw draw (31 significant bits).
    pub fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 33
    }

    /// A full 64-bit value (two draws).
    pub fn next_u64(&mut self) -> u64 {
        (self.next() << 33) ^ self.next()
    }

    /// Uniform in `0..n` (`n == 0` returns 0).
    pub fn pick(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next() % n
    }

    /// Uniform index in `0..n` (`n == 0` returns 0).
    pub fn pick_usize(&mut self, n: usize) -> usize {
        self.pick(n as u64) as usize
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.pick(den) < num
    }

    /// A reference to a uniformly chosen element.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.pick_usize(xs.len())]
    }

    /// Derive an independent stream for case `i` of a test (seed chaining
    /// keeps per-case streams decorrelated without a second algorithm).
    pub fn derive(&self, i: u64) -> Rng {
        let mut r = Rng::new(self.state ^ i.wrapping_mul(0x9E3779B97F4A7C15));
        r.next();
        r
    }
}

/// Generator of random — but well-formed, terminating, trap-free — MiniC
/// programs covering arithmetic, shifts, comparisons, short-circuit logic,
/// nested ifs, bounded loops, masked array accesses, and calls: the
/// surfaces the structural transforms rewrite. Used by the top-level
/// differential oracle test.
pub struct MiniCGen {
    rng: Rng,
}

impl MiniCGen {
    /// Generator for a seed; the produced program is a pure function of it.
    pub fn new(seed: u64) -> MiniCGen {
        MiniCGen {
            rng: Rng::new(seed),
        }
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.rng.pick(n)
    }

    /// An expression over the in-scope variables.
    fn expr(&mut self, vars: &[String], depth: u32) -> String {
        if depth == 0 || self.pick(3) == 0 {
            return match self.pick(3) {
                0 => format!("{}", self.pick(100) as i64 - 50),
                1 if !vars.is_empty() => vars[self.pick(vars.len() as u64) as usize].clone(),
                _ => format!("g[{} & 63]", self.var_or_const(vars)),
            };
        }
        let a = self.expr(vars, depth - 1);
        let b = self.expr(vars, depth - 1);
        match self.pick(10) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} & {b})"),
            4 => format!("({a} | {b})"),
            5 => format!("({a} ^ {b})"),
            6 => format!("({a} << {})", self.pick(8)),
            7 => format!("({a} >> {})", self.pick(8)),
            8 => format!("(({a}) < ({b}))"),
            _ => format!("(({a}) == ({b}))"),
        }
    }

    fn var_or_const(&mut self, vars: &[String]) -> String {
        if !vars.is_empty() && self.pick(2) == 0 {
            vars[self.pick(vars.len() as u64) as usize].clone()
        } else {
            format!("{}", self.pick(64))
        }
    }

    fn cond(&mut self, vars: &[String]) -> String {
        let a = self.expr(vars, 1);
        let b = self.expr(vars, 1);
        let base = match self.pick(4) {
            0 => format!("({a}) < ({b})"),
            1 => format!("({a}) != ({b})"),
            2 => format!("({a}) >= ({b})"),
            _ => format!("(({a}) & 1) == 0"),
        };
        match self.pick(4) {
            0 => format!("{base} && ({}) < 40", self.expr(vars, 0)),
            1 => format!("{base} || ({}) > 9000", self.expr(vars, 0)),
            _ => base,
        }
    }

    fn stmts(&mut self, vars: &mut Vec<String>, depth: u32, budget: &mut u32) -> String {
        let mut out = String::new();
        let n = 2 + self.pick(4);
        for _ in 0..n {
            if *budget == 0 {
                break;
            }
            *budget -= 1;
            match self.pick(8) {
                0 | 1 => {
                    // new local
                    let name = format!("v{}", vars.len());
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("let {name} = {e};\n"));
                    vars.push(name);
                }
                2 | 3 if !vars.is_empty() => {
                    // never assign to loop counters (names `i*`): a
                    // clobbered counter can make the loop non-terminating
                    let assignable: Vec<&String> =
                        vars.iter().filter(|v| !v.starts_with('i')).collect();
                    if let Some(v) = (!assignable.is_empty())
                        .then(|| assignable[self.pick(assignable.len() as u64) as usize].clone())
                    {
                        let e = self.expr(vars, 2);
                        out.push_str(&format!("{v} = {e};\n"));
                    }
                }
                4 => {
                    let idx = self.var_or_const(vars);
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("g[{idx} & 63] = {e};\n"));
                }
                5 if depth > 0 => {
                    let c = self.cond(vars);
                    let scope0 = vars.len();
                    let t = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    let e = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    out.push_str(&format!("if {c} {{\n{t}}} else {{\n{e}}}\n"));
                }
                6 if depth > 0 => {
                    // bounded counter loop
                    let name = format!("i{}", vars.len());
                    let limit = 2 + self.pick(12);
                    let scope0 = vars.len();
                    out.push_str(&format!("let {name} = 0;\nwhile {name} < {limit} {{\n"));
                    vars.push(name.clone());
                    let body = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    out.push_str(&body);
                    out.push_str(&format!("{name} = {name} + 1;\n}}\n"));
                }
                _ => {
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("out({e});\n"));
                }
            }
        }
        out
    }

    /// The complete program: a `helper` function, a `main` exercising it,
    /// and a final checksum loop over the global array so every store is
    /// observable.
    pub fn program(&mut self) -> String {
        let mut vars: Vec<String> = vec!["a0".into(), "a1".into()];
        let mut budget = 60u32;
        let helper_body = {
            let mut hvars = vec!["x".to_string(), "y".to_string()];
            let mut hbudget = 12u32;
            self.stmts(&mut hvars, 1, &mut hbudget)
        };
        let hret = self.expr(&["x".to_string(), "y".to_string()], 2);
        let body = self.stmts(&mut vars, 3, &mut budget);
        let call = format!(
            "out(helper({}, {}));\n",
            self.expr(&vars, 1),
            self.expr(&vars, 1)
        );
        let tail =
            "let k = 0;\nlet h = 0;\nwhile k < 64 { h = h * 31 + g[k]; k = k + 1; }\nout(h);\n";
        format!(
            "global g: [int; 64];\n\
             fn helper(x: int, y: int) -> int {{\n{helper_body}return {hret};\n}}\n\
             fn main(a0: int, a1: int) {{\n{body}{call}{tail}}}\n"
        )
    }
}

/// Generate the MiniC program for a seed (convenience wrapper).
pub fn minic_program(seed: u64) -> String {
    MiniCGen::new(seed).program()
}

/// A random multi-block function with real dataflow, predicated ops, and
/// arbitrary (possibly unreachable) control flow — the liveness and
/// verifier property tests' input distribution.
pub fn random_dataflow_cfg(seed: u64) -> Function {
    let mut rng = Rng::new(seed);
    let mut f = Function::new(FuncId(0), "t");
    let nblocks = 2 + rng.pick(5) as usize;
    for _ in 1..nblocks {
        f.add_block();
    }
    let nregs = 3 + rng.pick(6);
    let regs: Vec<_> = (0..nregs).map(|_| f.new_vreg()).collect();
    for b in 0..nblocks {
        let mut ops = Vec::new();
        for _ in 0..rng.pick(6) {
            let d = regs[rng.pick(nregs) as usize];
            let a = regs[rng.pick(nregs) as usize];
            let c = regs[rng.pick(nregs) as usize];
            let mut op = Op::new(
                f.new_op_id(),
                Opcode::Add,
                vec![d],
                vec![Operand::Reg(a), Operand::Reg(c)],
            );
            if rng.pick(4) == 0 {
                op.guard = Some(regs[rng.pick(nregs) as usize]);
            }
            ops.push(op);
        }
        // terminator: branch to a random block or return
        if rng.pick(4) == 0 || nblocks == 1 {
            let val = regs[rng.pick(nregs) as usize];
            ops.push(Op::new(
                f.new_op_id(),
                Opcode::Ret,
                vec![],
                vec![Operand::Reg(val)],
            ));
        } else {
            let t = BlockId(rng.pick(nblocks as u64) as u32);
            if rng.pick(2) == 0 {
                let mut c = mk_br(f.new_op_id(), BlockId(rng.pick(nblocks as u64) as u32));
                c.guard = Some(regs[rng.pick(nregs) as usize]);
                ops.push(c);
            }
            ops.push(mk_br(f.new_op_id(), t));
        }
        f.block_mut(BlockId(b as u32)).ops = ops;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            let x = a.pick(10);
            assert_eq!(x, b.pick(10));
            assert!(x < 10);
        }
        assert_eq!(Rng::new(3).pick(0), 0);
    }

    #[test]
    fn derived_streams_differ() {
        let base = Rng::new(1);
        let xs: Vec<u64> = (0..4).map(|i| base.derive(i).next_u64()).collect();
        for i in 0..xs.len() {
            for j in i + 1..xs.len() {
                assert_ne!(xs[i], xs[j]);
            }
        }
    }

    #[test]
    fn minic_generator_is_deterministic() {
        assert_eq!(minic_program(42), minic_program(42));
        assert_ne!(minic_program(1), minic_program(2));
    }

    #[test]
    fn random_cfgs_are_deterministic() {
        let a = random_dataflow_cfg(9);
        let b = random_dataflow_cfg(9);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
