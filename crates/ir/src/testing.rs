//! Deterministic test support: a seeded PRNG and structured random-program
//! generators, replacing the external `proptest`/`rand` crates so the whole
//! test suite builds and runs fully offline.
//!
//! The PRNG is the same LCG the original differential harness used
//! (`state * 6364136223846793005 + 1442695040888963407`, top 31 bits), so
//! every saved regression seed regenerates byte-identical programs.
//!
//! Typical use in a test:
//!
//! ```
//! use epic_ir::testing::Rng;
//! let mut rng = Rng::new(42);
//! let die = rng.pick(6) + 1;
//! assert!((1..=6).contains(&die));
//! ```

use crate::func::mk_br;
use crate::{BlockId, FuncId, Function, Op, Opcode, Operand};

/// Seeded linear-congruential PRNG (Knuth MMIX constants, top 31 bits per
/// draw). Not cryptographic; deterministic across platforms and runs.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw draw (31 significant bits).
    pub fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 33
    }

    /// A full 64-bit value (two draws).
    pub fn next_u64(&mut self) -> u64 {
        (self.next() << 33) ^ self.next()
    }

    /// Uniform in `0..n` (`n == 0` returns 0).
    pub fn pick(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next() % n
    }

    /// Uniform index in `0..n` (`n == 0` returns 0).
    pub fn pick_usize(&mut self, n: usize) -> usize {
        self.pick(n as u64) as usize
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.pick(den) < num
    }

    /// A reference to a uniformly chosen element.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.pick_usize(xs.len())]
    }

    /// Derive an independent stream for case `i` of a test (seed chaining
    /// keeps per-case streams decorrelated without a second algorithm).
    pub fn derive(&self, i: u64) -> Rng {
        let mut r = Rng::new(self.state ^ i.wrapping_mul(0x9E3779B97F4A7C15));
        r.next();
        r
    }
}

/// Generator of random — but well-formed, terminating, trap-free — MiniC
/// programs covering arithmetic, shifts, comparisons, short-circuit logic,
/// nested ifs, bounded loops, masked array accesses, and calls: the
/// surfaces the structural transforms rewrite. Used by the top-level
/// differential oracle test.
pub struct MiniCGen {
    rng: Rng,
}

impl MiniCGen {
    /// Generator for a seed; the produced program is a pure function of it.
    pub fn new(seed: u64) -> MiniCGen {
        MiniCGen {
            rng: Rng::new(seed),
        }
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.rng.pick(n)
    }

    /// An expression over the in-scope variables.
    fn expr(&mut self, vars: &[String], depth: u32) -> String {
        if depth == 0 || self.pick(3) == 0 {
            return match self.pick(3) {
                0 => format!("{}", self.pick(100) as i64 - 50),
                1 if !vars.is_empty() => vars[self.pick(vars.len() as u64) as usize].clone(),
                _ => format!("g[{} & 63]", self.var_or_const(vars)),
            };
        }
        let a = self.expr(vars, depth - 1);
        let b = self.expr(vars, depth - 1);
        match self.pick(10) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} & {b})"),
            4 => format!("({a} | {b})"),
            5 => format!("({a} ^ {b})"),
            6 => format!("({a} << {})", self.pick(8)),
            7 => format!("({a} >> {})", self.pick(8)),
            8 => format!("(({a}) < ({b}))"),
            _ => format!("(({a}) == ({b}))"),
        }
    }

    fn var_or_const(&mut self, vars: &[String]) -> String {
        if !vars.is_empty() && self.pick(2) == 0 {
            vars[self.pick(vars.len() as u64) as usize].clone()
        } else {
            format!("{}", self.pick(64))
        }
    }

    fn cond(&mut self, vars: &[String]) -> String {
        let a = self.expr(vars, 1);
        let b = self.expr(vars, 1);
        let base = match self.pick(4) {
            0 => format!("({a}) < ({b})"),
            1 => format!("({a}) != ({b})"),
            2 => format!("({a}) >= ({b})"),
            _ => format!("(({a}) & 1) == 0"),
        };
        match self.pick(4) {
            0 => format!("{base} && ({}) < 40", self.expr(vars, 0)),
            1 => format!("{base} || ({}) > 9000", self.expr(vars, 0)),
            _ => base,
        }
    }

    fn stmts(&mut self, vars: &mut Vec<String>, depth: u32, budget: &mut u32) -> String {
        let mut out = String::new();
        let n = 2 + self.pick(4);
        for _ in 0..n {
            if *budget == 0 {
                break;
            }
            *budget -= 1;
            match self.pick(8) {
                0 | 1 => {
                    // new local
                    let name = format!("v{}", vars.len());
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("let {name} = {e};\n"));
                    vars.push(name);
                }
                2 | 3 if !vars.is_empty() => {
                    // never assign to loop counters (names `i*`): a
                    // clobbered counter can make the loop non-terminating
                    let assignable: Vec<&String> =
                        vars.iter().filter(|v| !v.starts_with('i')).collect();
                    if let Some(v) = (!assignable.is_empty())
                        .then(|| assignable[self.pick(assignable.len() as u64) as usize].clone())
                    {
                        let e = self.expr(vars, 2);
                        out.push_str(&format!("{v} = {e};\n"));
                    }
                }
                4 => {
                    let idx = self.var_or_const(vars);
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("g[{idx} & 63] = {e};\n"));
                }
                5 if depth > 0 => {
                    let c = self.cond(vars);
                    let scope0 = vars.len();
                    let t = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    let e = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    out.push_str(&format!("if {c} {{\n{t}}} else {{\n{e}}}\n"));
                }
                6 if depth > 0 => {
                    // bounded counter loop
                    let name = format!("i{}", vars.len());
                    let limit = 2 + self.pick(12);
                    let scope0 = vars.len();
                    out.push_str(&format!("let {name} = 0;\nwhile {name} < {limit} {{\n"));
                    vars.push(name.clone());
                    let body = self.stmts(vars, depth - 1, budget);
                    vars.truncate(scope0);
                    out.push_str(&body);
                    out.push_str(&format!("{name} = {name} + 1;\n}}\n"));
                }
                _ => {
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("out({e});\n"));
                }
            }
        }
        out
    }

    /// The complete program: a `helper` function, a `main` exercising it,
    /// and a final checksum loop over the global array so every store is
    /// observable.
    pub fn program(&mut self) -> String {
        let mut vars: Vec<String> = vec!["a0".into(), "a1".into()];
        let mut budget = 60u32;
        let helper_body = {
            let mut hvars = vec!["x".to_string(), "y".to_string()];
            let mut hbudget = 12u32;
            self.stmts(&mut hvars, 1, &mut hbudget)
        };
        let hret = self.expr(&["x".to_string(), "y".to_string()], 2);
        let body = self.stmts(&mut vars, 3, &mut budget);
        let call = format!(
            "out(helper({}, {}));\n",
            self.expr(&vars, 1),
            self.expr(&vars, 1)
        );
        let tail =
            "let k = 0;\nlet h = 0;\nwhile k < 64 { h = h * 31 + g[k]; k = k + 1; }\nout(h);\n";
        format!(
            "global g: [int; 64];\n\
             fn helper(x: int, y: int) -> int {{\n{helper_body}return {hret};\n}}\n\
             fn main(a0: int, a1: int) {{\n{body}{call}{tail}}}\n"
        )
    }
}

/// Generate the MiniC program for a seed (convenience wrapper).
pub fn minic_program(seed: u64) -> String {
    MiniCGen::new(seed).program()
}

/// What a [`MutationPoint`] refers to, so a mutation engine can pick a
/// semantically sensible rewrite per site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// An integer literal anywhere mutation is safe.
    IntConst,
    /// The bound constant of a `while i < N {` counter loop (rewrites must
    /// stay small and positive to preserve termination).
    LoopBound,
    /// A two-operand arithmetic/bitwise/shift operator.
    BinOp,
    /// A comparison operator.
    CmpOp,
    /// The full condition of an `if COND {` header.
    Guard,
}

/// A rewritable site in MiniC source: the byte span `start..end` of the
/// token (or condition) within the whole source string.
#[derive(Clone, Copy, Debug)]
pub struct MutationPoint {
    /// Byte offset of the site in the source.
    pub start: usize,
    /// Byte offset one past the site.
    pub end: usize,
    /// What lives at the site.
    pub kind: MutationKind,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True for generator-style counter-increment lines (`iN = iN + 1;`),
/// which must never be mutated: a perturbed increment can make the
/// enclosing loop non-terminating.
fn is_counter_increment(trimmed: &str) -> bool {
    let Some((lhs, rhs)) = trimmed.split_once('=') else {
        return false;
    };
    let lhs = lhs.trim();
    if !lhs.starts_with('i') || !lhs[1..].bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    rhs.trim() == format!("{lhs} + 1;")
}

/// Scan MiniC source for mutation points: integer constants, binary and
/// comparison operators, loop bounds, and `if` guards. Counter-increment
/// lines and `while`-header operators are deliberately excluded so every
/// mutant still terminates; everything else is fair game (a mutant that
/// fails the frontend is simply rejected by the fuzz loop).
pub fn mutation_points(src: &str) -> Vec<MutationPoint> {
    let mut points = Vec::new();
    let mut line_start = 0usize;
    for line in src.split_inclusive('\n') {
        let base = line_start;
        line_start += line.len();
        let trimmed = line.trim();
        if trimmed.starts_with("fn ")
            || trimmed.starts_with("global ")
            || is_counter_increment(trimmed)
        {
            continue;
        }
        if trimmed.starts_with("while ") {
            // only the bound constant is mutable on a loop header
            if let Some(lt) = line.find('<') {
                let b = line.as_bytes();
                let mut s = lt + 1;
                while s < b.len() && b[s] == b' ' {
                    s += 1;
                }
                let mut e = s;
                while e < b.len() && b[e].is_ascii_digit() {
                    e += 1;
                }
                if e > s {
                    points.push(MutationPoint {
                        start: base + s,
                        end: base + e,
                        kind: MutationKind::LoopBound,
                    });
                }
            }
            continue;
        }
        if trimmed.starts_with("if ") {
            // the whole condition between `if ` and the opening brace
            let cond_start = line.find("if ").expect("checked") + 3;
            if let Some(brace) = line.rfind('{') {
                let cond = line[cond_start..brace].trim_end();
                if !cond.is_empty() {
                    points.push(MutationPoint {
                        start: base + cond_start,
                        end: base + cond_start + cond.len(),
                        kind: MutationKind::Guard,
                    });
                }
            }
        }
        let b = line.as_bytes();
        let mut i = 0usize;
        while i < b.len() {
            let c = b[i];
            // two-character operators first
            if i + 1 < b.len() {
                let two = &line[i..i + 2];
                if matches!(two, "==" | "!=" | "<=" | ">=") {
                    points.push(MutationPoint {
                        start: base + i,
                        end: base + i + 2,
                        kind: MutationKind::CmpOp,
                    });
                    i += 2;
                    continue;
                }
                if matches!(two, "<<" | ">>") {
                    points.push(MutationPoint {
                        start: base + i,
                        end: base + i + 2,
                        kind: MutationKind::BinOp,
                    });
                    i += 2;
                    continue;
                }
                if matches!(two, "&&" | "||") {
                    i += 2; // structural; covered by Guard rewrites
                    continue;
                }
            }
            if c.is_ascii_digit() {
                if i > 0 && is_ident_char(b[i - 1]) {
                    // digits inside an identifier (v12, i3)
                    i += 1;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    continue;
                }
                let s = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                points.push(MutationPoint {
                    start: base + s,
                    end: base + i,
                    kind: MutationKind::IntConst,
                });
                continue;
            }
            match c {
                b'<' | b'>' => points.push(MutationPoint {
                    start: base + i,
                    end: base + i + 1,
                    kind: MutationKind::CmpOp,
                }),
                b'+' | b'*' | b'&' | b'|' | b'^' | b'/' | b'%' => points.push(MutationPoint {
                    start: base + i,
                    end: base + i + 1,
                    kind: MutationKind::BinOp,
                }),
                b'-' => {
                    // binary minus only; unary minus belongs to the literal
                    let prev = line[..i].trim_end().bytes().last();
                    if prev.is_some_and(|p| is_ident_char(p) || p == b')' || p == b']') {
                        points.push(MutationPoint {
                            start: base + i,
                            end: base + i + 1,
                            kind: MutationKind::BinOp,
                        });
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    points
}

/// A deletable/duplicable span of source lines: a single statement, or a
/// whole block construct (`if`/`while`/`fn`) including its matching brace.
/// Spans overlap — a block chunk contains its interior statement chunks —
/// so consumers get both coarse and fine granularities from one scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrcChunk {
    /// First line index (0-based) of the span.
    pub first: usize,
    /// Last line index, inclusive.
    pub last: usize,
}

impl SrcChunk {
    /// Line count of the span.
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Never true (a chunk spans at least one line); keeps clippy happy.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Scan MiniC source into deletable chunks (see [`SrcChunk`]). Pure
/// closer/continuation lines (`}`, `} else {`) are not chunks themselves;
/// they travel with the block chunk that owns them.
pub fn statement_chunks(src: &str) -> Vec<SrcChunk> {
    let lines: Vec<&str> = src.lines().collect();
    let net = |l: &str| {
        l.bytes().filter(|&b| b == b'{').count() as i64
            - l.bytes().filter(|&b| b == b'}').count() as i64
    };
    let mut chunks = Vec::new();
    let mut depth = 0i64;
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        let n = net(line);
        let starts_closed = trimmed.starts_with('}');
        if !trimmed.is_empty() && !starts_closed {
            if n > 0 {
                // block construct: span to where the net returns to zero
                let mut acc = n;
                let mut j = i;
                while acc > 0 && j + 1 < lines.len() {
                    j += 1;
                    acc += net(lines[j]);
                }
                if acc == 0 {
                    chunks.push(SrcChunk { first: i, last: j });
                }
            } else if n == 0 && depth >= 1 {
                chunks.push(SrcChunk { first: i, last: i });
            }
        }
        depth += n;
    }
    chunks
}

/// Rebuild source keeping only the lines where `keep[i]` is true (the
/// sub-program extraction primitive used by the shrinker and mutator).
pub fn remove_lines(src: &str, keep: &[bool]) -> String {
    let mut out = String::new();
    for (i, line) in src.lines().enumerate() {
        if keep.get(i).copied().unwrap_or(true) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// A random multi-block function with real dataflow, predicated ops, and
/// arbitrary (possibly unreachable) control flow — the liveness and
/// verifier property tests' input distribution.
pub fn random_dataflow_cfg(seed: u64) -> Function {
    let mut rng = Rng::new(seed);
    let mut f = Function::new(FuncId(0), "t");
    let nblocks = 2 + rng.pick(5) as usize;
    for _ in 1..nblocks {
        f.add_block();
    }
    let nregs = 3 + rng.pick(6);
    let regs: Vec<_> = (0..nregs).map(|_| f.new_vreg()).collect();
    for b in 0..nblocks {
        let mut ops = Vec::new();
        for _ in 0..rng.pick(6) {
            let d = regs[rng.pick(nregs) as usize];
            let a = regs[rng.pick(nregs) as usize];
            let c = regs[rng.pick(nregs) as usize];
            let mut op = Op::new(
                f.new_op_id(),
                Opcode::Add,
                vec![d],
                vec![Operand::Reg(a), Operand::Reg(c)],
            );
            if rng.pick(4) == 0 {
                op.guard = Some(regs[rng.pick(nregs) as usize]);
            }
            ops.push(op);
        }
        // terminator: branch to a random block or return
        if rng.pick(4) == 0 || nblocks == 1 {
            let val = regs[rng.pick(nregs) as usize];
            ops.push(Op::new(
                f.new_op_id(),
                Opcode::Ret,
                vec![],
                vec![Operand::Reg(val)],
            ));
        } else {
            let t = BlockId(rng.pick(nblocks as u64) as u32);
            if rng.pick(2) == 0 {
                let mut c = mk_br(f.new_op_id(), BlockId(rng.pick(nblocks as u64) as u32));
                c.guard = Some(regs[rng.pick(nregs) as usize]);
                ops.push(c);
            }
            ops.push(mk_br(f.new_op_id(), t));
        }
        f.block_mut(BlockId(b as u32)).ops = ops;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            let x = a.pick(10);
            assert_eq!(x, b.pick(10));
            assert!(x < 10);
        }
        assert_eq!(Rng::new(3).pick(0), 0);
    }

    #[test]
    fn derived_streams_differ() {
        let base = Rng::new(1);
        let xs: Vec<u64> = (0..4).map(|i| base.derive(i).next_u64()).collect();
        for i in 0..xs.len() {
            for j in i + 1..xs.len() {
                assert_ne!(xs[i], xs[j]);
            }
        }
    }

    #[test]
    fn minic_generator_is_deterministic() {
        assert_eq!(minic_program(42), minic_program(42));
        assert_ne!(minic_program(1), minic_program(2));
    }

    #[test]
    fn random_cfgs_are_deterministic() {
        let a = random_dataflow_cfg(9);
        let b = random_dataflow_cfg(9);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    const SNIPPET: &str = "global g: [int; 64];\n\
         fn main(a0: int, a1: int) {\n\
         let v2 = (a0 + 7);\n\
         if (v2) < (a1) {\n\
         g[v2 & 63] = -3;\n\
         } else {\n\
         out(v2);\n\
         }\n\
         let i5 = 0;\n\
         while i5 < 9 {\n\
         out((i5 << 2));\n\
         i5 = i5 + 1;\n\
         }\n\
         out(a1);\n\
         }\n";

    #[test]
    fn mutation_points_classify_sites() {
        let pts = mutation_points(SNIPPET);
        let at = |start: usize| pts.iter().find(|p| p.start == start);
        // constants, operators, guards exist; loop header yields exactly
        // one LoopBound; counter increment line yields nothing
        assert!(pts.iter().any(|p| p.kind == MutationKind::IntConst));
        assert!(pts.iter().any(|p| p.kind == MutationKind::BinOp));
        assert!(pts.iter().any(|p| p.kind == MutationKind::CmpOp));
        assert!(pts.iter().any(|p| p.kind == MutationKind::Guard));
        let bounds: Vec<_> = pts
            .iter()
            .filter(|p| p.kind == MutationKind::LoopBound)
            .collect();
        assert_eq!(bounds.len(), 1);
        assert_eq!(&SNIPPET[bounds[0].start..bounds[0].end], "9");
        let inc = SNIPPET.find("i5 = i5 + 1").unwrap();
        assert!(
            !pts.iter().any(|p| p.start >= inc && p.start < inc + 11),
            "counter increment must not be mutable"
        );
        // digits inside identifiers are not constants
        let v2use = SNIPPET.find("g[v2").unwrap() + 3;
        assert!(at(v2use).is_none());
        // every span is a sane slice
        for p in &pts {
            assert!(p.start < p.end && p.end <= SNIPPET.len());
            assert!(!SNIPPET[p.start..p.end].is_empty());
        }
    }

    #[test]
    fn statement_chunks_cover_blocks_and_statements() {
        let chunks = statement_chunks(SNIPPET);
        let lines: Vec<&str> = SNIPPET.lines().collect();
        // the if/else block is one chunk spanning header..closing brace
        let if_line = lines.iter().position(|l| l.starts_with("if ")).unwrap();
        let if_chunk = chunks.iter().find(|c| c.first == if_line).unwrap();
        assert_eq!(lines[if_chunk.last], "}");
        assert!(if_chunk.len() >= 4);
        // the while block is one chunk, and its interior statements are
        // separate (overlapping) chunks
        let wh = lines.iter().position(|l| l.starts_with("while ")).unwrap();
        let wh_chunk = chunks.iter().find(|c| c.first == wh).unwrap();
        assert!(wh_chunk.last > wh);
        assert!(chunks.iter().any(|c| c.first == wh + 1 && c.last == wh + 1));
        // the whole fn is a chunk; pure closers are not
        let fn_line = lines.iter().position(|l| l.starts_with("fn ")).unwrap();
        assert!(chunks.iter().any(|c| c.first == fn_line));
        assert!(!chunks
            .iter()
            .any(|c| lines[c.first].trim().starts_with('}')));
    }

    #[test]
    fn remove_lines_extracts_subprograms() {
        let src = "a\nb\nc\n";
        assert_eq!(remove_lines(src, &[true, false, true]), "a\nc\n");
        assert_eq!(remove_lines(src, &[true, true, true]), src);
    }

    #[test]
    fn generated_programs_scan_cleanly() {
        for seed in [0u64, 7, 99] {
            let src = minic_program(seed);
            let pts = mutation_points(&src);
            assert!(!pts.is_empty());
            let chunks = statement_chunks(&src);
            assert!(!chunks.is_empty());
            let nlines = src.lines().count();
            for c in &chunks {
                assert!(c.first <= c.last && c.last < nlines);
            }
        }
    }
}
