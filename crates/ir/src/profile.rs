//! Control-flow profiles: collection results and re-annotation.
//!
//! IMPACT's pipeline profiles the program once (on the training input) and
//! carries the weights on the IR through every later transformation. Here,
//! [`Profile`] is produced by the interpreter (see [`crate::interp`]) and
//! [`Profile::apply`] writes the weights into block/op fields, after which
//! transforms maintain them.

use crate::types::{BlockId, FuncId};
use crate::Program;
use std::collections::HashMap;

/// Execution counts gathered by a profiling run.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per function, per block: entry count.
    pub block_entries: Vec<Vec<u64>>,
    /// Per function: (block, op index) -> taken count for branch ops.
    pub branch_taken: Vec<HashMap<(u32, u32), u64>>,
    /// Per function: (block, op index) -> callee FuncId -> count, for
    /// *indirect* call sites (drives indirect-call promotion).
    pub call_targets: Vec<HashMap<(u32, u32), HashMap<u32, u64>>>,
}

impl Profile {
    /// An empty profile shaped for `prog`.
    pub fn for_program(prog: &Program) -> Profile {
        Profile {
            block_entries: prog.funcs.iter().map(|f| vec![0; f.blocks.len()]).collect(),
            branch_taken: prog.funcs.iter().map(|_| HashMap::new()).collect(),
            call_targets: prog.funcs.iter().map(|_| HashMap::new()).collect(),
        }
    }

    /// Record an indirect call's resolved target.
    pub fn record_call_target(&mut self, f: FuncId, b: BlockId, op_idx: usize, callee: FuncId) {
        *self.call_targets[f.index()]
            .entry((b.0, op_idx as u32))
            .or_default()
            .entry(callee.0)
            .or_insert(0) += 1;
    }

    /// Record a block entry.
    pub fn enter_block(&mut self, f: FuncId, b: BlockId) {
        self.block_entries[f.index()][b.index()] += 1;
    }

    /// Record a taken branch at `(block, op index)`.
    pub fn take_branch(&mut self, f: FuncId, b: BlockId, op_idx: usize) {
        *self.branch_taken[f.index()]
            .entry((b.0, op_idx as u32))
            .or_insert(0) += 1;
    }

    /// Write the collected weights onto the program's blocks and branch ops.
    ///
    /// The program must have the same shape (functions/blocks/ops) as the
    /// one profiled — i.e. call this before running any transformation.
    pub fn apply(&self, prog: &mut Program) {
        for (fi, f) in prog.funcs.iter_mut().enumerate() {
            for (bi, blk) in f.blocks.iter_mut().enumerate() {
                if blk.removed {
                    continue;
                }
                blk.weight = self.block_entries[fi].get(bi).copied().unwrap_or(0) as f64;
                for (oi, op) in blk.ops.iter_mut().enumerate() {
                    if op.is_branch() {
                        op.weight = self.branch_taken[fi]
                            .get(&(bi as u32, oi as u32))
                            .copied()
                            .unwrap_or(0) as f64;
                    }
                }
            }
        }
    }

    /// Total block entries across the program (a cheap "did we profile
    /// anything" signal for tests).
    pub fn total_entries(&self) -> u64 {
        self.block_entries.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_writes_weights() {
        let mut prog = Program::new();
        let f = prog.add_func("main");
        {
            let func = prog.func_mut(f);
            let b1 = func.add_block();
            let mut br = crate::func::mk_br(func.new_op_id(), b1);
            br.guard = Some(func.new_vreg());
            let exit = crate::func::mk_br(func.new_op_id(), b1);
            func.block_mut(BlockId(0)).ops.extend([br, exit]);
            let ret = crate::Op::new(func.new_op_id(), crate::types::Opcode::Ret, vec![], vec![]);
            func.block_mut(b1).ops.push(ret);
        }
        let mut p = Profile::for_program(&prog);
        p.enter_block(f, BlockId(0));
        p.enter_block(f, BlockId(1));
        p.take_branch(f, BlockId(0), 0);
        p.apply(&mut prog);
        assert_eq!(prog.func(f).block(BlockId(0)).weight, 1.0);
        assert_eq!(prog.func(f).block(BlockId(0)).ops[0].weight, 1.0);
        assert_eq!(prog.func(f).block(BlockId(0)).ops[1].weight, 0.0);
        assert_eq!(p.total_entries(), 2);
    }
}
