//! Reference interpreter for the IR.
//!
//! Serves three roles:
//! 1. **Semantic oracle** — the observable output (the `Out` stream) of any
//!    correctly compiled/transformed program must match the interpreter's
//!    output on the original program.
//! 2. **Profiler** — collects block-entry and branch-taken counts for
//!    profile-guided compilation (SPEC-style train/ref methodology).
//! 3. **Debugging aid** — the interpreter understands guards, speculation
//!    and NaT, so transformed IR can also be executed directly.

use crate::mem::{func_from_addr, Memory};
use crate::profile::Profile;
use crate::types::{BlockId, FuncId, Opcode, Operand, Vreg};
use crate::value::Value;
use crate::Program;

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq)]
pub enum Trap {
    /// Non-speculative access to an invalid address.
    MemFault(u64),
    /// Integer division by zero.
    DivByZero,
    /// Indirect call to a non-function address.
    BadCall(u64),
    /// Execution exceeded the fuel limit.
    OutOfFuel,
    /// A deferred NaT was consumed by a non-speculative side effect.
    NatConsumed(String),
    /// A block ran past its last op without a terminator (verifier bug).
    FellOffBlock(String),
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::MemFault(a) => write!(f, "memory fault at {a:#x}"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::BadCall(a) => write!(f, "indirect call to non-function address {a:#x}"),
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::NatConsumed(w) => write!(f, "NaT consumed non-speculatively at {w}"),
            Trap::FellOffBlock(w) => write!(f, "fell off end of block in {w}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Result of a successful run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Values emitted by `Out` ops, in order.
    pub output: Vec<u64>,
    /// FNV-1a checksum of the output stream.
    pub checksum: u64,
    /// Main's return value.
    pub ret: u64,
    /// Dynamic op count (guard-true executions).
    pub ops_executed: u64,
    /// Dynamic branch count (guard-true `Br` executions + unconditional).
    pub branches_executed: u64,
    /// Profile, when collection was requested.
    pub profile: Option<Profile>,
}

/// FNV-1a over a stream of u64s.
pub fn checksum(vals: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in vals {
        for i in 0..8 {
            h ^= (v >> (8 * i)) & 0xff;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Interpreter configuration.
#[derive(Clone, Copy, Debug)]
pub struct InterpOptions {
    /// Maximum dynamic op executions before [`Trap::OutOfFuel`].
    pub fuel: u64,
    /// Collect a [`Profile`]?
    pub collect_profile: bool,
}

impl Default for InterpOptions {
    fn default() -> InterpOptions {
        InterpOptions {
            fuel: 2_000_000_000,
            collect_profile: false,
        }
    }
}

struct Frame {
    func: FuncId,
    regs: Vec<Value>,
    sp: u64,
    block: BlockId,
    op_idx: usize,
    ret_dst: Option<Vreg>,
}

/// Run `prog` from its entry function with the given integer arguments.
///
/// # Errors
/// Returns a [`Trap`] on any runtime error (which differential tests treat
/// as a hard failure: correct workloads never trap).
pub fn run(prog: &Program, args: &[i64], opts: InterpOptions) -> Result<RunResult, Trap> {
    let mut mem = Memory::new();
    mem.init_globals(prog);
    let mut profile = if opts.collect_profile {
        Some(Profile::for_program(prog))
    } else {
        None
    };
    let mut output = Vec::new();
    let mut ops_executed = 0u64;
    let mut branches = 0u64;

    let entry = prog.func(prog.entry);
    let mut frame = Frame {
        func: prog.entry,
        regs: vec![Value::default(); entry.vreg_count()],
        sp: crate::mem::STACK_TOP - ((entry.frame_size + 15) & !15),
        block: entry.entry,
        op_idx: 0,
        ret_dst: None,
    };
    for (i, p) in entry.params.iter().enumerate() {
        frame.regs[p.index()] = Value::new(args.get(i).copied().unwrap_or(0) as u64);
    }
    if let Some(p) = profile.as_mut() {
        p.enter_block(frame.func, frame.block);
    }
    let mut stack: Vec<Frame> = Vec::new();
    // ALAT model for data speculation: (frame depth, value reg) -> watched
    // address range. Stores invalidate overlapping entries; `chk.a` hits
    // use the speculated value, misses re-execute the load.
    let mut alat: std::collections::HashMap<(usize, u32), (u64, u64)> =
        std::collections::HashMap::new();

    'exec: loop {
        let func = prog.func(frame.func);
        let blk = func.block(frame.block);
        let Some(op) = blk.ops.get(frame.op_idx) else {
            return Err(Trap::FellOffBlock(func.name.clone()));
        };
        frame.op_idx += 1;
        ops_executed += 1;
        if ops_executed > opts.fuel {
            return Err(Trap::OutOfFuel);
        }
        // Guard check: squashed ops do nothing.
        if let Some(g) = op.guard {
            if !frame.regs[g.index()].is_true() {
                continue;
            }
        }
        let ev = |frame: &Frame, o: &Operand| -> Value {
            match *o {
                Operand::Reg(v) => frame.regs[v.index()],
                Operand::Imm(i) => Value::new(i as u64),
                Operand::Global(g) => Value::new(prog.globals[g.index()].addr),
                Operand::FuncAddr(f) => Value::new(crate::mem::func_addr(f)),
                Operand::FrameAddr(off) => Value::new(frame.sp + off),
                Operand::Label(_) => unreachable!("label evaluated as value"),
            }
        };
        match op.opcode {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::Sar => {
                let a = ev(&frame, &op.srcs[0]);
                let b = ev(&frame, &op.srcs[1]);
                frame.regs[op.dsts[0].index()] =
                    Value::lift2(a, b, |x, y| eval_alu(op.opcode, x, y));
            }
            Opcode::Div | Opcode::Rem => {
                let a = ev(&frame, &op.srcs[0]);
                let b = ev(&frame, &op.srcs[1]);
                if a.nat || b.nat {
                    frame.regs[op.dsts[0].index()] = Value::NAT;
                } else if b.bits == 0 {
                    return Err(Trap::DivByZero);
                } else {
                    let (x, y) = (a.bits as i64, b.bits as i64);
                    let r = if matches!(op.opcode, Opcode::Div) {
                        x.wrapping_div(y)
                    } else {
                        x.wrapping_rem(y)
                    };
                    frame.regs[op.dsts[0].index()] = Value::new(r as u64);
                }
            }
            Opcode::Cmp(kind) => {
                let a = ev(&frame, &op.srcs[0]);
                let b = ev(&frame, &op.srcs[1]);
                // IA-64: NaT inputs clear both target predicates.
                let (t, f_) = if a.nat || b.nat {
                    (0u64, 0u64)
                } else {
                    let r = kind.eval(a.bits, b.bits);
                    (r as u64, !r as u64)
                };
                frame.regs[op.dsts[0].index()] = Value::new(t);
                if let Some(d1) = op.dsts.get(1) {
                    frame.regs[d1.index()] = Value::new(f_);
                }
            }
            Opcode::Mov => {
                frame.regs[op.dsts[0].index()] = ev(&frame, &op.srcs[0]);
            }
            Opcode::Ld(size) => {
                let addr = ev(&frame, &op.srcs[0]);
                let v = if addr.nat {
                    if op.spec {
                        Value::NAT
                    } else {
                        return Err(Trap::NatConsumed(format!("load in {}", func.name)));
                    }
                } else {
                    match mem.read(addr.bits, size.bytes()) {
                        Ok(v) => Value::new(v),
                        Err(fault) => {
                            if op.spec {
                                Value::NAT
                            } else {
                                return Err(Trap::MemFault(fault.addr));
                            }
                        }
                    }
                };
                frame.regs[op.dsts[0].index()] = v;
                if op.adv && !v.nat {
                    let a = ev(&frame, &op.srcs[0]);
                    if !a.nat {
                        alat.insert((stack.len(), op.dsts[0].0), (a.bits, size.bytes()));
                    }
                }
            }
            Opcode::ChkA(size) => {
                let key = match op.srcs[0] {
                    Operand::Reg(v) => (stack.len(), v.0),
                    _ => return Err(Trap::NatConsumed("chk.a of non-register".into())),
                };
                let v = ev(&frame, &op.srcs[0]);
                if alat.contains_key(&key) && !v.nat {
                    frame.regs[op.dsts[0].index()] = v;
                } else {
                    let addr = ev(&frame, &op.srcs[1]);
                    if addr.nat {
                        return Err(Trap::NatConsumed(format!("chk.a in {}", func.name)));
                    }
                    match mem.read(addr.bits, size.bytes()) {
                        Ok(x) => frame.regs[op.dsts[0].index()] = Value::new(x),
                        Err(fault) => return Err(Trap::MemFault(fault.addr)),
                    }
                }
            }
            Opcode::Chk(size) => {
                let v = ev(&frame, &op.srcs[0]);
                if v.nat {
                    let addr = ev(&frame, &op.srcs[1]);
                    if addr.nat {
                        return Err(Trap::NatConsumed(format!("chk in {}", func.name)));
                    }
                    match mem.read(addr.bits, size.bytes()) {
                        Ok(x) => frame.regs[op.dsts[0].index()] = Value::new(x),
                        Err(fault) => return Err(Trap::MemFault(fault.addr)),
                    }
                } else {
                    frame.regs[op.dsts[0].index()] = v;
                }
            }
            Opcode::St(size) => {
                let addr = ev(&frame, &op.srcs[0]);
                let val = ev(&frame, &op.srcs[1]);
                if addr.nat || val.nat {
                    return Err(Trap::NatConsumed(format!("store in {}", func.name)));
                }
                mem.write(addr.bits, size.bytes(), val.bits)
                    .map_err(|f| Trap::MemFault(f.addr))?;
                // stores invalidate overlapping ALAT entries
                let (sa, sz) = (addr.bits, size.bytes());
                alat.retain(|_, &mut (ea, es)| sa + sz <= ea || ea + es <= sa);
            }
            Opcode::Br => {
                branches += 1;
                let target = op.srcs[0].label().expect("verified branch");
                if let Some(p) = profile.as_mut() {
                    p.take_branch(frame.func, frame.block, frame.op_idx - 1);
                    p.enter_block(frame.func, target);
                }
                frame.block = target;
                frame.op_idx = 0;
            }
            Opcode::Call => {
                let callee = match op.srcs[0] {
                    Operand::FuncAddr(f) => f,
                    ref o => {
                        let v = ev(&frame, o);
                        if v.nat {
                            return Err(Trap::NatConsumed(format!("call in {}", func.name)));
                        }
                        let target = func_from_addr(v.bits).ok_or(Trap::BadCall(v.bits))?;
                        if let Some(p) = profile.as_mut() {
                            p.record_call_target(frame.func, frame.block, frame.op_idx - 1, target);
                        }
                        target
                    }
                };
                let target = prog.func(callee);
                let mut regs = vec![Value::default(); target.vreg_count()];
                for (i, p) in target.params.iter().enumerate() {
                    if let Some(a) = op.srcs.get(1 + i) {
                        regs[p.index()] = ev(&frame, a);
                    }
                }
                let sp = frame.sp - ((target.frame_size + 15) & !15);
                if sp < crate::mem::STACK_TOP - crate::mem::STACK_MAX {
                    return Err(Trap::MemFault(sp));
                }
                let new = Frame {
                    func: callee,
                    regs,
                    sp,
                    block: target.entry,
                    op_idx: 0,
                    ret_dst: op.dsts.first().copied(),
                };
                if let Some(p) = profile.as_mut() {
                    p.enter_block(callee, target.entry);
                }
                stack.push(std::mem::replace(&mut frame, new));
            }
            Opcode::Ret => {
                let val = op
                    .srcs
                    .first()
                    .map(|s| ev(&frame, s))
                    .unwrap_or(Value::new(0));
                match stack.pop() {
                    Some(mut caller) => {
                        if let Some(d) = frame.ret_dst {
                            caller.regs[d.index()] = val;
                        }
                        frame = caller;
                    }
                    None => {
                        if val.nat {
                            return Err(Trap::NatConsumed("main return".into()));
                        }
                        return Ok(RunResult {
                            checksum: checksum(&output),
                            output,
                            ret: val.bits,
                            ops_executed,
                            branches_executed: branches,
                            profile,
                        });
                    }
                }
            }
            Opcode::Alloc => {
                let n = ev(&frame, &op.srcs[0]);
                if n.nat {
                    return Err(Trap::NatConsumed(format!("alloc in {}", func.name)));
                }
                frame.regs[op.dsts[0].index()] = Value::new(mem.alloc(n.bits));
            }
            Opcode::Out => {
                let v = ev(&frame, &op.srcs[0]);
                if v.nat {
                    return Err(Trap::NatConsumed(format!("out in {}", func.name)));
                }
                output.push(v.bits);
            }
            Opcode::Nop => {}
        }
        // Falling past the last op without a control transfer is caught at
        // the top of the loop (`ops.get` returns None -> FellOffBlock).
        continue 'exec;
    }
}

fn eval_alu(opcode: Opcode, a: u64, b: u64) -> u64 {
    match opcode {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a << (b & 63),
        Opcode::Shr => a >> (b & 63),
        Opcode::Sar => ((a as i64) >> (b & 63)) as u64,
        _ => unreachable!("non-ALU opcode in eval_alu"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::{CmpKind, MemSize};

    fn run_main(build: impl FnOnce(&mut FuncBuilder, &mut Program)) -> RunResult {
        let mut prog = Program::new();
        let id = prog.add_func("main");
        let mut b = FuncBuilder::new(id, "main");
        build(&mut b, &mut prog);
        prog.funcs[id.index()] = b.finish();
        prog.entry = id;
        prog.assign_layout();
        crate::verify::verify_program(&prog).unwrap();
        run(&prog, &[], InterpOptions::default()).unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let r = run_main(|b, _| {
            let x = b.mov(6i64);
            let y = b.binop(Opcode::Mul, x, 7i64);
            b.out(y);
            b.ret(Some(Operand::Reg(y)));
        });
        assert_eq!(r.output, vec![42]);
        assert_eq!(r.ret, 42);
        assert_eq!(r.checksum, checksum(&[42]));
    }

    #[test]
    fn loop_sums() {
        let r = run_main(|b, _| {
            let body = b.block();
            let done = b.block();
            let i = b.vreg();
            let acc = b.vreg();
            b.mov_to(i, 0i64);
            b.mov_to(acc, 0i64);
            b.br(body);
            b.switch_to(body);
            b.binop_to(acc, Opcode::Add, acc, i);
            b.binop_to(i, Opcode::Add, i, 1i64);
            let p = b.cmp(CmpKind::SLt, i, 100i64);
            b.brc(p, body);
            b.br(done);
            b.switch_to(done);
            b.out(acc);
            b.ret(None);
        });
        assert_eq!(r.output, vec![4950]);
        assert!(r.branches_executed >= 100);
    }

    #[test]
    fn memory_and_frame() {
        let r = run_main(|b, _| {
            let slot = b.frame_alloc(8);
            b.store(MemSize::B8, Operand::FrameAddr(slot), 1234i64);
            let v = b.load(MemSize::B8, Operand::FrameAddr(slot));
            b.out(v);
            b.ret(None);
        });
        assert_eq!(r.output, vec![1234]);
    }

    #[test]
    fn calls_pass_args_and_return() {
        let mut prog = Program::new();
        let main_id = prog.add_func("main");
        let add_id = prog.add_func("addfn");
        let mut fb = FuncBuilder::new(add_id, "addfn");
        let a = fb.param();
        let c = fb.param();
        let s = fb.binop(Opcode::Add, a, c);
        fb.ret(Some(Operand::Reg(s)));
        prog.funcs[add_id.index()] = fb.finish();
        let mut mb = FuncBuilder::new(main_id, "main");
        let r = mb.call(
            Operand::FuncAddr(add_id),
            &[Operand::Imm(40), Operand::Imm(2)],
        );
        mb.out(r);
        // indirect call through a register
        let fp = mb.mov(Operand::FuncAddr(add_id));
        let r2 = mb.call(fp, &[Operand::Imm(1), Operand::Imm(2)]);
        mb.out(r2);
        mb.ret(None);
        prog.funcs[main_id.index()] = mb.finish();
        prog.entry = main_id;
        prog.assign_layout();
        let res = run(&prog, &[], InterpOptions::default()).unwrap();
        assert_eq!(res.output, vec![42, 3]);
    }

    #[test]
    fn speculative_load_defers_and_guard_squashes() {
        let r = run_main(|b, _| {
            // wild speculative load -> NaT, but guarded consumer squashed
            let addr = b.mov(0x1234i64); // unmapped
            let d = b.vreg();
            let mut ld = crate::Op::new(
                crate::types::OpId(0),
                Opcode::Ld(MemSize::B8),
                vec![d],
                vec![Operand::Reg(addr)],
            );
            ld.spec = true;
            b.push(ld);
            let (_p, q) = b.cmp2(CmpKind::Eq, 1i64, 1i64); // p=1, q=0
                                                           // (q) out d  -- squashed, so the NaT is never consumed
            let mut out = crate::Op::new(
                crate::types::OpId(0),
                Opcode::Out,
                vec![],
                vec![Operand::Reg(d)],
            );
            out.guard = Some(q);
            b.push(out);
            b.out(7i64);
            b.ret(None);
        });
        assert_eq!(r.output, vec![7]);
    }

    #[test]
    fn nonspec_wild_load_traps() {
        let mut prog = Program::new();
        let id = prog.add_func("main");
        let mut b = FuncBuilder::new(id, "main");
        let v = b.load(MemSize::B8, Operand::Imm(0x99));
        b.out(v);
        b.ret(None);
        prog.funcs[id.index()] = b.finish();
        prog.entry = id;
        prog.assign_layout();
        let e = run(&prog, &[], InterpOptions::default()).unwrap_err();
        assert_eq!(e, Trap::MemFault(0x99));
    }

    #[test]
    fn profile_collects_counts() {
        let mut prog = Program::new();
        let id = prog.add_func("main");
        let mut b = FuncBuilder::new(id, "main");
        let body = b.block();
        let done = b.block();
        let i = b.vreg();
        b.mov_to(i, 0i64);
        b.br(body);
        b.switch_to(body);
        b.binop_to(i, Opcode::Add, i, 1i64);
        let p = b.cmp(CmpKind::SLt, i, 10i64);
        b.brc(p, body);
        b.br(done);
        b.switch_to(done);
        b.ret(None);
        prog.funcs[id.index()] = b.finish();
        prog.entry = id;
        prog.assign_layout();
        let res = run(
            &prog,
            &[],
            InterpOptions {
                collect_profile: true,
                ..Default::default()
            },
        )
        .unwrap();
        let prof = res.profile.unwrap();
        assert_eq!(prof.block_entries[0][body.index()], 10);
        prof.apply(&mut prog);
        assert_eq!(prog.func(id).block(body).weight, 10.0);
        // the back edge was taken 9 times
        assert_eq!(prog.func(id).block(body).ops[2].weight, 9.0);
    }

    #[test]
    fn fuel_limit_traps() {
        let mut prog = Program::new();
        let id = prog.add_func("main");
        let mut b = FuncBuilder::new(id, "main");
        let spin = b.block();
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        prog.funcs[id.index()] = b.finish();
        prog.entry = id;
        let e = run(
            &prog,
            &[],
            InterpOptions {
                fuel: 1000,
                collect_profile: false,
            },
        )
        .unwrap_err();
        assert_eq!(e, Trap::OutOfFuel);
    }
}
