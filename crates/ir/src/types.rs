//! Core identifier and operand types for the Lcode-like IR.
//!
//! The IR is a *non-SSA*, predicated, virtual-register representation
//! modeled on IMPACT's Lcode. Values are untyped 64-bit integers; predicate
//! values are ordinary virtual registers holding 0 or 1.

use std::fmt;

/// A virtual register. Predicates are ordinary virtual registers that hold
/// 0 (false) or 1 (true); the register allocator later decides which vregs
/// map onto the predicate register file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vreg(pub u32);

impl Vreg {
    /// Index of this vreg, for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic/extended block id, an index into [`crate::Function::blocks`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A function id, an index into [`crate::Program::funcs`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A global variable id, an index into [`crate::Program::globals`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl GlobalId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A per-function unique operation id. Stable across scheduling so results
/// can be attributed back to operations; cloned operations (tail duplication,
/// peeling, inlining) receive fresh ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl OpId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Memory access width. Loads zero-extend to 64 bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

/// Comparison kind for [`Opcode::Cmp`]. `S*` are signed, `U*` unsigned.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpKind {
    Eq,
    Ne,
    SLt,
    SLe,
    SGt,
    SGe,
    ULt,
    ULe,
    UGt,
    UGe,
}

impl CmpKind {
    /// Evaluate the comparison on two 64-bit values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::SLt => sa < sb,
            CmpKind::SLe => sa <= sb,
            CmpKind::SGt => sa > sb,
            CmpKind::SGe => sa >= sb,
            CmpKind::ULt => a < b,
            CmpKind::ULe => a <= b,
            CmpKind::UGt => a > b,
            CmpKind::UGe => a >= b,
        }
    }

    /// The comparison computing the logical negation of `self`.
    pub fn negate(self) -> CmpKind {
        match self {
            CmpKind::Eq => CmpKind::Ne,
            CmpKind::Ne => CmpKind::Eq,
            CmpKind::SLt => CmpKind::SGe,
            CmpKind::SLe => CmpKind::SGt,
            CmpKind::SGt => CmpKind::SLe,
            CmpKind::SGe => CmpKind::SLt,
            CmpKind::ULt => CmpKind::UGe,
            CmpKind::ULe => CmpKind::UGt,
            CmpKind::UGt => CmpKind::ULe,
            CmpKind::UGe => CmpKind::ULt,
        }
    }

    /// The comparison with the operand order swapped (`a < b` ↔ `b > a`).
    pub fn swap(self) -> CmpKind {
        match self {
            CmpKind::Eq => CmpKind::Eq,
            CmpKind::Ne => CmpKind::Ne,
            CmpKind::SLt => CmpKind::SGt,
            CmpKind::SLe => CmpKind::SGe,
            CmpKind::SGt => CmpKind::SLt,
            CmpKind::SGe => CmpKind::SLe,
            CmpKind::ULt => CmpKind::UGt,
            CmpKind::ULe => CmpKind::UGe,
            CmpKind::UGt => CmpKind::ULt,
            CmpKind::UGe => CmpKind::ULe,
        }
    }
}

/// Instruction opcodes. Operand shapes are documented per variant; see
/// [`crate::Op`] for the container.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// `dst = src0 + src1` (wrapping).
    Add,
    /// `dst = src0 - src1` (wrapping).
    Sub,
    /// `dst = src0 * src1` (wrapping). Executes on an F unit (Itanium has no
    /// integer multiply on the I units).
    Mul,
    /// `dst = src0 / src1` (signed; traps on divide by zero). F unit.
    Div,
    /// `dst = src0 % src1` (signed; traps on divide by zero). F unit.
    Rem,
    /// `dst = src0 & src1`.
    And,
    /// `dst = src0 | src1`.
    Or,
    /// `dst = src0 ^ src1`.
    Xor,
    /// `dst = src0 << (src1 & 63)`.
    Shl,
    /// `dst = src0 >> (src1 & 63)` (logical).
    Shr,
    /// `dst = src0 >> (src1 & 63)` (arithmetic).
    Sar,
    /// `dst0 = (src0 <kind> src1); dst1 = !dst0` — like IA-64 `cmp`, which
    /// writes a predicate and its complement. `dst1` is optional.
    Cmp(CmpKind),
    /// `dst = src0` (register, immediate, or address operand).
    Mov,
    /// `dst = zero_extend(mem[src0])`. With [`crate::Op::spec`] set, this is a
    /// control-speculative load with NaT deferral semantics.
    Ld(MemSize),
    /// `mem[src0] = truncate(src1)`. Never speculative.
    St(MemSize),
    /// `goto src0` (a [`Operand::Label`]). With a guard predicate this is a
    /// conditional branch, as on IA-64 (`(p) br.cond`).
    Br,
    /// `dst? = call src0(src1..)`. `src0` is a [`Operand::FuncAddr`] for
    /// direct calls or a register for indirect calls.
    Call,
    /// `return src0?`.
    Ret,
    /// `dst = heap_alloc(src0 bytes)` — bump allocation from the runtime.
    Alloc,
    /// Emit `src0` to the program output stream (the observable behaviour
    /// checked by differential tests).
    Out,
    /// Sentinel-speculation check: if `src0` carries a NaT, re-execute the
    /// load from address `src1`, writing `dst`; otherwise `dst = src0`.
    Chk(MemSize),
    /// Data-speculation check (`chk.a`): if the ALAT entry installed by the
    /// advanced load that produced `src0` was invalidated by an intervening
    /// store, re-execute the load from address `src1`; else `dst = src0`.
    ChkA(MemSize),
    /// Machine filler; never appears before scheduling.
    Nop,
}

impl Opcode {
    /// True for two-source pure integer ALU arithmetic.
    pub fn is_alu(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::Div
                | Opcode::Rem
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Sar
        )
    }

    /// Operations with no side effects and no trap potential (excludes
    /// loads, which may fault, and Div/Rem, which may trap).
    pub fn is_pure(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Sar
                | Opcode::Cmp(_)
                | Opcode::Mov
        )
    }
}

/// An instruction operand.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Operand {
    /// A virtual register.
    Reg(Vreg),
    /// A 64-bit immediate.
    Imm(i64),
    /// The runtime address of a global variable.
    Global(GlobalId),
    /// The runtime "address" of a function (for indirect calls).
    FuncAddr(FuncId),
    /// `sp + offset` within the current frame (address of a stack slot).
    FrameAddr(u64),
    /// A branch target.
    Label(BlockId),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(self) -> Option<Vreg> {
        match self {
            Operand::Reg(v) => Some(v),
            _ => None,
        }
    }

    /// The label, if this operand is one.
    pub fn label(self) -> Option<BlockId> {
        match self {
            Operand::Label(b) => Some(b),
            _ => None,
        }
    }

    /// The immediate, if this operand is one.
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Imm(i) => Some(i),
            _ => None,
        }
    }
}

impl From<Vreg> for Operand {
    fn from(v: Vreg) -> Operand {
        Operand::Reg(v)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Operand {
        Operand::Imm(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_signed_vs_unsigned() {
        let a = -1i64 as u64;
        let b = 1u64;
        assert!(CmpKind::SLt.eval(a, b));
        assert!(!CmpKind::ULt.eval(a, b));
        assert!(CmpKind::UGt.eval(a, b));
    }

    #[test]
    fn cmp_negate_is_involution() {
        for k in [
            CmpKind::Eq,
            CmpKind::Ne,
            CmpKind::SLt,
            CmpKind::SLe,
            CmpKind::SGt,
            CmpKind::SGe,
            CmpKind::ULt,
            CmpKind::ULe,
            CmpKind::UGt,
            CmpKind::UGe,
        ] {
            assert_eq!(k.negate().negate(), k);
            // negation flips the result on arbitrary values
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 3), (5, 5)] {
                assert_eq!(k.eval(a, b), !k.negate().eval(a, b));
                assert_eq!(k.eval(a, b), k.swap().eval(b, a));
            }
        }
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Vreg(3).into();
        assert_eq!(o.reg(), Some(Vreg(3)));
        let o: Operand = 42i64.into();
        assert_eq!(o.imm(), Some(42));
        assert_eq!(o.reg(), None);
        assert_eq!(Operand::Label(BlockId(2)).label(), Some(BlockId(2)));
    }

    #[test]
    fn memsize_bytes() {
        assert_eq!(MemSize::B1.bytes(), 1);
        assert_eq!(MemSize::B8.bytes(), 8);
    }

    #[test]
    fn pure_excludes_traps_and_memory() {
        assert!(Opcode::Add.is_pure());
        assert!(!Opcode::Div.is_pure());
        assert!(!Opcode::Ld(MemSize::B8).is_pure());
        assert!(!Opcode::St(MemSize::B8).is_pure());
        assert!(!Opcode::Call.is_pure());
    }
}
