//! # epic-ir
//!
//! The intermediate representation underlying the IMPACT EPIC reproduction
//! (ISCA'04, "Field-testing IMPACT EPIC research results in Itanium 2").
//!
//! This crate models IMPACT's *Lcode*: a low-level, **non-SSA**, virtual
//! register IR in which every operation may carry a *qualifying predicate*
//! (guard) and loads may be *control-speculative* with IA-64 NaT deferral
//! semantics. On top of the IR it provides:
//!
//! * CFG utilities and analyses: dominators ([`dom`]), natural loops
//!   ([`loops`]), liveness ([`liveness`]);
//! * a structural verifier ([`verify`]);
//! * a flat 64-bit [memory model](mem) shared with the simulator;
//! * a reference [interpreter](interp) that acts as the semantic oracle for
//!   differential testing and as the control-flow profiler.
//!
//! ## Example
//!
//! ```
//! use epic_ir::{builder::FuncBuilder, interp, Program, Operand, Opcode};
//!
//! let mut prog = Program::new();
//! let id = prog.add_func("main");
//! let mut b = FuncBuilder::new(id, "main");
//! let x = b.mov(20i64);
//! let y = b.binop(Opcode::Add, x, 22i64);
//! b.out(y);
//! b.ret(Some(Operand::Reg(y)));
//! prog.funcs[id.index()] = b.finish();
//! prog.entry = id;
//! prog.assign_layout();
//! let r = interp::run(&prog, &[], interp::InterpOptions::default()).unwrap();
//! assert_eq!(r.output, vec![42]);
//! ```

pub mod bitset;
pub mod builder;
pub mod dom;
pub mod func;
pub mod interp;
pub mod liveness;
pub mod loops;
pub mod mem;
pub mod op;
pub mod profile;
pub mod testing;
pub mod types;
pub mod value;
pub mod verify;

pub use func::{Block, BlockOrigin, Function, Global, Program};
pub use op::Op;
pub use types::{BlockId, CmpKind, FuncId, GlobalId, MemSize, OpId, Opcode, Operand, Vreg};
pub use value::Value;
