//! Natural-loop discovery on top of the dominator tree.

use crate::bitset::BitSet;
use crate::dom::DomTree;
use crate::func::Function;
use crate::types::BlockId;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (dominates all body blocks).
    pub header: BlockId,
    /// Blocks in the loop, including the header.
    pub body: Vec<BlockId>,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
    /// Blocks *outside* the loop targeted by branches from inside.
    pub exits: Vec<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
}

impl Loop {
    /// Is `b` in the loop body?
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }

    /// Profile-estimated trip count: header weight divided by entries from
    /// outside the loop. Returns `None` when the loop never runs.
    pub fn trip_count(&self, f: &Function, preds: &[Vec<BlockId>]) -> Option<f64> {
        let header_w = f.block(self.header).weight;
        let outside_w: f64 = preds[self.header.index()]
            .iter()
            .filter(|p| !self.contains(**p))
            .map(|p| {
                // weight of the edge p -> header approximated by the branch
                // taken weight, or block weight for fallthrough terminators.
                edge_weight(f, *p, self.header)
            })
            .sum();
        if outside_w <= 0.0 || header_w <= 0.0 {
            None
        } else {
            Some(header_w / outside_w)
        }
    }
}

/// Profiled weight of CFG edge `from -> to` (sum over branch ops in `from`
/// targeting `to`, using taken weights; an unguarded terminator contributes
/// its own weight).
pub fn edge_weight(f: &Function, from: BlockId, to: BlockId) -> f64 {
    let mut w = 0.0;
    for op in &f.block(from).ops {
        if op.branch_target() == Some(to) {
            w += op.weight;
        }
    }
    w
}

/// All natural loops in a function, innermost-first.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// Loops sorted by descending depth (innermost first). Loops sharing a
    /// header are merged.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Discover loops using back edges `(latch -> header)` where the header
    /// dominates the latch.
    pub fn compute(f: &Function, dom: &DomTree) -> LoopForest {
        let preds = f.preds();
        // header -> loop body set
        let mut by_header: Vec<(BlockId, BitSet, Vec<BlockId>)> = Vec::new();
        for b in f.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            for s in f.block(b).succs() {
                if dom.dominates(s, b) {
                    // back edge b -> s
                    let body = natural_loop_body(f, &preds, s, b);
                    match by_header.iter_mut().find(|(h, _, _)| *h == s) {
                        Some((_, set, latches)) => {
                            set.union_with(&body);
                            latches.push(b);
                        }
                        None => by_header.push((s, body, vec![b])),
                    }
                }
            }
        }
        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, set, latches)| {
                let body: Vec<BlockId> = set.iter().map(|i| BlockId(i as u32)).collect();
                let mut exits = Vec::new();
                for &b in &body {
                    for s in f.block(b).succs() {
                        if !set.contains(s.index()) && !exits.contains(&s) {
                            exits.push(s);
                        }
                    }
                }
                Loop {
                    header,
                    body,
                    latches,
                    exits,
                    depth: 0,
                }
            })
            .collect();
        // Depth: number of loops containing this loop's header.
        let contains = |l: &Loop, b: BlockId| l.body.contains(&b);
        let depths: Vec<u32> = loops
            .iter()
            .map(|l| loops.iter().filter(|o| contains(o, l.header)).count() as u32)
            .collect();
        for (l, d) in loops.iter_mut().zip(depths) {
            l.depth = d;
        }
        loops.sort_by_key(|l| std::cmp::Reverse(l.depth));
        LoopForest { loops }
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.contains(b))
    }
}

fn natural_loop_body(
    f: &Function,
    preds: &[Vec<BlockId>],
    header: BlockId,
    latch: BlockId,
) -> BitSet {
    let mut body = BitSet::new(f.blocks.len());
    body.insert(header.index());
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        if body.insert(b.index()) {
            for &p in &preds[b.index()] {
                stack.push(p);
            }
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::mk_br;
    use crate::types::{FuncId, OpId, Opcode};
    use crate::{Function, Op};

    fn cfg(n: usize, edges: &[(u32, u32)]) -> Function {
        let mut f = Function::new(FuncId(0), "t");
        for _ in 1..n {
            f.add_block();
        }
        let p = f.new_vreg();
        for b in 0..n as u32 {
            let outs: Vec<u32> = edges
                .iter()
                .filter(|(s, _)| *s == b)
                .map(|&(_, d)| d)
                .collect();
            let mut ops = Vec::new();
            for (i, &d) in outs.iter().enumerate() {
                let mut br = mk_br(f.new_op_id(), BlockId(d));
                if i + 1 != outs.len() {
                    br.guard = Some(p);
                }
                ops.push(br);
            }
            if outs.is_empty() {
                ops.push(Op::new(OpId(1000 + b), Opcode::Ret, vec![], vec![]));
            }
            f.block_mut(BlockId(b)).ops = ops;
        }
        f
    }

    #[test]
    fn single_loop() {
        // 0 -> 1 ; 1 -> 2 ; 2 -> 1 | 3
        let f = cfg(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let dom = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dom);
        assert_eq!(lf.loops.len(), 1);
        let l = &lf.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)));
        assert_eq!(l.exits, vec![BlockId(3)]);
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn nested_loops() {
        // outer: 1..4, inner: 2..3
        // 0->1; 1->2; 2->3; 3->2|4; 4->1|5
        let f = cfg(6, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4), (4, 1), (4, 5)]);
        let dom = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dom);
        assert_eq!(lf.loops.len(), 2);
        // innermost first
        assert_eq!(lf.loops[0].header, BlockId(2));
        assert_eq!(lf.loops[0].depth, 2);
        assert_eq!(lf.loops[1].header, BlockId(1));
        assert_eq!(lf.loops[1].depth, 1);
        assert_eq!(
            lf.innermost_containing(BlockId(3)).unwrap().header,
            BlockId(2)
        );
        assert_eq!(
            lf.innermost_containing(BlockId(4)).unwrap().header,
            BlockId(1)
        );
    }

    #[test]
    fn self_loop() {
        let f = cfg(3, &[(0, 1), (1, 1), (1, 2)]);
        let dom = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dom);
        assert_eq!(lf.loops.len(), 1);
        assert_eq!(lf.loops[0].header, BlockId(1));
        assert_eq!(lf.loops[0].body, vec![BlockId(1)]);
    }

    #[test]
    fn trip_count_from_weights() {
        let mut f = cfg(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        f.block_mut(BlockId(0)).weight = 10.0;
        f.block_mut(BlockId(1)).weight = 50.0;
        f.block_mut(BlockId(2)).weight = 50.0;
        // edge 0->1 weight: terminator br weight
        let t = f.block_mut(BlockId(0)).ops.last_mut().unwrap();
        t.weight = 10.0;
        let dom = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dom);
        let preds = f.preds();
        let tc = lf.loops[0].trip_count(&f, &preds).unwrap();
        assert!((tc - 5.0).abs() < 1e-9);
    }
}
