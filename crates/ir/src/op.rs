//! The [`Op`] container: one predicated, possibly speculative instruction.

use crate::types::{BlockId, MemSize, OpId, Opcode, Operand, Vreg};
use std::fmt;

/// One IR operation.
///
/// Every operation may carry a *guard* predicate (IA-64 qualifying
/// predicate): the operation only takes effect when the guard register holds
/// a non-zero value. Loads may additionally be flagged *speculative*
/// ([`Op::spec`]), giving them NaT-deferral semantics when they fault.
#[derive(Clone, Debug)]
pub struct Op {
    /// Per-function unique id, preserved by scheduling, refreshed on clone.
    pub id: OpId,
    /// The opcode.
    pub opcode: Opcode,
    /// Destination registers. `Cmp` may define two (predicate + complement);
    /// everything else defines at most one.
    pub dsts: Vec<Vreg>,
    /// Source operands; see [`Opcode`] for per-opcode shapes.
    pub srcs: Vec<Operand>,
    /// Qualifying predicate: execute only if this vreg is non-zero.
    pub guard: Option<Vreg>,
    /// Control-speculative (`ld.s`): faults defer to NaT instead of trapping.
    pub spec: bool,
    /// Data-speculative advanced load (`ld.a`): installs an ALAT entry and
    /// may be scheduled above possibly-conflicting stores; a `chk.a` at the
    /// home location recovers if the entry was invalidated.
    pub adv: bool,
    /// Profile weight. For branches: the profiled *taken* count. Scaled by
    /// code-duplicating transforms alongside block weights.
    pub weight: f64,
    /// Alias tag from pointer analysis: index into
    /// [`crate::Program::alias_sets`]. Tag 0 means "may touch anything".
    pub mem_tag: u32,
}

impl Op {
    /// Create an op with no guard, not speculative, unknown aliasing.
    pub fn new(id: OpId, opcode: Opcode, dsts: Vec<Vreg>, srcs: Vec<Operand>) -> Op {
        Op {
            id,
            opcode,
            dsts,
            srcs,
            guard: None,
            spec: false,
            adv: false,
            weight: 0.0,
            mem_tag: 0,
        }
    }

    /// Is this a branch (`Br`)? Conditional iff it has a guard.
    pub fn is_branch(&self) -> bool {
        matches!(self.opcode, Opcode::Br)
    }

    /// Is this an *unconditional* control transfer terminating a block
    /// (unguarded `Br`, or `Ret`)?
    pub fn is_terminator(&self) -> bool {
        match self.opcode {
            Opcode::Br => self.guard.is_none(),
            Opcode::Ret => true,
            _ => false,
        }
    }

    /// Branch target, if this is a `Br`.
    pub fn branch_target(&self) -> Option<BlockId> {
        if self.is_branch() {
            self.srcs[0].label()
        } else {
            None
        }
    }

    /// Is this a memory load (`Ld` or a check, which may re-load)?
    pub fn is_load(&self) -> bool {
        matches!(
            self.opcode,
            Opcode::Ld(_) | Opcode::Chk(_) | Opcode::ChkA(_)
        )
    }

    /// Is this a memory store?
    pub fn is_store(&self) -> bool {
        matches!(self.opcode, Opcode::St(_))
    }

    /// Does this access memory (loads, stores, calls, allocation)?
    pub fn touches_memory(&self) -> bool {
        matches!(
            self.opcode,
            Opcode::Ld(_)
                | Opcode::St(_)
                | Opcode::Call
                | Opcode::Alloc
                | Opcode::Chk(_)
                | Opcode::ChkA(_)
        )
    }

    /// Is this a call?
    pub fn is_call(&self) -> bool {
        matches!(self.opcode, Opcode::Call)
    }

    /// Memory access size, if a load/store/check.
    pub fn mem_size(&self) -> Option<MemSize> {
        match self.opcode {
            Opcode::Ld(s) | Opcode::St(s) | Opcode::Chk(s) | Opcode::ChkA(s) => Some(s),
            _ => None,
        }
    }

    /// Operations whose execution must not be duplicated, reordered past
    /// each other, or removed even if results are unused.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self.opcode,
            Opcode::St(_) | Opcode::Call | Opcode::Ret | Opcode::Out | Opcode::Alloc | Opcode::Br
        )
    }

    /// May this operation be hoisted above a branch *without* control
    /// speculation support (i.e. it can neither trap nor perform side
    /// effects)? The destination-liveness check is the mover's burden.
    pub fn is_safely_speculable(&self) -> bool {
        self.opcode.is_pure()
    }

    /// Registers read by this op (sources and the guard).
    pub fn uses(&self) -> impl Iterator<Item = Vreg> + '_ {
        self.srcs
            .iter()
            .filter_map(|s| s.reg())
            .chain(self.guard.iter().copied())
    }

    /// Registers written by this op.
    pub fn defs(&self) -> &[Vreg] {
        &self.dsts
    }

    /// Rewrite every register use `from` → `to` (sources and guard; not
    /// destinations).
    pub fn replace_use(&mut self, from: Vreg, to: Vreg) {
        for s in &mut self.srcs {
            if *s == Operand::Reg(from) {
                *s = Operand::Reg(to);
            }
        }
        if self.guard == Some(from) {
            self.guard = Some(to);
        }
    }

    /// Rewrite every branch-label operand `from` → `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        for s in &mut self.srcs {
            if *s == Operand::Label(from) {
                *s = Operand::Label(to);
            }
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "({g}) ")?;
        }
        write!(f, "{:?}", self.opcode)?;
        if self.spec {
            write!(f, ".s")?;
        }
        if self.adv {
            write!(f, ".a")?;
        }
        let mut first = true;
        for d in &self.dsts {
            write!(f, "{} {d}", if first { "" } else { "," })?;
            first = false;
        }
        if !self.dsts.is_empty() && !self.srcs.is_empty() {
            write!(f, " =")?;
        }
        first = true;
        for s in &self.srcs {
            write!(f, "{} {s:?}", if first { "" } else { "," })?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CmpKind;

    fn op(opcode: Opcode, dsts: Vec<Vreg>, srcs: Vec<Operand>) -> Op {
        Op::new(OpId(0), opcode, dsts, srcs)
    }

    #[test]
    fn terminator_classification() {
        let uncond = op(Opcode::Br, vec![], vec![Operand::Label(BlockId(1))]);
        assert!(uncond.is_terminator());
        let mut cond = uncond.clone();
        cond.guard = Some(Vreg(1));
        assert!(!cond.is_terminator());
        assert!(cond.is_branch());
        assert_eq!(cond.branch_target(), Some(BlockId(1)));
        let ret = op(Opcode::Ret, vec![], vec![]);
        assert!(ret.is_terminator());
    }

    #[test]
    fn uses_include_guard() {
        let mut o = op(
            Opcode::Add,
            vec![Vreg(3)],
            vec![Operand::Reg(Vreg(1)), Operand::Imm(4)],
        );
        o.guard = Some(Vreg(9));
        let uses: Vec<_> = o.uses().collect();
        assert_eq!(uses, vec![Vreg(1), Vreg(9)]);
        assert_eq!(o.defs(), &[Vreg(3)]);
    }

    #[test]
    fn replace_use_rewrites_guard_and_srcs() {
        let mut o = op(
            Opcode::Add,
            vec![Vreg(3)],
            vec![Operand::Reg(Vreg(1)), Operand::Reg(Vreg(1))],
        );
        o.guard = Some(Vreg(1));
        o.replace_use(Vreg(1), Vreg(7));
        assert_eq!(o.srcs, vec![Operand::Reg(Vreg(7)), Operand::Reg(Vreg(7))]);
        assert_eq!(o.guard, Some(Vreg(7)));
    }

    #[test]
    fn retarget_rewrites_labels() {
        let mut o = op(Opcode::Br, vec![], vec![Operand::Label(BlockId(4))]);
        o.retarget(BlockId(4), BlockId(9));
        assert_eq!(o.branch_target(), Some(BlockId(9)));
    }

    #[test]
    fn side_effect_and_speculability() {
        assert!(op(Opcode::St(MemSize::B8), vec![], vec![]).has_side_effects());
        assert!(!op(Opcode::Ld(MemSize::B8), vec![Vreg(0)], vec![]).has_side_effects());
        assert!(op(Opcode::Cmp(CmpKind::Eq), vec![Vreg(0)], vec![]).is_safely_speculable());
        assert!(!op(Opcode::Ld(MemSize::B8), vec![Vreg(0)], vec![]).is_safely_speculable());
    }
}
