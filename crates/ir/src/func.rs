//! Functions, blocks, globals, and whole programs.

use crate::op::Op;
use crate::types::{BlockId, FuncId, GlobalId, OpId, Opcode, Operand, Vreg};
use std::fmt;

/// Where a block's code came from; used for instruction-cache attribution
/// (the paper traces L1I misses to tail-duplicated copies and residual
/// loops, Sec. 4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BlockOrigin {
    /// Present in the original program.
    #[default]
    Original,
    /// Created by tail duplication during region formation.
    TailDup,
    /// A peeled loop iteration.
    Peel,
    /// A residual ("remainder") loop left behind by peeling.
    Remainder,
    /// Created by loop unrolling.
    Unroll,
    /// Created by procedure inlining.
    Inline,
}

/// An extended basic block.
///
/// Before region formation these are ordinary basic blocks (at most one
/// guarded branch before the terminator). After superblock/hyperblock
/// formation a block is a single-entry region that may contain guarded
/// side-exit branches anywhere; the final op is always an unconditional
/// terminator ([`Op::is_terminator`]).
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// The operations, in program order.
    pub ops: Vec<Op>,
    /// Profiled execution count (entries into this block).
    pub weight: f64,
    /// Tombstone: removed blocks stay in place so [`BlockId`]s stay stable.
    pub removed: bool,
    /// Provenance for I-cache attribution.
    pub origin: BlockOrigin,
}

impl Block {
    /// Successor blocks: every guarded side-exit target plus the
    /// terminator's target(s), in op order. Returns nothing for `Ret`.
    pub fn succs(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let Some(t) = op.branch_target() {
                out.push(t);
            }
        }
        out
    }

    /// The terminator op. Panics if the block is empty.
    pub fn terminator(&self) -> &Op {
        self.ops.last().expect("empty block has no terminator")
    }
}

/// A function: a CFG of [`Block`]s over a shared virtual register space.
#[derive(Clone, Debug)]
pub struct Function {
    /// This function's id within its [`Program`].
    pub id: FuncId,
    /// Source-level name (used for per-function attribution, Fig. 10).
    pub name: String,
    /// Parameter registers, bound by calls in order.
    pub params: Vec<Vreg>,
    /// All blocks; removed blocks are tombstoned.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Bytes of stack-frame storage ([`Operand::FrameAddr`] offsets point
    /// into this region).
    pub frame_size: u64,
    next_vreg: u32,
    next_op: u32,
}

impl Function {
    /// Create an empty function with one (empty) entry block.
    pub fn new(id: FuncId, name: impl Into<String>) -> Function {
        Function {
            id,
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block::default()],
            entry: BlockId(0),
            frame_size: 0,
            next_vreg: 0,
            next_op: 0,
        }
    }

    /// Allocate a fresh virtual register.
    pub fn new_vreg(&mut self) -> Vreg {
        let v = Vreg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Number of vregs allocated so far (dense-table size).
    pub fn vreg_count(&self) -> usize {
        self.next_vreg as usize
    }

    /// Ensure dense vreg tables cover at least `n` registers (used after
    /// register allocation rewrites vregs to physical indexes).
    pub fn reserve_vregs(&mut self, n: u32) {
        self.next_vreg = self.next_vreg.max(n);
    }

    /// Allocate a fresh op id.
    pub fn new_op_id(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    /// Number of op ids allocated so far.
    pub fn op_id_count(&self) -> usize {
        self.next_op as usize
    }

    /// Append a new empty block and return its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Tombstone a block.
    pub fn remove_block(&mut self, b: BlockId) {
        self.blocks[b.index()].removed = true;
        self.blocks[b.index()].ops.clear();
    }

    /// Shared access to a block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Ids of all live (non-tombstoned) blocks.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.removed)
            .map(|(i, _)| BlockId(i as u32))
    }

    /// Clone an op, assigning it a fresh id (provenance-preserving copy for
    /// tail duplication, peeling, unrolling, inlining).
    pub fn clone_op(&mut self, op: &Op) -> Op {
        let mut c = op.clone();
        c.id = self.new_op_id();
        c
    }

    /// Predecessor lists for all blocks (side exits included).
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.block(b).succs() {
                if !preds[s.index()].contains(&b) {
                    preds[s.index()].push(b);
                }
            }
        }
        preds
    }

    /// Reverse postorder over live blocks reachable from entry.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut state = vec![0u8; self.blocks.len()]; // 0=unvisited 1=open 2=done
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        state[self.entry.index()] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = self.block(b).succs();
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !self.blocks[s.index()].removed && state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Tombstone blocks unreachable from entry. Returns how many died.
    pub fn remove_unreachable(&mut self) -> usize {
        let reach = self.rpo();
        let mut live = vec![false; self.blocks.len()];
        for b in &reach {
            live[b.index()] = true;
        }
        let mut n = 0;
        for (i, blk) in self.blocks.iter_mut().enumerate() {
            if !live[i] && !blk.removed {
                blk.removed = true;
                blk.ops.clear();
                n += 1;
            }
        }
        n
    }

    /// Total op count over live blocks (static code size proxy).
    pub fn op_count(&self) -> usize {
        self.block_ids().map(|b| self.block(b).ops.len()).sum()
    }

    /// Retarget every branch in the function from `from` to `to`.
    pub fn retarget_all(&mut self, from: BlockId, to: BlockId) {
        for blk in &mut self.blocks {
            if blk.removed {
                continue;
            }
            for op in &mut blk.ops {
                op.retarget(from, to);
            }
        }
    }
}

/// A global variable with optional initializer bytes (little-endian).
#[derive(Clone, Debug)]
pub struct Global {
    /// Source name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initializer; zero-filled beyond its length.
    pub init: Vec<u8>,
    /// Assigned runtime address (set by [`Program::assign_layout`]).
    pub addr: u64,
}

/// A whole program: functions, globals, and interprocedural side tables.
#[derive(Clone, Debug)]
pub struct Program {
    /// All functions; [`FuncId`] indexes this.
    pub funcs: Vec<Function>,
    /// All globals; [`GlobalId`] indexes this.
    pub globals: Vec<Global>,
    /// The entry function ("main").
    pub entry: FuncId,
    /// Pointer-analysis alias sets; [`Op::mem_tag`] indexes this. Set 0 is
    /// reserved to mean "may touch any location".
    pub alias_sets: Vec<Vec<u32>>,
}

impl Program {
    /// Create an empty program. The entry id must be fixed up once `main`
    /// has been added.
    pub fn new() -> Program {
        Program {
            funcs: Vec::new(),
            globals: Vec::new(),
            entry: FuncId(0),
            alias_sets: vec![Vec::new()],
        }
    }

    /// Add a function shell, returning its id.
    pub fn add_func(&mut self, name: impl Into<String>) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Function::new(id, name));
        id
    }

    /// Add a global, returning its id. Addresses are assigned later by
    /// [`Program::assign_layout`].
    pub fn add_global(&mut self, name: impl Into<String>, size: u64, init: Vec<u8>) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.into(),
            size,
            init,
            addr: 0,
        });
        id
    }

    /// Shared access to a function.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.index()]
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.funcs[f.index()]
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().find(|f| f.name == name).map(|f| f.id)
    }

    /// Assign runtime addresses to globals (8-byte aligned, starting at
    /// [`crate::mem::GLOBAL_BASE`]).
    pub fn assign_layout(&mut self) {
        let mut addr = crate::mem::GLOBAL_BASE;
        for g in &mut self.globals {
            g.addr = addr;
            addr += (g.size + 7) & !7;
        }
    }

    /// Do two memory tags possibly conflict? Tag 0 (unknown) conflicts with
    /// everything; otherwise the alias sets must share an abstract location.
    pub fn tags_conflict(&self, a: u32, b: u32) -> bool {
        tags_conflict(&self.alias_sets, a, b)
    }

    /// Register a sorted alias set, returning its tag.
    pub fn add_alias_set(&mut self, mut locs: Vec<u32>) -> u32 {
        locs.sort_unstable();
        locs.dedup();
        self.alias_sets.push(locs);
        (self.alias_sets.len() - 1) as u32
    }

    /// Total static op count over all functions.
    pub fn op_count(&self) -> usize {
        self.funcs.iter().map(|f| f.op_count()).sum()
    }

    /// Total live (non-removed) block count over all functions.
    pub fn block_count(&self) -> usize {
        self.funcs.iter().map(|f| f.block_ids().count()).sum()
    }
}

/// Free-standing form of [`Program::tags_conflict`], usable while a
/// function inside `Program::funcs` is mutably borrowed (the alias sets
/// are a disjoint field). Tag 0 (unknown) conflicts with everything;
/// otherwise the sorted alias sets must share an abstract location.
pub fn tags_conflict(alias_sets: &[Vec<u32>], a: u32, b: u32) -> bool {
    if a == 0 || b == 0 {
        return true;
    }
    let (sa, sb) = (&alias_sets[a as usize], &alias_sets[b as usize]);
    // Sets are sorted; merge-intersect.
    let (mut i, mut j) = (0, 0);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl Default for Program {
    fn default() -> Program {
        Program::new()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "func {} {:?} entry={}",
            self.name, self.params, self.entry
        )?;
        for b in self.block_ids() {
            let blk = self.block(b);
            writeln!(f, "  {b}: (w={:.0}, {:?})", blk.weight, blk.origin)?;
            for op in &blk.ops {
                writeln!(f, "    {op}")?;
            }
        }
        Ok(())
    }
}

/// Helper to build a `Br` op (used widely by transforms).
pub fn mk_br(id: OpId, target: BlockId) -> Op {
    Op::new(id, Opcode::Br, vec![], vec![Operand::Label(target)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Function {
        // b0 -> b1, b2 ; b1 -> b3 ; b2 -> b3 ; b3 ret
        let mut f = Function::new(FuncId(0), "d");
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let p = f.new_vreg();
        let mut cond = mk_br(f.new_op_id(), b1);
        cond.guard = Some(p);
        let t0 = mk_br(f.new_op_id(), b2);
        f.block_mut(BlockId(0)).ops.extend([cond, t0]);
        let t1 = mk_br(f.new_op_id(), b3);
        f.block_mut(b1).ops.push(t1);
        let t2 = mk_br(f.new_op_id(), b3);
        f.block_mut(b2).ops.push(t2);
        let r = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]);
        f.block_mut(b3).ops.push(r);
        f
    }

    #[test]
    fn succs_and_preds() {
        let f = diamond();
        assert_eq!(f.block(BlockId(0)).succs(), vec![BlockId(1), BlockId(2)]);
        let preds = f.preds();
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(preds[0], Vec::<BlockId>::new());
    }

    #[test]
    fn rpo_starts_at_entry_and_visits_all() {
        let f = diamond();
        let rpo = f.rpo();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn remove_unreachable_tombstones() {
        let mut f = diamond();
        // orphan block
        let b4 = f.add_block();
        let r = Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]);
        f.block_mut(b4).ops.push(r);
        assert_eq!(f.remove_unreachable(), 1);
        assert!(f.blocks[4].removed);
        assert_eq!(f.block_ids().count(), 4);
    }

    #[test]
    fn alias_tag_conflicts() {
        let mut p = Program::new();
        let a = p.add_alias_set(vec![1, 2, 3]);
        let b = p.add_alias_set(vec![3, 4]);
        let c = p.add_alias_set(vec![5]);
        assert!(p.tags_conflict(a, b));
        assert!(!p.tags_conflict(a, c));
        assert!(p.tags_conflict(0, c));
        assert!(p.tags_conflict(c, 0));
    }

    #[test]
    fn layout_assigns_aligned_addresses() {
        let mut p = Program::new();
        p.add_global("a", 5, vec![]);
        p.add_global("b", 16, vec![]);
        p.assign_layout();
        assert_eq!(p.globals[0].addr, crate::mem::GLOBAL_BASE);
        assert_eq!(p.globals[1].addr, crate::mem::GLOBAL_BASE + 8);
    }
}
