//! Property-based tests for the IR substrate: bitsets against a model,
//! dominators against a naive oracle, liveness soundness, and memory
//! round-trips.

use epic_ir::bitset::BitSet;
use epic_ir::dom::DomTree;
use epic_ir::func::mk_br;
use epic_ir::mem::{Memory, STACK_TOP};
use epic_ir::{BlockId, FuncId, Function, Op, Opcode};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// BitSet agrees with a HashSet model under arbitrary operation
    /// sequences.
    #[test]
    fn bitset_matches_model(ops in prop::collection::vec((0u8..4, 0usize..200), 1..200)) {
        let mut s = BitSet::new(200);
        let mut model: HashSet<usize> = HashSet::new();
        for (kind, i) in ops {
            match kind {
                0 => {
                    let newly = s.insert(i);
                    prop_assert_eq!(newly, model.insert(i));
                }
                1 => {
                    s.remove(i);
                    model.remove(&i);
                }
                2 => prop_assert_eq!(s.contains(i), model.contains(&i)),
                _ => prop_assert_eq!(s.count(), model.len()),
            }
        }
        let got: Vec<usize> = s.iter().collect();
        let mut want: Vec<usize> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Memory reads return exactly what was written, for random
    /// write/read sequences within the valid stack region.
    #[test]
    fn memory_round_trips(writes in prop::collection::vec((0u64..4096, 0usize..4, any::<u64>()), 1..100)) {
        let sizes = [1u64, 2, 4, 8];
        let mut mem = Memory::new();
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        let base = STACK_TOP - 8192;
        for (off, szi, val) in writes {
            let addr = base + off;
            let size = sizes[szi];
            mem.write(addr, size, val).unwrap();
            for i in 0..size {
                model.insert(addr + i, (val >> (8 * i)) as u8);
            }
            // read back a random earlier region
            let got = mem.read(addr, size).unwrap();
            let mask = if size == 8 { u64::MAX } else { (1 << (8 * size)) - 1 };
            prop_assert_eq!(got, val & mask);
        }
        // full model check over bytes
        for (&addr, &byte) in &model {
            prop_assert_eq!(mem.read(addr, 1).unwrap(), byte as u64);
        }
    }

    /// CHK dominators match the naive remove-a-node oracle on random CFGs.
    #[test]
    fn dominators_match_naive(n in 2usize..10, edges in prop::collection::vec((0u32..10, 0u32..10), 0..25)) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .chain((1..n as u32).map(|b| (b - 1, b))) // connectivity spine
            .collect();
        let f = build_cfg(n, &edges);
        let dom = DomTree::compute(&f);
        let naive = naive_dominators(&f);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    dom.dominates(BlockId(a as u32), BlockId(b as u32)),
                    naive[b].contains(&a),
                    "dom({},{})", a, b
                );
            }
        }
    }

    /// Liveness soundness: every register used before any definition in a
    /// *reachable* block appears in that block's live-in set (liveness is
    /// undefined for unreachable code, which never executes).
    #[test]
    fn liveness_covers_upward_exposed_uses(seed in any::<u64>()) {
        let f = random_dataflow_cfg(seed);
        let live = epic_ir::liveness::Liveness::compute(&f);
        let reachable: std::collections::HashSet<BlockId> = f.rpo().into_iter().collect();
        for b in f.block_ids().filter(|b| reachable.contains(b)) {
            let mut defined = HashSet::new();
            for op in &f.block(b).ops {
                for u in op.uses() {
                    if !defined.contains(&u) {
                        prop_assert!(
                            live.live_in(b).contains(u.index()),
                            "block {} upward-exposed use {:?} missing from live-in", b, u
                        );
                    }
                }
                if op.guard.is_none() {
                    for d in op.defs() {
                        defined.insert(*d);
                    }
                }
            }
        }
    }
}

fn build_cfg(n: usize, edges: &[(u32, u32)]) -> Function {
    let mut f = Function::new(FuncId(0), "t");
    for _ in 1..n {
        f.add_block();
    }
    let p = f.new_vreg();
    for b in 0..n as u32 {
        let outs: Vec<u32> = edges
            .iter()
            .filter(|(s, _)| *s == b)
            .map(|&(_, d)| d)
            .collect();
        let mut ops = Vec::new();
        for (i, &d) in outs.iter().enumerate() {
            let mut br = mk_br(f.new_op_id(), BlockId(d));
            if i + 1 != outs.len() {
                br.guard = Some(p);
            }
            ops.push(br);
        }
        if outs.is_empty() {
            ops.push(Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]));
        }
        f.block_mut(BlockId(b)).ops = ops;
    }
    f
}

fn naive_dominators(f: &Function) -> Vec<HashSet<usize>> {
    let n = f.blocks.len();
    let reachable = |skip: Option<usize>| -> Vec<bool> {
        let mut seen = vec![false; n];
        if skip == Some(f.entry.index()) {
            return seen;
        }
        let mut stack = vec![f.entry];
        seen[f.entry.index()] = true;
        while let Some(b) = stack.pop() {
            for s in f.block(b).succs() {
                if Some(s.index()) != skip && !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    };
    let base = reachable(None);
    (0..n)
        .map(|b| {
            let mut doms = HashSet::new();
            if !base[b] {
                return doms;
            }
            for a in 0..n {
                if a == b {
                    doms.insert(a);
                } else if base[a] && !reachable(Some(a))[b] {
                    doms.insert(a);
                }
            }
            doms
        })
        .collect()
}

/// A random multi-block function with real dataflow (for liveness).
fn random_dataflow_cfg(seed: u64) -> Function {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 33) as u32
    };
    let mut f = Function::new(FuncId(0), "t");
    let nblocks = 2 + (next() % 5) as usize;
    for _ in 1..nblocks {
        f.add_block();
    }
    let nregs = 3 + (next() % 6);
    let regs: Vec<_> = (0..nregs).map(|_| f.new_vreg()).collect();
    for b in 0..nblocks {
        let mut ops = Vec::new();
        for _ in 0..(next() % 6) {
            let d = regs[(next() % nregs) as usize];
            let a = regs[(next() % nregs) as usize];
            let c = regs[(next() % nregs) as usize];
            let mut op = Op::new(
                f.new_op_id(),
                Opcode::Add,
                vec![d],
                vec![epic_ir::Operand::Reg(a), epic_ir::Operand::Reg(c)],
            );
            if next() % 4 == 0 {
                op.guard = Some(regs[(next() % nregs) as usize]);
            }
            ops.push(op);
        }
        // terminator: branch to a random block or return
        if next() % 4 == 0 || nblocks == 1 {
            let val = regs[(next() % nregs) as usize];
            ops.push(Op::new(
                f.new_op_id(),
                Opcode::Ret,
                vec![],
                vec![epic_ir::Operand::Reg(val)],
            ));
        } else {
            let t = BlockId(next() % nblocks as u32);
            if next() % 2 == 0 {
                let mut c = mk_br(f.new_op_id(), BlockId(next() % nblocks as u32));
                c.guard = Some(regs[(next() % nregs) as usize]);
                ops.push(c);
            }
            ops.push(mk_br(f.new_op_id(), t));
        }
        f.block_mut(BlockId(b as u32)).ops = ops;
    }
    f
}
