//! Property-style tests for the IR substrate, driven by the in-repo
//! seeded generator ([`epic_ir::testing`]) instead of proptest so the
//! suite runs fully offline and bit-identically on every machine: bitsets
//! against a model, dominators against a naive oracle, liveness
//! soundness, and memory round-trips.

use epic_ir::bitset::BitSet;
use epic_ir::dom::DomTree;
use epic_ir::func::mk_br;
use epic_ir::testing::{random_dataflow_cfg, Rng};
use epic_ir::{BlockId, FuncId, Function, Op, Opcode};
use std::collections::HashSet;

/// Saved regression seeds from the original proptest runs (the liveness
/// seed found the extended-block liveness bug); always replayed first.
const LIVENESS_REGRESSION_SEEDS: [u64; 1] = [4903672878984792965];

const CASES: u64 = 64;

/// BitSet agrees with a HashSet model under arbitrary operation
/// sequences.
#[test]
fn bitset_matches_model() {
    let base = Rng::new(0xB175E7);
    for case in 0..CASES {
        let mut rng = base.derive(case);
        let nops = 1 + rng.pick_usize(200);
        let mut s = BitSet::new(200);
        let mut model: HashSet<usize> = HashSet::new();
        for _ in 0..nops {
            let kind = rng.pick(4);
            let i = rng.pick_usize(200);
            match kind {
                0 => {
                    let newly = s.insert(i);
                    assert_eq!(newly, model.insert(i), "case {case}");
                }
                1 => {
                    s.remove(i);
                    model.remove(&i);
                }
                2 => assert_eq!(s.contains(i), model.contains(&i), "case {case}"),
                _ => assert_eq!(s.count(), model.len(), "case {case}"),
            }
        }
        let got: Vec<usize> = s.iter().collect();
        let mut want: Vec<usize> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

/// Memory reads return exactly what was written, for random write/read
/// sequences within the valid stack region.
#[test]
fn memory_round_trips() {
    use epic_ir::mem::{Memory, STACK_TOP};
    let base = Rng::new(0x3E3034);
    for case in 0..CASES {
        let mut rng = base.derive(case);
        let sizes = [1u64, 2, 4, 8];
        let mut mem = Memory::new();
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        let b = STACK_TOP - 8192;
        let nwrites = 1 + rng.pick_usize(100);
        for _ in 0..nwrites {
            let addr = b + rng.pick(4096);
            let size = sizes[rng.pick_usize(4)];
            let val = rng.next_u64();
            mem.write(addr, size, val).unwrap();
            for i in 0..size {
                model.insert(addr + i, (val >> (8 * i)) as u8);
            }
            // read back the just-written region
            let got = mem.read(addr, size).unwrap();
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1 << (8 * size)) - 1
            };
            assert_eq!(got, val & mask, "case {case}");
        }
        // full model check over bytes
        for (&addr, &byte) in &model {
            assert_eq!(mem.read(addr, 1).unwrap(), byte as u64, "case {case}");
        }
    }
}

/// Dominators match the naive remove-a-node oracle on random CFGs.
#[test]
fn dominators_match_naive() {
    let base = Rng::new(0xD0A11A7);
    for case in 0..CASES {
        let mut rng = base.derive(case);
        let n = 2 + rng.pick_usize(8);
        let nedges = rng.pick_usize(25);
        let edges: Vec<(u32, u32)> = (0..nedges)
            .map(|_| (rng.pick(n as u64) as u32, rng.pick(n as u64) as u32))
            .chain((1..n as u32).map(|b| (b - 1, b))) // connectivity spine
            .collect();
        let f = build_cfg(n, &edges);
        let dom = DomTree::compute(&f);
        let naive = naive_dominators(&f);
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    dom.dominates(BlockId(a as u32), BlockId(b as u32)),
                    naive[b].contains(&a),
                    "case {case}: dom({a},{b})"
                );
            }
        }
    }
}

/// Liveness soundness: every register used before any definition in a
/// *reachable* block appears in that block's live-in set (liveness is
/// undefined for unreachable code, which never executes).
#[test]
fn liveness_covers_upward_exposed_uses() {
    let base = Rng::new(0x11FE);
    let seeds = LIVENESS_REGRESSION_SEEDS
        .into_iter()
        .chain((0..CASES).map(|i| base.derive(i).next_u64()));
    for seed in seeds {
        let f = random_dataflow_cfg(seed);
        let live = epic_ir::liveness::Liveness::compute(&f);
        let reachable: HashSet<BlockId> = f.rpo().into_iter().collect();
        for b in f.block_ids().filter(|b| reachable.contains(b)) {
            let mut defined = HashSet::new();
            for op in &f.block(b).ops {
                for u in op.uses() {
                    if !defined.contains(&u) {
                        assert!(
                            live.live_in(b).contains(u.index()),
                            "seed {seed}: block {b} upward-exposed use {u:?} missing from live-in"
                        );
                    }
                }
                if op.guard.is_none() {
                    for d in op.defs() {
                        defined.insert(*d);
                    }
                }
            }
        }
    }
}

fn build_cfg(n: usize, edges: &[(u32, u32)]) -> Function {
    let mut f = Function::new(FuncId(0), "t");
    for _ in 1..n {
        f.add_block();
    }
    let p = f.new_vreg();
    for b in 0..n as u32 {
        let outs: Vec<u32> = edges
            .iter()
            .filter(|(s, _)| *s == b)
            .map(|&(_, d)| d)
            .collect();
        let mut ops = Vec::new();
        for (i, &d) in outs.iter().enumerate() {
            let mut br = mk_br(f.new_op_id(), BlockId(d));
            if i + 1 != outs.len() {
                br.guard = Some(p);
            }
            ops.push(br);
        }
        if outs.is_empty() {
            ops.push(Op::new(f.new_op_id(), Opcode::Ret, vec![], vec![]));
        }
        f.block_mut(BlockId(b)).ops = ops;
    }
    f
}

fn naive_dominators(f: &Function) -> Vec<HashSet<usize>> {
    let n = f.blocks.len();
    let reachable = |skip: Option<usize>| -> Vec<bool> {
        let mut seen = vec![false; n];
        if skip == Some(f.entry.index()) {
            return seen;
        }
        let mut stack = vec![f.entry];
        seen[f.entry.index()] = true;
        while let Some(b) = stack.pop() {
            for s in f.block(b).succs() {
                if Some(s.index()) != skip && !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    };
    let base = reachable(None);
    (0..n)
        .map(|b| {
            let mut doms = HashSet::new();
            if !base[b] {
                return doms;
            }
            for a in 0..n {
                if a == b {
                    doms.insert(a);
                } else if base[a] && !reachable(Some(a))[b] {
                    doms.insert(a);
                }
            }
            doms
        })
        .collect()
}
