//! epic-trace: the observability layer for the IMPACT EPIC
//! reproduction.
//!
//! Two halves, both std-only:
//!
//! - **Spans** ([`Trace`], [`SpanGuard`], [`TraceSnapshot`]) —
//!   hierarchical wall-clock intervals with thread-local parenting,
//!   stitched into per-measurement trees (`compile → pass:<name>`,
//!   `sim → dispatch/attrib`, `serve → queue-wait/run/store`).
//! - **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`])
//!   — a lock-striped registry of named counters, gauges, and log2
//!   histograms, with a process-wide instance at [`global`] for
//!   long-lived services.
//!
//! Everything is built to stay on by default: a [`Trace::disabled`]
//! handle turns every span operation into an `Option` check (guards
//! still time, because callers such as the pass pipeline consume the
//! duration either way), and detached metric handles are single-branch
//! no-ops.

mod metrics;
mod render;
mod span;

pub use metrics::{
    bucket_of, bucket_upper, global, Counter, Gauge, Histogram, HistogramSnapshot, LocalHisto,
    MetricEntry, MetricValue, MetricsSnapshot, Registry, HISTO_BUCKETS,
};
pub use render::{render_span_tree, render_top};
pub use span::{SpanGuard, SpanNode, Trace, TraceSnapshot};
