//! The metrics registry: named counters, gauges, and fixed-bucket log2
//! histograms behind cheap `Arc`-backed handles.
//!
//! A [`Registry`] is lock-striped: the name → metric map is split over a
//! fixed number of stripes keyed by a hash of the name, so handle
//! registration from many threads rarely contends, and recording through
//! a handle never touches a lock at all (one atomic op). Handles from a
//! [`Registry::disabled`] registry are detached no-ops, which is the
//! stay-on-by-default fast path: call sites always record, and a
//! disabled registry makes every record a branch on a `None`.
//!
//! Histograms use log2 buckets: bucket 0 holds the value 0 and bucket
//! `i` (1..=64) holds values whose bit length is `i`, i.e. the range
//! `[2^(i-1), 2^i - 1]`. That trades precision for a fixed 65-slot
//! footprint and makes quantile queries a cumulative scan.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: one for zero plus one per bit length.
pub const HISTO_BUCKETS: usize = 65;

const STRIPES: usize = 16;

fn stripe_of(name: &str) -> usize {
    // FNV-1a over the name; only the stripe index matters.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % STRIPES
}

/// Bucket index for a recorded value (0 for 0, else bit length).
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct HistoInner {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistoInner {
    fn default() -> HistoInner {
        HistoInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistoInner>),
}

/// A monotonically increasing counter handle.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that records nowhere (what disabled registries return).
    pub fn detached() -> Counter {
        Counter(None)
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for detached handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A handle that records nowhere.
    pub fn detached() -> Gauge {
        Gauge(None)
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for detached handles).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A log2-bucket histogram handle.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistoInner>>);

impl Histogram {
    /// A handle that records nowhere.
    pub fn detached() -> Histogram {
        Histogram(None)
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Merge a locally accumulated histogram in one pass (the hot-loop
    /// pattern: accumulate into a [`LocalHisto`] without atomics, flush
    /// once).
    pub fn merge_local(&self, l: &LocalHisto) {
        if let Some(h) = &self.0 {
            for (i, &n) in l.buckets.iter().enumerate() {
                if n > 0 {
                    h.buckets[i].fetch_add(n, Ordering::Relaxed);
                }
            }
            h.count.fetch_add(l.count, Ordering::Relaxed);
            h.sum.fetch_add(l.sum, Ordering::Relaxed);
        }
    }
}

/// A plain (non-atomic) histogram for single-threaded hot loops; flush
/// into a registry [`Histogram`] with [`Histogram::merge_local`].
#[derive(Clone)]
pub struct LocalHisto {
    /// Per-bucket counts (see [`bucket_of`]).
    pub buckets: [u64; HISTO_BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
}

impl Default for LocalHisto {
    fn default() -> LocalHisto {
        LocalHisto {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHisto {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Snapshot in the same shape a registry histogram produces.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u8, n))
                .collect(),
        }
    }
}

/// Point-in-time value of one histogram.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Sparse nonzero buckets as `(bucket index, count)`, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Approximate quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the first bucket at which the cumulative count reaches
    /// `ceil(q * count)`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(i, n) in &self.buckets {
            cum += n;
            if cum >= target {
                return Some(bucket_upper(i as usize));
            }
        }
        self.buckets.last().map(|&(i, _)| bucket_upper(i as usize))
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The histogram of values recorded between `earlier` and `self`
    /// (both snapshots of the same histogram, `earlier` taken first).
    /// The process-wide registry only ever accumulates, so benchmarks
    /// isolate one phase by snapshotting before and after and diffing.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut before: HashMap<u8, u64> = HashMap::new();
        for &(i, n) in &earlier.buckets {
            before.insert(i, n);
        }
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(before.get(&i).copied().unwrap_or(0));
                (d > 0).then_some((i, d))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

/// Point-in-time value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One named metric in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// A deterministic (name-sorted) snapshot of a whole registry.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Entries sorted by name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Counter value by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

/// A lock-striped name → metric registry. See the module docs.
pub struct Registry {
    stripes: Option<Vec<Mutex<HashMap<String, Metric>>>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An active registry.
    pub fn new() -> Registry {
        Registry {
            stripes: Some((0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect()),
        }
    }

    /// A registry whose handles are all detached no-ops.
    pub fn disabled() -> Registry {
        Registry { stripes: None }
    }

    /// True when handles actually record.
    pub fn is_enabled(&self) -> bool {
        self.stripes.is_some()
    }

    fn with_stripe<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut HashMap<String, Metric>) -> R,
    ) -> Option<R> {
        let stripes = self.stripes.as_ref()?;
        let mut map = stripes[stripe_of(name)].lock().expect("metrics stripe");
        Some(f(&mut map))
    }

    /// Counter handle for `name`, registering it on first use. If the
    /// name is already registered as a different kind, a detached handle
    /// is returned (the registration wins, the caller's writes vanish).
    pub fn counter(&self, name: &str) -> Counter {
        self.with_stripe(name, |map| {
            match map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
            {
                Metric::Counter(c) => Counter(Some(Arc::clone(c))),
                _ => Counter::detached(),
            }
        })
        .unwrap_or_default()
    }

    /// Gauge handle for `name` (same registration rules as
    /// [`counter`](Registry::counter)).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.with_stripe(name, |map| {
            match map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))))
            {
                Metric::Gauge(g) => Gauge(Some(Arc::clone(g))),
                _ => Gauge::detached(),
            }
        })
        .unwrap_or_default()
    }

    /// Histogram handle for `name` (same registration rules as
    /// [`counter`](Registry::counter)).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.with_stripe(name, |map| {
            match map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Histogram(Arc::new(HistoInner::default())))
            {
                Metric::Histogram(h) => Histogram(Some(Arc::clone(h))),
                _ => Histogram::detached(),
            }
        })
        .unwrap_or_default()
    }

    /// Deterministic snapshot: every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries = Vec::new();
        if let Some(stripes) = &self.stripes {
            for stripe in stripes {
                let map = stripe.lock().expect("metrics stripe");
                for (name, m) in map.iter() {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                        Metric::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                        Metric::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .filter_map(|(i, b)| {
                                    let n = b.load(Ordering::Relaxed);
                                    (n > 0).then_some((i as u8, n))
                                })
                                .collect(),
                        }),
                    };
                    entries.push(MetricEntry {
                        name: name.clone(),
                        value,
                    });
                }
            }
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { entries }
    }
}

/// The process-wide registry (always enabled): long-lived services —
/// the `epicd` scheduler, the driver's latency histograms — record
/// here; the `metrics` protocol verb snapshots it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            // the upper bound of bucket i is the largest value that maps
            // to bucket i, and one more maps to bucket i+1
            let ub = bucket_upper(i);
            assert_eq!(bucket_of(ub), i, "upper bound of bucket {i}");
            assert_eq!(bucket_of(ub + 1), i + 1, "first value past bucket {i}");
        }
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_from_known_distribution() {
        let reg = Registry::new();
        let h = reg.histogram("t.lat");
        // 90 values of 1 (bucket 1), 9 of 100 (bucket 7), 1 of 5000
        // (bucket 13)
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(5000);
        let snap = reg.snapshot();
        let hs = snap.histogram("t.lat").unwrap();
        assert_eq!(hs.count, 100);
        assert_eq!(hs.sum, 90 + 900 + 5000);
        assert_eq!(hs.buckets, vec![(1, 90), (7, 9), (13, 1)]);
        assert_eq!(hs.quantile(0.5), Some(bucket_upper(1)));
        assert_eq!(hs.quantile(0.95), Some(bucket_upper(7)));
        assert_eq!(hs.quantile(0.999), Some(bucket_upper(13)));
        assert_eq!(hs.quantile(1.0), Some(bucket_upper(13)));
        assert!((hs.mean().unwrap() - 59.9).abs() < 1e-9);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }

    #[test]
    fn local_histo_merges_into_registry() {
        let reg = Registry::new();
        let h = reg.histogram("t.local");
        let mut l = LocalHisto::default();
        for v in [0, 1, 3, 900] {
            l.record(v);
        }
        h.merge_local(&l);
        let snap = reg.snapshot();
        let hs = snap.histogram("t.local").unwrap();
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 904);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 1), (10, 1)]);
        assert_eq!(l.snapshot(), *hs);
    }

    #[test]
    fn delta_since_isolates_the_values_recorded_between_snapshots() {
        let reg = Registry::new();
        let h = reg.histogram("d");
        h.record(3);
        h.record(100);
        let before = match reg.snapshot().get("d") {
            Some(MetricValue::Histogram(s)) => s.clone(),
            other => panic!("missing histogram: {other:?}"),
        };
        h.record(3);
        h.record(5000);
        let after = match reg.snapshot().get("d") {
            Some(MetricValue::Histogram(s)) => s.clone(),
            other => panic!("missing histogram: {other:?}"),
        };
        let delta = after.delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 5003);
        // the delta carries exactly the two new values: one more in 3's
        // bucket, one in a bucket the first snapshot never touched
        let mut fresh = LocalHisto::default();
        fresh.record(3);
        fresh.record(5000);
        assert_eq!(delta, fresh.snapshot());
        // quantiles over the delta reflect only the window
        assert!(delta.quantile(0.99).unwrap() >= 5000);
        // degenerate case: no activity, empty delta
        assert_eq!(after.delta_since(&after).count, 0);
        assert!(after.delta_since(&after).buckets.is_empty());
    }

    #[test]
    fn disabled_registry_hands_out_noop_handles() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
        reg.gauge("g").set(5);
        reg.histogram("h").record(9);
        assert!(reg.snapshot().entries.is_empty());
    }

    #[test]
    fn snapshot_is_name_sorted_and_kind_conflicts_detach() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.gauge("a").set(-3);
        reg.counter("c").add(7);
        // same name, different kind: the second handle is detached
        let g = reg.gauge("b");
        g.set(99);
        assert_eq!(g.get(), 0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(snap.get("a"), Some(&MetricValue::Gauge(-3)));
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("c"), 7);
    }

    #[test]
    fn handles_are_shared_across_lookups_and_threads() {
        let reg = Registry::new();
        let c = reg.counter("shared");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c2 = reg.counter("shared");
                s.spawn(move || {
                    for _ in 0..1000 {
                        c2.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(reg.snapshot().counter("shared"), 8000);
    }
}
