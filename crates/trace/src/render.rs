//! Deterministic text rendering of metrics snapshots and span trees —
//! the backend of `epicc top`.

use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::SpanNode;

/// Render a metrics snapshot as a fixed-width table. Deterministic for
/// a given snapshot: same input, same bytes (that property is what lets
/// `epicc top` be golden-tested).
pub fn render_top(snap: &MetricsSnapshot) -> String {
    let mut rows: Vec<[String; 3]> = Vec::new();
    for e in &snap.entries {
        let (kind, value) = match &e.value {
            MetricValue::Counter(v) => ("counter", v.to_string()),
            MetricValue::Gauge(v) => ("gauge", v.to_string()),
            MetricValue::Histogram(h) => {
                let p50 = h.quantile(0.5).map_or("-".to_string(), fmt_bound);
                let p99 = h.quantile(0.99).map_or("-".to_string(), fmt_bound);
                (
                    "histogram",
                    format!("n={} p50<={} p99<={}", h.count, p50, p99),
                )
            }
        };
        rows.push([e.name.clone(), kind.to_string(), value]);
    }
    let mut w = [4usize, 4, 5]; // header widths: NAME KIND VALUE
    for r in &rows {
        for (i, cell) in r.iter().enumerate() {
            w[i] = w[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<nw$}  {:<kw$}  {}\n",
        "NAME",
        "KIND",
        "VALUE",
        nw = w[0],
        kw = w[1]
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<nw$}  {:<kw$}  {}\n",
            r[0],
            r[1],
            r[2],
            nw = w[0],
            kw = w[1]
        ));
    }
    if rows.is_empty() {
        out.push_str("(no metrics)\n");
    }
    out
}

fn fmt_bound(b: u64) -> String {
    if b == u64::MAX {
        "max".to_string()
    } else {
        b.to_string()
    }
}

/// Render one span tree as an indented outline with microsecond
/// durations, e.g. `compile 1234us` / `  pass:schedule 456us`.
pub fn render_span_tree(root: &SpanNode) -> String {
    let mut out = String::new();
    root.walk(&mut |n, depth| {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{} {}us\n", n.name, n.dur_ns / 1_000));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, MetricEntry};

    fn fixed_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            entries: vec![
                MetricEntry {
                    name: "serve.cache_hits".to_string(),
                    value: MetricValue::Counter(42),
                },
                MetricEntry {
                    name: "serve.queue_depth".to_string(),
                    value: MetricValue::Gauge(3),
                },
                MetricEntry {
                    name: "serve.run_us".to_string(),
                    value: MetricValue::Histogram(HistogramSnapshot {
                        count: 10,
                        sum: 1000,
                        buckets: vec![(7, 9), (10, 1)],
                    }),
                },
            ],
        }
    }

    #[test]
    fn top_table_is_deterministic_and_aligned() {
        let snap = fixed_snapshot();
        let a = render_top(&snap);
        assert_eq!(a, render_top(&snap));
        // name column pads to "serve.queue_depth" (17), kind to
        // "histogram" (9)
        let expected = "\
NAME               KIND       VALUE
serve.cache_hits   counter    42
serve.queue_depth  gauge      3
serve.run_us       histogram  n=10 p50<=127 p99<=1023
";
        assert_eq!(a, expected);
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let s = render_top(&MetricsSnapshot::default());
        assert!(s.contains("(no metrics)"));
    }

    #[test]
    fn span_tree_outline_indents_by_depth() {
        let mut root = SpanNode::leaf("compile", 0, 5_000_000);
        root.children
            .push(SpanNode::leaf("pass:inline", 0, 2_000_000));
        let s = render_span_tree(&root);
        assert_eq!(s, "compile 5000us\n  pass:inline 2000us\n");
    }
}
