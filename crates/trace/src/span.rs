//! Hierarchical spans: thread-local enter/exit guards, monotonic
//! timing, a bounded ring of completed spans per thread, and stitching
//! of those rings into a per-measurement span tree.
//!
//! A [`Trace`] is a cheap clonable handle; [`Trace::disabled`] costs
//! one `Option` check per span operation so instrumentation can stay in
//! place unconditionally. Guards always time (callers like the pass
//! pipeline need wall durations even when tracing is off); only the
//! *recording* of the completed span is gated.
//!
//! Parenting uses a thread-local stack of `(trace identity, span id)`
//! pairs, so nested guards on one thread link up without any shared
//! state. Span ids are allocated from a per-trace atomic, which gives
//! the invariant `parent id < child id` (a parent is entered before any
//! of its children) that [`Trace::finish`] relies on when stitching
//! records into trees. Work that crosses threads (the serve scheduler's
//! queue-wait → run → store chain) can't use guards; it records a
//! pre-built [`SpanNode`] via [`Trace::record_manual`] instead.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{MetricsSnapshot, Registry};

/// Per-thread cap on retained completed spans. Oldest records are
/// dropped (and counted) beyond this; 4096 covers every tree we build
/// today by two orders of magnitude.
const RING_CAP: usize = 4096;

/// Cap on manually recorded cross-thread spans per trace.
const MANUAL_CAP: usize = 4096;

thread_local! {
    // (trace identity, span id) for every live guard on this thread.
    static SPAN_STACK: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
    static THREAD_KEY: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// A completed span as recorded into a thread's ring.
#[derive(Clone, Debug)]
struct SpanRec {
    id: u32,
    parent: Option<u32>,
    name: String,
    start_ns: u64,
    dur_ns: u64,
}

struct Shared {
    t0: Instant,
    next_id: AtomicU32,
    // striped by thread key; each stripe is one thread's bounded ring
    stripes: Vec<Mutex<Vec<SpanRec>>>,
    dropped: AtomicU64,
    manual: Mutex<Vec<SpanNode>>,
    metrics: Registry,
}

/// A handle to one measurement's trace. Clone freely; all clones feed
/// the same span rings and metrics registry.
#[derive(Clone)]
pub struct Trace(Option<Arc<Shared>>);

static DISABLED_METRICS: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();

impl Trace {
    /// An active trace with its own metrics registry.
    pub fn enabled() -> Trace {
        Trace(Some(Arc::new(Shared {
            t0: Instant::now(),
            next_id: AtomicU32::new(1),
            stripes: (0..16).map(|_| Mutex::new(Vec::new())).collect(),
            dropped: AtomicU64::new(0),
            manual: Mutex::new(Vec::new()),
            metrics: Registry::new(),
        })))
    }

    /// The no-op fast path: spans still time, nothing is retained.
    pub fn disabled() -> Trace {
        Trace(None)
    }

    /// True when spans and metrics are being retained.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// This trace's metrics registry (a shared disabled registry when
    /// the trace is off, so handle lookups stay valid no-ops).
    pub fn metrics(&self) -> &Registry {
        match &self.0 {
            Some(s) => &s.metrics,
            None => DISABLED_METRICS.get_or_init(Registry::disabled),
        }
    }

    /// Enter a span. The guard records on drop (or [`SpanGuard::finish`]).
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_pair(name, "")
    }

    /// Enter a span named `prefix` + `suffix`, allocating the joined
    /// name only when the trace is enabled (hot paths pass a dynamic
    /// suffix like a pass name without paying for it when disabled).
    pub fn span_pair(&self, prefix: &'static str, suffix: &str) -> SpanGuard {
        let start = Instant::now();
        match &self.0 {
            None => SpanGuard {
                shared: None,
                name: String::new(),
                start,
                start_ns: 0,
                id: 0,
                parent: None,
            },
            Some(shared) => {
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                let identity = Arc::as_ptr(shared) as usize;
                let parent = SPAN_STACK.with(|st| {
                    let mut st = st.borrow_mut();
                    let parent = st
                        .iter()
                        .rev()
                        .find(|(tid, _)| *tid == identity)
                        .map(|&(_, sid)| sid);
                    st.push((identity, id));
                    parent
                });
                let mut name = String::with_capacity(prefix.len() + suffix.len());
                name.push_str(prefix);
                name.push_str(suffix);
                SpanGuard {
                    shared: Some(Arc::clone(shared)),
                    name,
                    start,
                    start_ns: duration_ns(start.saturating_duration_since(shared.t0)),
                    id,
                    parent,
                }
            }
        }
    }

    /// Nanoseconds of `at` relative to this trace's origin (0 when
    /// disabled). For building manual [`SpanNode`]s.
    pub fn rel_ns(&self, at: Instant) -> u64 {
        match &self.0 {
            Some(s) => duration_ns(at.saturating_duration_since(s.t0)),
            None => 0,
        }
    }

    /// Record a pre-built span tree (for work that crosses threads and
    /// can't use stack-based guards). Bounded; overflow is counted as
    /// dropped.
    pub fn record_manual(&self, node: SpanNode) {
        if let Some(s) = &self.0 {
            let mut manual = s.manual.lock().expect("manual spans");
            if manual.len() < MANUAL_CAP {
                manual.push(node);
            } else {
                s.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Stitch all recorded spans into trees and snapshot the metrics.
    /// `None` when disabled. The trace stays usable afterwards (later
    /// snapshots include everything again).
    pub fn finish(&self) -> Option<TraceSnapshot> {
        let s = self.0.as_ref()?;
        let mut recs: Vec<Vec<SpanRec>> = Vec::new();
        for stripe in &s.stripes {
            let ring = stripe.lock().expect("span ring");
            if !ring.is_empty() {
                recs.push(ring.clone());
            }
        }
        let mut spans = Vec::new();
        for thread_recs in recs {
            spans.extend(stitch_thread(thread_recs));
        }
        spans.extend(s.manual.lock().expect("manual spans").iter().cloned());
        spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.name.cmp(&b.name)));
        Some(TraceSnapshot {
            spans,
            metrics: s.metrics.snapshot(),
            dropped: s.dropped.load(Ordering::Relaxed),
        })
    }

    fn record(&self, rec: SpanRec, thread_key: u64) {
        if let Some(s) = &self.0 {
            let stripe = &s.stripes[(thread_key as usize) % s.stripes.len()];
            let mut ring = stripe.lock().expect("span ring");
            if ring.len() >= RING_CAP {
                ring.remove(0);
                s.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push(rec);
        }
    }
}

/// RAII guard for one span. Always times; records only when the owning
/// trace is enabled.
pub struct SpanGuard {
    shared: Option<Arc<Shared>>,
    name: String,
    start: Instant,
    start_ns: u64,
    id: u32,
    parent: Option<u32>,
}

impl SpanGuard {
    /// Close the span and return its wall duration (measured whether or
    /// not the trace records anything).
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.close(dur);
        dur
    }

    fn close(&mut self, dur: Duration) {
        if let Some(shared) = self.shared.take() {
            let identity = Arc::as_ptr(&shared) as usize;
            SPAN_STACK.with(|st| {
                let mut st = st.borrow_mut();
                if let Some(pos) = st.iter().rposition(|&e| e == (identity, self.id)) {
                    st.remove(pos);
                }
            });
            let rec = SpanRec {
                id: self.id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                start_ns: self.start_ns,
                dur_ns: duration_ns(dur),
            };
            Trace(Some(shared)).record(rec, THREAD_KEY.with(|k| *k));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.shared.is_some() {
            let dur = self.start.elapsed();
            self.close(dur);
        }
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One node of a finished span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (e.g. `compile`, `pass:schedule`, `queue-wait`).
    pub name: String,
    /// Start offset from the trace origin, in nanoseconds.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf node.
    pub fn leaf(name: &str, start_ns: u64, dur_ns: u64) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            start_ns,
            dur_ns,
            children: Vec::new(),
        }
    }

    /// End offset (`start_ns + dur_ns`, saturating).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// Walk this subtree depth-first, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&SpanNode, usize)) {
        self.walk_at(0, f);
    }

    fn walk_at(&self, depth: usize, f: &mut impl FnMut(&SpanNode, usize)) {
        f(self, depth);
        for c in &self.children {
            c.walk_at(depth + 1, f);
        }
    }
}

/// A finished trace: stitched span trees plus a metrics snapshot.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Root spans, ordered by start time.
    pub spans: Vec<SpanNode>,
    /// The trace's metrics at finish time.
    pub metrics: MetricsSnapshot,
    /// Spans lost to ring/manual capacity limits.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Root span by name.
    pub fn root(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The structure of the trace with timing masked: depth-first
    /// `(depth, name)` pairs. Two identical runs must produce equal
    /// skeletons even though their timings differ.
    pub fn span_skeleton(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for root in &self.spans {
            root.walk(&mut |n, d| out.push((d, n.name.clone())));
        }
        out
    }
}

/// Stitch one thread's records (ascending id ⇒ parents precede
/// children) into trees. Records whose parent was dropped from the ring
/// become roots.
fn stitch_thread(mut recs: Vec<SpanRec>) -> Vec<SpanNode> {
    recs.sort_by_key(|r| r.id);
    // arena of nodes paralleling recs; children indices per slot
    let mut kids: Vec<Vec<usize>> = vec![Vec::new(); recs.len()];
    let mut roots: Vec<usize> = Vec::new();
    let idx_of = |recs: &[SpanRec], id: u32| recs.binary_search_by_key(&id, |r| r.id).ok();
    for i in 0..recs.len() {
        match recs[i].parent.and_then(|p| idx_of(&recs, p)) {
            Some(p) => kids[p].push(i),
            None => roots.push(i),
        }
    }
    fn build(i: usize, recs: &[SpanRec], kids: &[Vec<usize>]) -> SpanNode {
        let mut children: Vec<SpanNode> = kids[i].iter().map(|&c| build(c, recs, kids)).collect();
        children.sort_by_key(|c| c.start_ns);
        SpanNode {
            name: recs[i].name.clone(),
            start_ns: recs[i].start_ns,
            dur_ns: recs[i].dur_ns,
            children,
        }
    }
    let mut out: Vec<SpanNode> = roots.iter().map(|&r| build(r, &recs, &kids)).collect();
    out.sort_by_key(|n| n.start_ns);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_guards_stitch_into_one_tree() {
        let t = Trace::enabled();
        {
            let outer = t.span("compile");
            {
                let _p1 = t.span_pair("pass:", "profile");
            }
            {
                let _p2 = t.span_pair("pass:", "schedule");
            }
            outer.finish();
        }
        let snap = t.finish().unwrap();
        assert_eq!(snap.spans.len(), 1);
        let root = snap.root("compile").unwrap();
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["pass:profile", "pass:schedule"]);
        assert_eq!(snap.dropped, 0);
        assert_eq!(
            snap.span_skeleton(),
            vec![
                (0, "compile".to_string()),
                (1, "pass:profile".to_string()),
                (1, "pass:schedule".to_string()),
            ]
        );
    }

    #[test]
    fn parent_interval_covers_children() {
        let t = Trace::enabled();
        {
            let outer = t.span("outer");
            std::thread::sleep(Duration::from_millis(1));
            {
                let _inner = t.span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
            outer.finish();
        }
        let snap = t.finish().unwrap();
        let root = snap.root("outer").unwrap();
        let inner = &root.children[0];
        assert!(root.start_ns <= inner.start_ns);
        assert!(inner.end_ns() <= root.end_ns());
        assert!(root.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn disabled_trace_times_but_retains_nothing() {
        let t = Trace::disabled();
        let g = t.span("anything");
        std::thread::sleep(Duration::from_millis(1));
        let dur = g.finish();
        assert!(dur >= Duration::from_millis(1));
        assert!(t.finish().is_none());
        assert!(!t.metrics().is_enabled());
        // no stack residue on this thread
        SPAN_STACK.with(|st| assert!(st.borrow().is_empty()));
    }

    #[test]
    fn spans_from_multiple_threads_become_separate_roots() {
        let t = Trace::enabled();
        let root = t.span("main");
        std::thread::scope(|s| {
            for i in 0..3 {
                let t2 = t.clone();
                s.spawn(move || {
                    let _g = t2.span_pair("worker:", &i.to_string());
                });
            }
        });
        root.finish();
        let snap = t.finish().unwrap();
        // main is one root; each worker span parented nothing on its own
        // thread, so it is a root too
        assert_eq!(snap.spans.len(), 4);
        assert!(snap.root("main").unwrap().children.is_empty());
        for i in 0..3 {
            assert!(snap.root(&format!("worker:{i}")).is_some());
        }
    }

    #[test]
    fn manual_spans_join_the_snapshot() {
        let t = Trace::enabled();
        let mut serve = SpanNode::leaf("serve", 10, 500);
        serve.children.push(SpanNode::leaf("queue-wait", 10, 100));
        serve.children.push(SpanNode::leaf("run", 110, 350));
        t.record_manual(serve);
        let snap = t.finish().unwrap();
        let root = snap.root("serve").unwrap();
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "queue-wait");
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let t = Trace::enabled();
        let root = t.span("root");
        for i in 0..(RING_CAP + 10) {
            let _g = t.span_pair("s:", &(i % 7).to_string());
        }
        root.finish();
        let snap = t.finish().unwrap();
        assert_eq!(snap.dropped, 11); // RING_CAP+10 children + 1 root - RING_CAP
        let total: usize = snap.span_skeleton().len();
        assert_eq!(total, RING_CAP);
    }

    #[test]
    fn interleaved_traces_on_one_thread_do_not_cross_parent() {
        let ta = Trace::enabled();
        let tb = Trace::enabled();
        let ga = ta.span("a-root");
        {
            // b's span must not pick a's live guard as its parent
            let _gb = tb.span("b-only");
        }
        ga.finish();
        let a = ta.finish().unwrap();
        let b = tb.finish().unwrap();
        assert_eq!(a.spans.len(), 1);
        assert!(a.root("a-root").unwrap().children.is_empty());
        assert_eq!(b.spans.len(), 1);
        assert!(b.root("b-only").is_some());
    }
}
