//! End-to-end tests of `epicd` over real loopback TCP: served results
//! are bit-identical to direct in-process measurement, concurrent
//! clients coalesce onto one compile, and a saturated queue answers with
//! typed `Busy` backpressure instead of hanging.

use epic_serve::testutil::dummy_measurement;
use epic_serve::{
    digest, serve, ArtifactStore, Client, ClientError, JobRunner, JobSpec, Priority, RetryPolicy,
    Scheduler,
};
use epic_trace::{MetricValue, Trace};
use epic_workloads::Workload;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const TINY_SRC: &str = "
fn main(n: int) -> int {
    let s = 0;
    let i = 0;
    while i < n {
        s = s + i * i;
        i = i + 1;
    }
    out(s);
    return s;
}
";

fn tiny_workload() -> Workload {
    Workload {
        name: "tiny_e2e",
        spec_name: "tiny_e2e",
        description: "loop kernel for serve e2e tests",
        source: TINY_SRC,
        train_args: vec![50],
        ref_args: vec![200],
    }
}

#[test]
fn served_results_are_bit_identical_to_direct_measurement() {
    let w = tiny_workload();
    let sched = Arc::new(Scheduler::new(Arc::new(ArtifactStore::in_memory()), 2, 32));
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    for level in epic_driver::OptLevel::ALL {
        let spec = JobSpec::for_workload(&w, level);
        let served = client.submit(&spec, Priority::Normal, 0).unwrap();
        assert!(!served.cache_hit);
        #[allow(deprecated)] // exercising the shim keeps it honest until removal
        let direct =
            epic_driver::measure(&w, &spec.compile_options(), &spec.sim_options()).unwrap();
        assert_eq!(
            digest(&served.measurement),
            digest(&direct),
            "served vs direct mismatch at {level:?}"
        );
        // resubmission is a pure cache hit with the identical payload
        let again = client.submit(&spec, Priority::Normal, 0).unwrap();
        assert!(again.cache_hit, "second submission must hit the store");
        assert_eq!(digest(&again.measurement), digest(&direct));
        // the result verb fetches without scheduling
        let fetched = client.result(served.key).unwrap().expect("stored");
        assert_eq!(digest(&fetched), digest(&direct));
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.sched.jobs_run, 4, "one run per level, hits are free");
    assert_eq!(stats.sched.cache_hits, 4);
    assert_eq!(stats.compiles, 4);
    assert_eq!(stats.sims, 4);

    // clean shutdown through the protocol: the accept loop exits and the
    // server drains without being killed
    client.shutdown().unwrap();
    server.wait();
}

/// Gated runner: every invocation parks until the test sends a token, so
/// tests decide exactly when work completes.
struct GatedRunner {
    runs: AtomicU64,
    gate: Mutex<mpsc::Receiver<()>>,
}

impl JobRunner for GatedRunner {
    fn run(
        &self,
        spec: &JobSpec,
        _store: &ArtifactStore,
    ) -> Result<epic_driver::Measurement, String> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        let _ = self.gate.lock().unwrap().recv();
        Ok(dummy_measurement(spec.source.len() as u64))
    }

    fn work_counts(&self) -> (u64, u64) {
        (self.runs.load(Ordering::SeqCst), 0)
    }
}

fn gated_scheduler(workers: usize, queue_cap: usize) -> (Arc<Scheduler>, mpsc::Sender<()>) {
    let (tx, rx) = mpsc::channel();
    let runner = GatedRunner {
        runs: AtomicU64::new(0),
        gate: Mutex::new(rx),
    };
    let sched = Scheduler::with_runner(
        Arc::new(ArtifactStore::in_memory()),
        Box::new(runner),
        workers,
        queue_cap,
    );
    (Arc::new(sched), tx)
}

fn spec_named(tag: &str) -> JobSpec {
    let mut w = tiny_workload();
    w.train_args = vec![tag.len() as i64];
    let mut s = JobSpec::for_workload(&w, epic_driver::OptLevel::Gcc);
    s.source = format!("{TINY_SRC}// {tag}");
    s
}

#[test]
fn eight_tcp_clients_submitting_one_key_trigger_one_run() {
    let (sched, release) = gated_scheduler(4, 64);
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();
    let spec = spec_named("coalesce");

    let digests: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    let served = c.submit(&spec, Priority::Normal, 0).unwrap();
                    digest(&served.measurement)
                })
            })
            .collect();
        // give every connection time to land on the server, then open
        // the gate (extra tokens cover scheduling races)
        std::thread::sleep(Duration::from_millis(150));
        for _ in 0..16 {
            let _ = release.send(());
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(digests.windows(2).all(|p| p[0] == p[1]));
    let (runs, _) = sched.work_counts();
    assert_eq!(runs, 1, "eight concurrent clients must coalesce to one run");
    let stats = server.stats();
    assert_eq!(stats.sched.jobs_run, 1);
    assert!(
        stats.sched.coalesced >= 1,
        "later submissions attach to the in-flight job"
    );
    server.stop();
}

#[test]
fn saturated_queue_answers_busy_over_tcp() {
    // one worker, queue of one: A occupies the worker, B fills the
    // queue, C is shed with a typed Busy response
    let (sched, release) = gated_scheduler(1, 1);
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        let a = {
            let addr = addr.clone();
            scope.spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .submit(&spec_named("a"), Priority::Normal, 0)
                    .map(|s| s.key)
            })
        };
        // wait until A is running (queue drained, one in flight)
        let t0 = Instant::now();
        loop {
            let st = sched.stats();
            if st.queue_depth == 0 && st.in_flight == 1 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "A never started");
            std::thread::sleep(Duration::from_millis(2));
        }
        let b = {
            let addr = addr.clone();
            scope.spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .submit(&spec_named("b"), Priority::Normal, 0)
                    .map(|s| s.key)
            })
        };
        let t0 = Instant::now();
        while sched.stats().queue_depth < 1 {
            assert!(t0.elapsed() < Duration::from_secs(10), "B never queued");
            std::thread::sleep(Duration::from_millis(2));
        }
        match Client::connect(&addr)
            .unwrap()
            .submit(&spec_named("c"), Priority::Normal, 0)
        {
            Err(ClientError::Busy { queue_depth }) => assert_eq!(queue_depth, 1),
            other => panic!("expected typed Busy, got {:?}", other.map(|s| s.key).err()),
        }
        assert_eq!(sched.stats().shed, 1);
        for _ in 0..8 {
            let _ = release.send(());
        }
        assert!(a.join().unwrap().is_ok());
        assert!(b.join().unwrap().is_ok());
    });
    server.stop();
}

#[test]
fn metrics_verb_ships_registry_snapshot_over_tcp() {
    let (sched, release) = gated_scheduler(2, 32);
    // pre-open the gate so jobs finish without choreography
    for _ in 0..8 {
        let _ = release.send(());
    }
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let mut client = Client::connect(&server.addr().to_string()).unwrap();
    client
        .submit(&spec_named("metrics"), Priority::Normal, 0)
        .unwrap();

    let snap = client.metrics().unwrap();
    // the registry is process-wide and shared with other tests in this
    // binary, so assert floors, not exact values
    match snap.get("serve.submitted") {
        Some(MetricValue::Counter(n)) => assert!(*n >= 1, "submitted = {n}"),
        other => panic!("serve.submitted missing or mistyped: {other:?}"),
    }
    match snap.get("serve.jobs_run") {
        Some(MetricValue::Counter(n)) => assert!(*n >= 1, "jobs_run = {n}"),
        other => panic!("serve.jobs_run missing or mistyped: {other:?}"),
    }
    for h in ["serve.queue_wait_us", "serve.run_us", "serve.store_us"] {
        match snap.get(h) {
            Some(MetricValue::Histogram(hs)) => {
                assert!(hs.count >= 1, "{h} recorded nothing");
                assert!(hs.quantile(0.5).is_some());
            }
            other => panic!("{h} missing or mistyped: {other:?}"),
        }
    }
    assert!(
        matches!(snap.get("serve.queue_depth"), Some(MetricValue::Gauge(_))),
        "queue depth gauge missing"
    );
    // snapshots are name-sorted, so the rendered table is deterministic
    let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
    // hang up before stop(): the server joins connection threads, which
    // block until their peer closes
    drop(client);
    server.stop();
}

#[test]
fn submit_retry_rides_out_a_saturated_queue() {
    // same saturation shape as the Busy test: one worker occupied, queue
    // of one full — a plain submit is shed, but submit_retry's backoff
    // schedule outlasts the congestion once the gate opens
    let (sched, release) = gated_scheduler(1, 1);
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        let a = {
            let addr = addr.clone();
            scope.spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .submit(&spec_named("ra"), Priority::Normal, 0)
                    .map(|s| s.key)
            })
        };
        let t0 = Instant::now();
        loop {
            let st = sched.stats();
            if st.queue_depth == 0 && st.in_flight == 1 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "A never started");
            std::thread::sleep(Duration::from_millis(2));
        }
        let b = {
            let addr = addr.clone();
            scope.spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .submit(&spec_named("rb"), Priority::Normal, 0)
                    .map(|s| s.key)
            })
        };
        let t0 = Instant::now();
        while sched.stats().queue_depth < 1 {
            assert!(t0.elapsed() < Duration::from_secs(10), "B never queued");
            std::thread::sleep(Duration::from_millis(2));
        }

        // a zero-retry policy is a plain submit: shed immediately
        let no_retry = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        match Client::connect(&addr).unwrap().submit_retry(
            &spec_named("rc"),
            Priority::Normal,
            0,
            &no_retry,
        ) {
            Err(ClientError::Busy { .. }) => {}
            other => panic!("expected Busy, got {:?}", other.map(|s| s.key).err()),
        }
        let shed_before = sched.stats().shed;
        assert!(shed_before >= 1);

        // open the gate shortly after C starts retrying, so C's first
        // attempt is shed and a later one lands once the queue drains
        let gate = scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            for _ in 0..8 {
                let _ = release.send(());
            }
        });
        let patient = RetryPolicy {
            max_retries: 20,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
        };
        let served = Client::connect(&addr)
            .unwrap()
            .submit_retry(&spec_named("rc"), Priority::Normal, 0, &patient)
            .expect("retry must outlast the congestion");
        assert_eq!(served.key, spec_named("rc").job_key());
        gate.join().unwrap();
        assert!(a.join().unwrap().is_ok());
        assert!(b.join().unwrap().is_ok());
    });
    server.stop();
}

#[test]
fn traced_scheduler_records_serve_span_trees() {
    let (tx, rx) = mpsc::channel::<()>();
    for _ in 0..4 {
        let _ = tx.send(());
    }
    struct FreeRunner(Mutex<mpsc::Receiver<()>>);
    impl JobRunner for FreeRunner {
        fn run(
            &self,
            spec: &JobSpec,
            _store: &ArtifactStore,
        ) -> Result<epic_driver::Measurement, String> {
            let _ = self.0.lock().unwrap().recv();
            Ok(dummy_measurement(spec.source.len() as u64))
        }
        fn work_counts(&self) -> (u64, u64) {
            (0, 0)
        }
    }
    let trace = Trace::enabled();
    let sched = Arc::new(Scheduler::with_runner_traced(
        Arc::new(ArtifactStore::in_memory()),
        Box::new(FreeRunner(Mutex::new(rx))),
        1,
        8,
        trace.clone(),
    ));
    let ticket = sched
        .submit(spec_named("traced"), Priority::Normal, None)
        .unwrap();
    ticket.wait().expect("job runs");

    let snap = trace.finish().expect("enabled trace snapshots");
    let serve_root = snap.root("serve").expect("one serve span per job");
    let kids: Vec<&str> = serve_root
        .children
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(kids, ["queue-wait", "run", "store"]);
    // the three phases tile the job's span: child durations sum to the
    // root's and each child starts where the previous ended
    let total: u64 = serve_root.children.iter().map(|c| c.dur_ns).sum();
    assert_eq!(total, serve_root.dur_ns);
    for pair in serve_root.children.windows(2) {
        assert_eq!(pair[0].start_ns + pair[0].dur_ns, pair[1].start_ns);
    }
    sched.shutdown();
}
