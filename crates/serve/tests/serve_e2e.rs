//! End-to-end tests of `epicd` over real loopback TCP: served results
//! are bit-identical to direct in-process measurement, concurrent
//! clients coalesce onto one compile, and a saturated queue answers with
//! typed `Busy` backpressure instead of hanging.

use epic_serve::proto::{Request, Response};
use epic_serve::testutil::{dummy_measurement, gated_scheduler, InstantRunner};
use epic_serve::{
    digest, serve, serve_with, ArtifactStore, Client, ClientError, JobRunner, JobSpec, Priority,
    RetryPolicy, Scheduler, ServerConfig, Swarm,
};
use epic_trace::{MetricValue, Trace};
use epic_workloads::Workload;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const TINY_SRC: &str = "
fn main(n: int) -> int {
    let s = 0;
    let i = 0;
    while i < n {
        s = s + i * i;
        i = i + 1;
    }
    out(s);
    return s;
}
";

fn tiny_workload() -> Workload {
    Workload {
        name: "tiny_e2e",
        spec_name: "tiny_e2e",
        description: "loop kernel for serve e2e tests",
        source: TINY_SRC,
        train_args: vec![50],
        ref_args: vec![200],
    }
}

#[test]
fn served_results_are_bit_identical_to_direct_measurement() {
    let w = tiny_workload();
    let sched = Arc::new(Scheduler::new(Arc::new(ArtifactStore::in_memory()), 2, 32));
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    for level in epic_driver::OptLevel::ALL {
        let spec = JobSpec::for_workload(&w, level);
        let served = client.submit(&spec, Priority::Normal, 0).unwrap();
        assert!(!served.cache_hit);
        let direct = epic_driver::measure_traced(
            &w,
            &spec.compile_options(),
            &spec.sim_options(),
            &epic_trace::Trace::disabled(),
        )
        .unwrap();
        assert_eq!(
            digest(&served.measurement),
            digest(&direct),
            "served vs direct mismatch at {level:?}"
        );
        // resubmission is a pure cache hit with the identical payload
        let again = client.submit(&spec, Priority::Normal, 0).unwrap();
        assert!(again.cache_hit, "second submission must hit the store");
        assert_eq!(digest(&again.measurement), digest(&direct));
        // the result verb fetches without scheduling
        let fetched = client.result(served.key).unwrap().expect("stored");
        assert_eq!(digest(&fetched), digest(&direct));
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.sched.jobs_run, 4, "one run per level, hits are free");
    assert_eq!(stats.sched.cache_hits, 4);
    assert_eq!(stats.compiles, 4);
    assert_eq!(stats.sims, 4);

    // clean shutdown through the protocol: the accept loop exits and the
    // server drains without being killed
    client.shutdown().unwrap();
    server.wait();
}

fn spec_named(tag: &str) -> JobSpec {
    let mut w = tiny_workload();
    w.train_args = vec![tag.len() as i64];
    let mut s = JobSpec::for_workload(&w, epic_driver::OptLevel::Gcc);
    s.source = format!("{TINY_SRC}// {tag}");
    s
}

#[test]
fn eight_tcp_clients_submitting_one_key_trigger_one_run() {
    let (sched, release) = gated_scheduler(4, 64);
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();
    let spec = spec_named("coalesce");

    let digests: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    let served = c.submit(&spec, Priority::Normal, 0).unwrap();
                    digest(&served.measurement)
                })
            })
            .collect();
        // give every connection time to land on the server, then open
        // the gate (extra tokens cover scheduling races)
        std::thread::sleep(Duration::from_millis(150));
        for _ in 0..16 {
            let _ = release.send(());
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(digests.windows(2).all(|p| p[0] == p[1]));
    let (runs, _) = sched.work_counts();
    assert_eq!(runs, 1, "eight concurrent clients must coalesce to one run");
    let stats = server.stats();
    assert_eq!(stats.sched.jobs_run, 1);
    assert!(
        stats.sched.coalesced >= 1,
        "later submissions attach to the in-flight job"
    );
    server.stop();
}

#[test]
fn saturated_queue_answers_busy_over_tcp() {
    // one worker, queue of one: A occupies the worker, B fills the
    // queue, C is shed with a typed Busy response
    let (sched, release) = gated_scheduler(1, 1);
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        let a = {
            let addr = addr.clone();
            scope.spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .submit(&spec_named("a"), Priority::Normal, 0)
                    .map(|s| s.key)
            })
        };
        // wait until A is running (queue drained, one in flight)
        let t0 = Instant::now();
        loop {
            let st = sched.stats();
            if st.queue_depth == 0 && st.in_flight == 1 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "A never started");
            std::thread::sleep(Duration::from_millis(2));
        }
        let b = {
            let addr = addr.clone();
            scope.spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .submit(&spec_named("b"), Priority::Normal, 0)
                    .map(|s| s.key)
            })
        };
        let t0 = Instant::now();
        while sched.stats().queue_depth < 1 {
            assert!(t0.elapsed() < Duration::from_secs(10), "B never queued");
            std::thread::sleep(Duration::from_millis(2));
        }
        match Client::connect(&addr)
            .unwrap()
            .submit(&spec_named("c"), Priority::Normal, 0)
        {
            Err(ClientError::Busy { queue_depth }) => assert_eq!(queue_depth, 1),
            other => panic!("expected typed Busy, got {:?}", other.map(|s| s.key).err()),
        }
        assert_eq!(sched.stats().shed, 1);
        for _ in 0..8 {
            let _ = release.send(());
        }
        assert!(a.join().unwrap().is_ok());
        assert!(b.join().unwrap().is_ok());
    });
    server.stop();
}

#[test]
fn metrics_verb_ships_registry_snapshot_over_tcp() {
    let (sched, release) = gated_scheduler(2, 32);
    // pre-open the gate so jobs finish without choreography
    for _ in 0..8 {
        let _ = release.send(());
    }
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let mut client = Client::connect(&server.addr().to_string()).unwrap();
    client
        .submit(&spec_named("metrics"), Priority::Normal, 0)
        .unwrap();

    let snap = client.metrics().unwrap();
    // the registry is process-wide and shared with other tests in this
    // binary, so assert floors, not exact values
    match snap.get("serve.submitted") {
        Some(MetricValue::Counter(n)) => assert!(*n >= 1, "submitted = {n}"),
        other => panic!("serve.submitted missing or mistyped: {other:?}"),
    }
    match snap.get("serve.jobs_run") {
        Some(MetricValue::Counter(n)) => assert!(*n >= 1, "jobs_run = {n}"),
        other => panic!("serve.jobs_run missing or mistyped: {other:?}"),
    }
    for h in ["serve.queue_wait_us", "serve.run_us", "serve.store_us"] {
        match snap.get(h) {
            Some(MetricValue::Histogram(hs)) => {
                assert!(hs.count >= 1, "{h} recorded nothing");
                assert!(hs.quantile(0.5).is_some());
            }
            other => panic!("{h} missing or mistyped: {other:?}"),
        }
    }
    assert!(
        matches!(snap.get("serve.queue_depth"), Some(MetricValue::Gauge(_))),
        "queue depth gauge missing"
    );
    // snapshots are name-sorted, so the rendered table is deterministic
    let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
    drop(client);
    server.stop();
}

#[test]
fn submit_retry_rides_out_a_saturated_queue() {
    // same saturation shape as the Busy test: one worker occupied, queue
    // of one full — a plain submit is shed, but submit_retry's backoff
    // schedule outlasts the congestion once the gate opens
    let (sched, release) = gated_scheduler(1, 1);
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        let a = {
            let addr = addr.clone();
            scope.spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .submit(&spec_named("ra"), Priority::Normal, 0)
                    .map(|s| s.key)
            })
        };
        let t0 = Instant::now();
        loop {
            let st = sched.stats();
            if st.queue_depth == 0 && st.in_flight == 1 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "A never started");
            std::thread::sleep(Duration::from_millis(2));
        }
        let b = {
            let addr = addr.clone();
            scope.spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .submit(&spec_named("rb"), Priority::Normal, 0)
                    .map(|s| s.key)
            })
        };
        let t0 = Instant::now();
        while sched.stats().queue_depth < 1 {
            assert!(t0.elapsed() < Duration::from_secs(10), "B never queued");
            std::thread::sleep(Duration::from_millis(2));
        }

        // a zero-retry policy is a plain submit: shed immediately
        let no_retry = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        match Client::connect(&addr).unwrap().submit_retry(
            &spec_named("rc"),
            Priority::Normal,
            0,
            &no_retry,
        ) {
            Err(ClientError::Busy { .. }) => {}
            other => panic!("expected Busy, got {:?}", other.map(|s| s.key).err()),
        }
        let shed_before = sched.stats().shed;
        assert!(shed_before >= 1);

        // open the gate shortly after C starts retrying, so C's first
        // attempt is shed and a later one lands once the queue drains
        let gate = scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            for _ in 0..8 {
                let _ = release.send(());
            }
        });
        let patient = RetryPolicy {
            max_retries: 20,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
        };
        let retries_before = match epic_trace::global().snapshot().get("serve.client.retries") {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        };
        let served = Client::connect(&addr)
            .unwrap()
            .submit_retry(&spec_named("rc"), Priority::Normal, 0, &patient)
            .expect("retry must outlast the congestion");
        assert_eq!(served.key, spec_named("rc").job_key());
        // every ridden-out Busy is observable in the metrics registry
        match epic_trace::global().snapshot().get("serve.client.retries") {
            Some(MetricValue::Counter(n)) => assert!(
                *n > retries_before,
                "serve.client.retries must count the shed attempts ({n} vs {retries_before})"
            ),
            other => panic!("serve.client.retries missing or mistyped: {other:?}"),
        }
        gate.join().unwrap();
        assert!(a.join().unwrap().is_ok());
        assert!(b.join().unwrap().is_ok());
    });
    server.stop();
}

/// Opens a [`gated_scheduler`]'s gate when dropped — declared after the
/// server handle so a failing assertion can still unwind (the handle's
/// drop joins workers that would otherwise block on the gate forever).
struct GateGuard(mpsc::Sender<()>, usize);

impl Drop for GateGuard {
    fn drop(&mut self) {
        for _ in 0..self.1 {
            let _ = self.0.send(());
        }
    }
}

/// Threads in this process whose comm name is exactly `name`.
fn count_threads_named(name: &str) -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .flatten()
        .filter(|t| {
            std::fs::read_to_string(t.path().join("comm"))
                .map(|c| c.trim() == name)
                .unwrap_or(false)
        })
        .count()
}

#[test]
fn one_event_loop_thread_holds_1000_submits_in_flight() {
    const N: usize = 1000;
    let (sched, release) = gated_scheduler(4, 2048);
    let cfg = ServerConfig {
        max_conns: N + 8,
        ..ServerConfig::default()
    };
    let mut server = serve_with("127.0.0.1:0", Arc::clone(&sched), cfg).unwrap();
    let _guard = GateGuard(release.clone(), N + 64);
    let addr = server.addr().to_string();

    // 1000 connections, one distinct submit each, all driven by one
    // client thread (the protocol has no request IDs, so in-flight depth
    // comes from connection count)
    let specs: Vec<JobSpec> = (0..N).map(|i| spec_named(&format!("swarm{i}"))).collect();
    let mut swarm = Swarm::connect(&addr, N).unwrap();
    for (i, spec) in specs.iter().enumerate() {
        swarm.enqueue(
            i,
            &Request::Submit {
                spec: spec.clone(),
                prio: Priority::Normal,
                deadline_ms: 0,
            },
        );
    }
    let driver = std::thread::spawn(move || {
        let out = swarm.run(Duration::from_secs(120));
        (swarm, out)
    });

    // every submit reaches the scheduler and parks there (the gate is
    // shut): in_flight counts queued-or-running, so it hits N exactly
    // when all 1000 are inside the scheduler at once
    let t0 = Instant::now();
    loop {
        let st = sched.stats();
        if st.submitted == N as u64 && st.in_flight == N as u64 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "submits never all arrived: {st:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // the serving layer spawns exactly one loop thread per server and no
    // per-connection threads — with 1000 submits in flight there must be
    // no thread named like the old per-connection workers
    assert_eq!(
        count_threads_named("epicd-conn"),
        0,
        "event-driven epicd must not spawn per-connection threads"
    );
    assert!(count_threads_named("epicd-loop") >= 1);

    for _ in 0..(N + 64) {
        let _ = release.send(());
    }
    let (_swarm, out) = driver.join().unwrap();
    let responses = out.expect("all 1000 responses arrive");

    // zero lost, duplicated, or cross-wired: every connection got exactly
    // one response carrying its own key and that key's measurement
    assert_eq!(responses.len(), N);
    for (i, (conn, spec)) in responses.iter().zip(&specs).enumerate() {
        assert_eq!(conn.len(), 1, "conn {i} got {} responses", conn.len());
        match &conn[0] {
            Response::Done {
                key, measurement, ..
            } => {
                assert_eq!(*key, spec.job_key(), "conn {i} got another conn's key");
                assert_eq!(
                    digest(measurement),
                    digest(&dummy_measurement(spec.source.len() as u64)),
                    "conn {i} payload does not match its spec"
                );
            }
            other => panic!("conn {i}: expected Done, got {other:?}"),
        }
    }
    let st = sched.stats();
    assert_eq!(st.jobs_run, N as u64, "all distinct keys, no coalescing");
    server.stop();
}

#[test]
fn malformed_frames_hurt_only_the_offending_connection() {
    let sched = Arc::new(Scheduler::with_runner(
        Arc::new(ArtifactStore::in_memory()),
        Box::new(InstantRunner::default()),
        1,
        8,
    ));
    let mut server = serve("127.0.0.1:0", Arc::clone(&sched)).unwrap();
    let addr = server.addr().to_string();
    let mut bystander = Client::connect(&addr).unwrap();
    bystander.stats().unwrap();

    // hostile length prefix (4 GiB): typed refusal, then a clean close
    {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        use std::io::{Read, Write};
        s.write_all(&0xFFFF_FFFFu32.to_be_bytes()).unwrap();
        let body = epic_serve::proto::read_frame(&mut s).unwrap().unwrap();
        match epic_serve::proto::decode_response(&body).unwrap() {
            Response::Err(msg) => assert!(msg.contains("exceeds cap"), "got: {msg}"),
            other => panic!("expected Err, got {other:?}"),
        }
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection must close after the refusal");
    }

    // truncated length prefix, then disconnect mid-frame: silent close,
    // nothing else disturbed
    {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        std::io::Write::write_all(&mut s, &[0x00, 0x00]).unwrap();
        drop(s);
    }
    {
        // full prefix, half a body, then gone
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        std::io::Write::write_all(&mut s, &8u32.to_be_bytes()).unwrap();
        std::io::Write::write_all(&mut s, &[1, 2, 3]).unwrap();
        drop(s);
    }

    // garbage verb in a well-framed body: typed error, and the SAME
    // connection keeps working afterwards
    {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        epic_serve::proto::write_frame(&mut s, &[0xEE, 1, 2, 3]).unwrap();
        let body = epic_serve::proto::read_frame(&mut s).unwrap().unwrap();
        match epic_serve::proto::decode_response(&body).unwrap() {
            Response::Err(msg) => assert!(msg.contains("bad request"), "got: {msg}"),
            other => panic!("expected Err, got {other:?}"),
        }
        epic_serve::proto::write_frame(&mut s, &epic_serve::proto::encode_request(&Request::Stats))
            .unwrap();
        let body = epic_serve::proto::read_frame(&mut s).unwrap().unwrap();
        assert!(matches!(
            epic_serve::proto::decode_response(&body).unwrap(),
            Response::Stats(_)
        ));
    }

    // the bystander never noticed any of it
    bystander
        .submit(&spec_named("innocent"), Priority::Normal, 0)
        .unwrap();
    bystander.stats().unwrap();
    server.stop();
}

#[test]
fn admission_cap_rejects_and_idle_reaper_recovers_slots() {
    let sched = Arc::new(Scheduler::with_runner(
        Arc::new(ArtifactStore::in_memory()),
        Box::new(InstantRunner::default()),
        1,
        8,
    ));
    let cfg = ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    };
    let mut server = serve_with("127.0.0.1:0", Arc::clone(&sched), cfg).unwrap();
    let addr = server.addr().to_string();

    // fill both slots (a completed roundtrip proves registration)
    let mut c1 = Client::connect(&addr).unwrap();
    c1.stats().unwrap();
    let mut c2 = Client::connect(&addr).unwrap();
    c2.stats().unwrap();

    // the third connection is answered with a typed refusal and closed
    let mut c3 = Client::connect(&addr).unwrap();
    match c3.stats() {
        Err(ClientError::Server(msg)) => assert!(msg.contains("capacity"), "got: {msg}"),
        other => panic!(
            "expected capacity refusal, got {:?}",
            other.map(|_| "stats").err()
        ),
    }
    match epic_trace::global().snapshot().get("serve.conns.rejected") {
        Some(MetricValue::Counter(n)) => assert!(*n >= 1),
        other => panic!("serve.conns.rejected missing: {other:?}"),
    }

    // hanging up frees the slot within a sweep or two
    drop(c1);
    let t0 = Instant::now();
    loop {
        let mut c4 = Client::connect(&addr).unwrap();
        if c4.stats().is_ok() {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "slot never came back after a hangup"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(c2);
    server.stop();
}

#[test]
fn idle_connections_are_reaped_but_inflight_submits_are_not() {
    let (sched, release) = gated_scheduler(1, 8);
    let cfg = ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let mut server = serve_with("127.0.0.1:0", Arc::clone(&sched), cfg).unwrap();
    let _guard = GateGuard(release.clone(), 8);
    let addr = server.addr().to_string();

    // a connection whose submit outlives the idle timeout is work, not
    // silence: it must survive and be answered
    let slow = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            Client::connect(&addr)
                .unwrap()
                .submit(&spec_named("slowjob"), Priority::Normal, 0)
                .map(|s| s.key)
        })
    };

    // a connection that goes quiet past the timeout is reaped
    let mut idle = Client::connect(&addr).unwrap();
    idle.stats().unwrap();
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        idle.stats().is_err(),
        "idle connection must be closed by the reaper"
    );
    match epic_trace::global().snapshot().get("serve.conns.reaped") {
        Some(MetricValue::Counter(n)) => assert!(*n >= 1),
        other => panic!("serve.conns.reaped missing: {other:?}"),
    }

    for _ in 0..4 {
        let _ = release.send(());
    }
    let key = slow.join().unwrap().expect("in-flight submit survives");
    assert_eq!(key, spec_named("slowjob").job_key());
    server.stop();
}

#[test]
fn traced_scheduler_records_serve_span_trees() {
    let (tx, rx) = mpsc::channel::<()>();
    for _ in 0..4 {
        let _ = tx.send(());
    }
    struct FreeRunner(Mutex<mpsc::Receiver<()>>);
    impl JobRunner for FreeRunner {
        fn run(
            &self,
            spec: &JobSpec,
            _store: &ArtifactStore,
        ) -> Result<epic_driver::Measurement, String> {
            let _ = self.0.lock().unwrap().recv();
            Ok(dummy_measurement(spec.source.len() as u64))
        }
        fn work_counts(&self) -> (u64, u64) {
            (0, 0)
        }
    }
    let trace = Trace::enabled();
    let sched = Arc::new(Scheduler::with_runner_traced(
        Arc::new(ArtifactStore::in_memory()),
        Box::new(FreeRunner(Mutex::new(rx))),
        1,
        8,
        trace.clone(),
    ));
    let ticket = sched
        .submit(spec_named("traced"), Priority::Normal, None)
        .unwrap();
    ticket.wait().expect("job runs");

    let snap = trace.finish().expect("enabled trace snapshots");
    let serve_root = snap.root("serve").expect("one serve span per job");
    let kids: Vec<&str> = serve_root
        .children
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(kids, ["queue-wait", "run", "store"]);
    // the three phases tile the job's span: child durations sum to the
    // root's and each child starts where the previous ended
    let total: u64 = serve_root.children.iter().map(|c| c.dur_ns).sum();
    assert_eq!(total, serve_root.dur_ns);
    for pair in serve_root.children.windows(2) {
        assert_eq!(pair[0].start_ns + pair[0].dur_ns, pair[1].start_ns);
    }
    sched.shutdown();
}
