//! Test support: deterministic fake measurements, so store/scheduler
//! tests don't pay for real compiles. Follows the `epic_ir::testing`
//! precedent of shipping test helpers in the library proper (the
//! workspace has no dev-only crates).

use epic_driver::{CompiledStats, Measurement, OptLevel, PassRecord, PassTimeline};
use epic_sim::{Category, CycleAccounting, FuncMatrix, SimResult, CATEGORIES};
use std::time::Duration;

/// A fully populated, deterministic measurement derived from `seed`.
/// Distinct seeds produce distinct digests; equal seeds, equal bytes.
pub fn dummy_measurement(seed: u64) -> Measurement {
    let mut acct = CycleAccounting::default();
    for (i, cat) in CATEGORIES.iter().enumerate() {
        acct.charge(*cat, seed.wrapping_mul(i as u64 + 1) % 1000);
    }
    // two function rows whose column sums match nothing in particular —
    // the identity only matters for real simulations
    let rows = vec![
        [seed % 7; epic_sim::NUM_CATEGORIES],
        [(seed + 1) % 5; epic_sim::NUM_CATEGORIES],
    ];
    let mut counters = epic_sim::Counters::default();
    counters.retired_useful = seed * 3 + 1;
    counters.l3_misses = seed % 11;
    Measurement {
        level: OptLevel::Gcc,
        compiled: CompiledStats {
            plan: epic_sched::PlanStats {
                planned_cycles: seed as f64 * 1.5,
                planned_ops: seed as f64 * 4.0,
                max_window: (seed % 90) as u32,
                spills: (seed % 3) as usize,
            },
            ilp: epic_core::IlpStats::default(),
            inlined: (seed % 4) as usize,
            promoted: 0,
            code_bytes: seed * 16,
            static_ops: ((seed % 100) as usize, (seed % 37) as usize),
            frontend_ops: (seed % 80) as usize,
            func_names: vec!["main".into(), format!("f{}", seed % 9)],
            pass_timeline: PassTimeline {
                passes: vec![PassRecord {
                    name: "classical",
                    wall: Duration::from_micros(seed % 500),
                    ops_before: 10,
                    ops_after: 8,
                    blocks_before: 3,
                    blocks_after: 3,
                }],
            },
        },
        sim: SimResult {
            output: vec![seed, seed ^ 0xffff, seed / 3],
            checksum: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ret: seed % 2,
            cycles: acct.get(Category::Unstalled) + acct.total() - acct.unstalled(),
            acct,
            counters,
            func_matrix: FuncMatrix::from_rows(rows),
            trace: Vec::new(),
        },
    }
}
