//! Test support: deterministic fake measurements, so store/scheduler
//! tests don't pay for real compiles. Follows the `epic_ir::testing`
//! precedent of shipping test helpers in the library proper (the
//! workspace has no dev-only crates).

use crate::key::JobSpec;
use crate::proto::{self, Request, Response, ServeStats};
use crate::sched::{JobError, JobRunner, Priority, Scheduler};
use crate::store::ArtifactStore;
use epic_driver::{CompiledStats, Measurement, OptLevel, PassRecord, PassTimeline};
use epic_sim::{Category, CycleAccounting, FuncMatrix, SimResult, CATEGORIES};
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fully populated, deterministic measurement derived from `seed`.
/// Distinct seeds produce distinct digests; equal seeds, equal bytes.
pub fn dummy_measurement(seed: u64) -> Measurement {
    let mut acct = CycleAccounting::default();
    for (i, cat) in CATEGORIES.iter().enumerate() {
        acct.charge(*cat, seed.wrapping_mul(i as u64 + 1) % 1000);
    }
    // two function rows whose column sums match nothing in particular —
    // the identity only matters for real simulations
    let rows = vec![
        [seed % 7; epic_sim::NUM_CATEGORIES],
        [(seed + 1) % 5; epic_sim::NUM_CATEGORIES],
    ];
    let mut counters = epic_sim::Counters::default();
    counters.retired_useful = seed * 3 + 1;
    counters.l3_misses = seed % 11;
    Measurement {
        level: OptLevel::Gcc,
        compiled: CompiledStats {
            plan: epic_sched::PlanStats {
                planned_cycles: seed as f64 * 1.5,
                planned_ops: seed as f64 * 4.0,
                max_window: (seed % 90) as u32,
                spills: (seed % 3) as usize,
            },
            ilp: epic_core::IlpStats::default(),
            inlined: (seed % 4) as usize,
            promoted: 0,
            code_bytes: seed * 16,
            static_ops: ((seed % 100) as usize, (seed % 37) as usize),
            frontend_ops: (seed % 80) as usize,
            func_names: vec!["main".into(), format!("f{}", seed % 9)],
            pass_timeline: PassTimeline {
                passes: vec![PassRecord {
                    name: "classical",
                    wall: Duration::from_micros(seed % 500),
                    ops_before: 10,
                    ops_after: 8,
                    blocks_before: 3,
                    blocks_after: 3,
                }],
            },
        },
        sim: SimResult {
            output: vec![seed, seed ^ 0xffff, seed / 3],
            checksum: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ret: seed % 2,
            cycles: acct.get(Category::Unstalled) + acct.total() - acct.unstalled(),
            acct,
            counters,
            func_matrix: FuncMatrix::from_rows(rows),
            trace: Vec::new(),
            sample: None,
        },
    }
}

/// A runner that "measures" instantly: [`dummy_measurement`] keyed off
/// the spec's source length. Saturation benchmarks use it so the A/B
/// comparison exercises the serving layer, not the simulator.
#[derive(Default)]
pub struct InstantRunner {
    runs: AtomicU64,
}

impl InstantRunner {
    /// Jobs actually executed (cache misses).
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }
}

impl JobRunner for InstantRunner {
    fn run(&self, spec: &JobSpec, _store: &ArtifactStore) -> Result<Measurement, String> {
        self.runs.fetch_add(1, Ordering::Relaxed);
        Ok(dummy_measurement(spec.source.len() as u64))
    }
}

/// A runner whose every invocation parks until the test sends a token
/// through the gate, so tests decide exactly when work completes (and an
/// artificially slow shard is one whose gate is never opened). Results
/// are [`dummy_measurement`] keyed off the spec's source length, same as
/// [`InstantRunner`] — a gated shard and an instant shard produce
/// byte-identical measurements for the same spec.
pub struct GatedRunner {
    runs: AtomicU64,
    gate: std::sync::Mutex<std::sync::mpsc::Receiver<()>>,
}

impl GatedRunner {
    /// Jobs that have *started* running (they may still be parked).
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::SeqCst)
    }
}

impl JobRunner for GatedRunner {
    fn run(&self, spec: &JobSpec, _store: &ArtifactStore) -> Result<Measurement, String> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        let _ = self.gate.lock().unwrap().recv();
        Ok(dummy_measurement(spec.source.len() as u64))
    }

    fn work_counts(&self) -> (u64, u64) {
        (self.runs.load(Ordering::SeqCst), 0)
    }
}

/// A scheduler over a [`GatedRunner`]: each token sent on the returned
/// channel releases one parked job. Drop-safety caveat: open the gate
/// (or drop the sender) before shutting the scheduler down, or workers
/// blocked in `run` keep the shutdown join waiting.
pub fn gated_scheduler(
    workers: usize,
    queue_cap: usize,
) -> (Arc<Scheduler>, std::sync::mpsc::Sender<()>) {
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = GatedRunner {
        runs: AtomicU64::new(0),
        gate: std::sync::Mutex::new(rx),
    };
    let sched = Scheduler::with_runner(
        Arc::new(ArtifactStore::in_memory()),
        Box::new(runner),
        workers,
        queue_cap,
    );
    (Arc::new(sched), tx)
}

/// The pre-refactor server, kept **only** as the saturation benchmark's
/// comparator: one blocking OS thread per connection, submits holding
/// their thread in `Ticket::wait`. Production serving is the event loop
/// in [`crate::server`]; nothing but `epicc saturate --bench` should
/// start one of these.
pub struct BaselineServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    sched: Arc<Scheduler>,
}

impl BaselineServer {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The scheduler behind the server.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Stop accepting and drain the scheduler. Live connection threads
    /// exit when their clients hang up.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.sched.shutdown();
    }
}

impl Drop for BaselineServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Start a thread-per-connection baseline server (bench comparator —
/// see [`BaselineServer`]).
///
/// # Errors
/// Bind failures.
pub fn serve_baseline(listen_addr: &str, sched: Arc<Scheduler>) -> std::io::Result<BaselineServer> {
    let listener = TcpListener::bind(listen_addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let stop = Arc::clone(&stop);
        let sched = Arc::clone(&sched);
        std::thread::Builder::new()
            .name("baseline-accept".to_string())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let sched = Arc::clone(&sched);
                            let stop = Arc::clone(&stop);
                            let _ = std::thread::Builder::new()
                                .name("baseline-conn".to_string())
                                .spawn(move || baseline_connection(stream, &sched, &stop));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn baseline accept loop")
    };
    Ok(BaselineServer {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        sched,
    })
}

fn baseline_connection(stream: TcpStream, sched: &Arc<Scheduler>, stop: &Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer);
    let mut writer = BufWriter::new(stream);
    while let Ok(Some(body)) = proto::read_frame(&mut reader) {
        let resp = match proto::decode_request(&body) {
            Ok(Request::Submit {
                spec,
                prio,
                deadline_ms,
            }) => baseline_submit(sched, spec, prio, deadline_ms),
            Ok(Request::Stats) => {
                let (compiles, sims) = sched.work_counts();
                Response::Stats(ServeStats {
                    store: sched.store().stats(),
                    sched: sched.stats(),
                    compiles,
                    sims,
                    shard_id: 0,
                })
            }
            Ok(Request::Shutdown) => {
                stop.store(true, Ordering::SeqCst);
                Response::ShutdownOk
            }
            Ok(_) => Response::Err("baseline server: submit/stats/shutdown only".to_string()),
            Err(e) => Response::Err(format!("bad request: {e}")),
        };
        if proto::write_frame(&mut writer, &proto::encode_response(&resp)).is_err() {
            break;
        }
        if matches!(resp, Response::ShutdownOk) {
            break;
        }
    }
}

fn baseline_submit(
    sched: &Arc<Scheduler>,
    spec: JobSpec,
    prio: Priority,
    deadline_ms: u64,
) -> Response {
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    match sched.submit(spec, prio, deadline) {
        Ok(ticket) => {
            let (key, cache_hit, coalesced) = (ticket.key, ticket.cache_hit, ticket.coalesced);
            match ticket.wait() {
                Ok(m) => Response::Done {
                    key,
                    cache_hit,
                    coalesced,
                    measurement: Box::new((*m).clone()),
                },
                Err(JobError::Expired) => Response::Err("deadline expired".to_string()),
                Err(e) => Response::Err(e.to_string()),
            }
        }
        Err(crate::sched::SubmitError::Busy { queue_depth }) => Response::Busy { queue_depth },
        Err(crate::sched::SubmitError::Shutdown) => {
            Response::Err("server shutting down".to_string())
        }
    }
}
