//! The job scheduler: a bounded priority queue drained by `std::thread`
//! workers, with in-flight request coalescing, per-job queue deadlines,
//! and load shedding.
//!
//! Invariants:
//!
//! * **Coalescing** — at most one job per [`CacheKey`] is queued or
//!   running at any time. Concurrent submissions of the same key attach
//!   to the existing job's completion cell and all observe the single
//!   result; the runner executes exactly once.
//! * **Load shedding** — [`Scheduler::submit`] never blocks. A full
//!   queue returns [`SubmitError::Busy`] immediately (a typed rejection
//!   the protocol surfaces as its own response), never a hang.
//! * **Deadlines** — a job that waited in the queue past its deadline is
//!   failed with [`JobError::Expired`] instead of being run; the work it
//!   would have done is shed.
//! * **Shutdown** — pending and in-flight waiters are woken with
//!   [`JobError::Shutdown`]; workers are joined on [`Scheduler::shutdown`]
//!   or drop.

use crate::key::{CacheKey, JobSpec};
use crate::store::{ArtifactStore, CompiledArtifact};
use epic_driver::Measurement;
use epic_trace::{Counter, Gauge, Histogram, SpanNode, Trace};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Job priority; higher drains first, FIFO within a class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Priority {
    /// Background refill work.
    Low = 0,
    /// Interactive default.
    #[default]
    Normal = 1,
    /// Ahead of everything else.
    High = 2,
}

impl Priority {
    /// Stable one-byte wire encoding.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`tag`](Priority::tag).
    pub fn from_tag(tag: u8) -> Option<Priority> {
        match tag {
            0 => Some(Priority::Low),
            1 => Some(Priority::Normal),
            2 => Some(Priority::High),
            _ => None,
        }
    }
}

/// Why a job did not produce a measurement.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The compile or simulation itself failed.
    Runner(String),
    /// The job's queue deadline passed before a worker picked it up.
    Expired,
    /// The scheduler shut down before the job ran.
    Shutdown,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Runner(e) => write!(f, "job failed: {e}"),
            JobError::Expired => write!(f, "queue deadline expired before the job started"),
            JobError::Shutdown => write!(f, "scheduler shut down"),
        }
    }
}

impl std::error::Error for JobError {}

/// A rejected submission.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The work queue is full; retry later or shed load upstream. The
    /// payload is the queue depth observed at rejection.
    Busy {
        /// Jobs waiting when the submission was rejected.
        queue_depth: usize,
    },
    /// The scheduler is shutting down.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { queue_depth } => {
                write!(f, "busy: queue full ({queue_depth} waiting)")
            }
            SubmitError::Shutdown => write!(f, "scheduler shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Executes one job. The production implementation compiles and
/// simulates through `epic-driver`; tests substitute stubs to make
/// coalescing and shedding deterministic.
pub trait JobRunner: Send + Sync + 'static {
    /// Produce the measurement for `spec`, using `store` for
    /// compile-artifact reuse.
    ///
    /// # Errors
    /// A human-readable description of the failing stage.
    fn run(&self, spec: &JobSpec, store: &ArtifactStore) -> Result<Measurement, String>;

    /// (compiles, sims) performed so far — the server's `stats` verb
    /// reports these to prove warm sweeps do zero work.
    fn work_counts(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// The production runner: compile (reusing the store's machine-code
/// cache when a sibling job already compiled this source at this level)
/// and simulate.
#[derive(Default)]
pub struct DriverRunner {
    compiles: AtomicU64,
    sims: AtomicU64,
}

impl JobRunner for DriverRunner {
    fn run(&self, spec: &JobSpec, store: &ArtifactStore) -> Result<Measurement, String> {
        let artifact = match store.lookup_mach(spec.compile_key()) {
            Some(a) => a,
            None => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let compiled = epic_driver::compile_source(
                    &spec.source,
                    &spec.train_args,
                    &spec.ref_args,
                    &spec.compile_options(),
                )
                .map_err(|e| format!("compile [{}]: {e}", spec.level.name()))?;
                epic_trace::global()
                    .histogram("serve.compile_us")
                    .record(t0.elapsed().as_micros() as u64);
                let stats = compiled.stats();
                store.insert_mach(
                    spec.compile_key(),
                    CompiledArtifact {
                        mach: compiled.mach,
                        stats,
                    },
                )
            }
        };
        self.sims.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let sim = epic_sim::run(&artifact.mach, &spec.ref_args, &spec.sim_options())
            .map_err(|e| format!("sim [{}]: {e}", spec.level.name()))?;
        let g = epic_trace::global();
        g.histogram("serve.sim_us")
            .record(t0.elapsed().as_micros() as u64);
        let pname = spec.predictor.name();
        g.counter(&format!("sim.predict.{pname}.predictions"))
            .add(sim.counters.branch_predictions);
        g.counter(&format!("sim.predict.{pname}.mispredictions"))
            .add(sim.counters.branch_mispredictions);
        Ok(Measurement {
            level: spec.level,
            compiled: artifact.stats.clone(),
            sim,
        })
    }

    fn work_counts(&self) -> (u64, u64) {
        (
            self.compiles.load(Ordering::Relaxed),
            self.sims.load(Ordering::Relaxed),
        )
    }
}

/// A completion-notification hook: runs exactly once, on whichever
/// thread completes the job (or immediately on the registering thread if
/// the job already finished). Hooks must be cheap and non-blocking — the
/// event loop registers one that enqueues the result and wakes the loop.
pub type CompletionHook = Box<dyn FnOnce(Result<Arc<Measurement>, JobError>) + Send>;

/// Completion cell shared by every waiter coalesced onto one job.
/// Waiters come in two shapes: blocking ([`wait`](JobCell::wait), the
/// condvar path) and completion-driven (registered [`CompletionHook`]s,
/// the event-loop path — one loop thread multiplexes thousands of
/// in-flight submits instead of parking one thread per submit).
struct JobCell {
    state: Mutex<CellState>,
    cv: Condvar,
}

#[derive(Default)]
struct CellState {
    done: Option<Result<Arc<Measurement>, JobError>>,
    hooks: Vec<CompletionHook>,
}

impl JobCell {
    fn new() -> Arc<JobCell> {
        Arc::new(JobCell {
            state: Mutex::new(CellState::default()),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, r: Result<Arc<Measurement>, JobError>) {
        let hooks = {
            let mut g = self.state.lock().expect("job cell");
            g.done = Some(r.clone());
            std::mem::take(&mut g.hooks)
        };
        self.cv.notify_all();
        // run hooks outside the lock: a hook may re-enter the scheduler
        for h in hooks {
            h(r.clone());
        }
    }

    fn wait(&self) -> Result<Arc<Measurement>, JobError> {
        let mut g = self.state.lock().expect("job cell");
        loop {
            if let Some(r) = g.done.as_ref() {
                return r.clone();
            }
            g = self.cv.wait(g).expect("job cell");
        }
    }

    fn subscribe(&self, hook: CompletionHook) {
        let ready = {
            let mut g = self.state.lock().expect("job cell");
            match g.done.clone() {
                Some(r) => Some(r),
                None => {
                    g.hooks.push(hook);
                    return;
                }
            }
        };
        if let Some(r) = ready {
            hook(r);
        }
    }
}

/// Handle to a submitted (or instantly served) job.
pub struct Ticket {
    /// Content key of the job.
    pub key: CacheKey,
    /// True when the submission was answered straight from the store.
    pub cache_hit: bool,
    /// True when the submission attached to an already-in-flight job.
    pub coalesced: bool,
    state: TicketState,
}

enum TicketState {
    Ready(Arc<Measurement>),
    Pending(Arc<JobCell>),
}

impl Ticket {
    /// Block until the measurement is available.
    ///
    /// # Errors
    /// The job's failure, if it expired, errored, or was shut down.
    pub fn wait(&self) -> Result<Arc<Measurement>, JobError> {
        match &self.state {
            TicketState::Ready(m) => Ok(Arc::clone(m)),
            TicketState::Pending(cell) => cell.wait(),
        }
    }

    /// Non-blocking probe: the result if the job has finished.
    pub fn try_result(&self) -> Option<Result<Arc<Measurement>, JobError>> {
        match &self.state {
            TicketState::Ready(m) => Some(Ok(Arc::clone(m))),
            TicketState::Pending(cell) => cell.state.lock().expect("job cell").done.clone(),
        }
    }

    /// Completion-driven alternative to [`wait`](Ticket::wait): run
    /// `hook` exactly once when the job finishes — immediately on this
    /// thread if it already has (including instant cache hits), else on
    /// the completing thread. This is how the `epicd` event loop
    /// multiplexes thousands of in-flight submits without parking a
    /// thread per connection.
    pub fn on_complete(
        self,
        hook: impl FnOnce(Result<Arc<Measurement>, JobError>) + Send + 'static,
    ) {
        match self.state {
            TicketState::Ready(m) => hook(Ok(m)),
            TicketState::Pending(cell) => cell.subscribe(Box::new(hook)),
        }
    }
}

struct QueuedJob {
    prio: Priority,
    seq: u64,
    key: CacheKey,
    spec: JobSpec,
    deadline: Option<Instant>,
    enqueued: Instant,
    cell: Arc<JobCell>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &QueuedJob) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &QueuedJob) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &QueuedJob) -> std::cmp::Ordering {
        // max-heap: higher priority first, then lower sequence (FIFO)
        (self.prio, std::cmp::Reverse(self.seq)).cmp(&(other.prio, std::cmp::Reverse(other.seq)))
    }
}

struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    inflight: HashMap<CacheKey, Arc<JobCell>>,
    shutdown: bool,
    seq: u64,
}

/// Scheduler statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Submissions accepted (including instant cache hits).
    pub submitted: u64,
    /// Submissions answered straight from the store.
    pub cache_hits: u64,
    /// Submissions attached to an in-flight job.
    pub coalesced: u64,
    /// Submissions rejected with `Busy`.
    pub shed: u64,
    /// Jobs that ran to completion (success or runner error).
    pub jobs_run: u64,
    /// Jobs dropped because their queue deadline passed.
    pub expired: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Jobs queued or running right now.
    pub in_flight: u64,
}

/// Handles into the process-wide [`epic_trace::global`] registry — the
/// scheduler records every event there (always on; one relaxed atomic
/// per event), which is what the `metrics` protocol verb and `epicc
/// top` read.
struct ServeMetrics {
    submitted: Counter,
    cache_hits: Counter,
    coalesced: Counter,
    shed: Counter,
    jobs_run: Counter,
    expired: Counter,
    queue_depth: Gauge,
    queue_wait_us: Histogram,
    run_us: Histogram,
    store_us: Histogram,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let g = epic_trace::global();
        ServeMetrics {
            submitted: g.counter("serve.submitted"),
            cache_hits: g.counter("serve.cache_hits"),
            coalesced: g.counter("serve.coalesced"),
            shed: g.counter("serve.shed"),
            jobs_run: g.counter("serve.jobs_run"),
            expired: g.counter("serve.expired"),
            queue_depth: g.gauge("serve.queue_depth"),
            queue_wait_us: g.histogram("serve.queue_wait_us"),
            run_us: g.histogram("serve.run_us"),
            store_us: g.histogram("serve.store_us"),
        }
    }
}

struct Inner {
    store: Arc<ArtifactStore>,
    runner: Box<dyn JobRunner>,
    q: Mutex<QueueState>,
    cv: Condvar,
    queue_cap: usize,
    submitted: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    jobs_run: AtomicU64,
    expired: AtomicU64,
    metrics: ServeMetrics,
    trace: Trace,
}

/// The scheduler: owns its worker threads for its whole lifetime.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Production scheduler over `store` with the [`DriverRunner`].
    /// `workers == 0` uses the machine's available parallelism.
    pub fn new(store: Arc<ArtifactStore>, workers: usize, queue_cap: usize) -> Scheduler {
        Scheduler::with_runner(store, Box::new(DriverRunner::default()), workers, queue_cap)
    }

    /// Scheduler with a caller-supplied runner (tests).
    pub fn with_runner(
        store: Arc<ArtifactStore>,
        runner: Box<dyn JobRunner>,
        workers: usize,
        queue_cap: usize,
    ) -> Scheduler {
        Scheduler::with_runner_traced(store, runner, workers, queue_cap, Trace::disabled())
    }

    /// [`with_runner`](Scheduler::with_runner) recording per-job
    /// `serve → queue-wait/run/store` span trees into `trace` (metrics
    /// always go to the process-wide registry either way).
    pub fn with_runner_traced(
        store: Arc<ArtifactStore>,
        runner: Box<dyn JobRunner>,
        workers: usize,
        queue_cap: usize,
        trace: Trace,
    ) -> Scheduler {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            workers
        };
        let inner = Arc::new(Inner {
            store,
            runner,
            q: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                inflight: HashMap::new(),
                shutdown: false,
                seq: 0,
            }),
            cv: Condvar::new(),
            queue_cap: queue_cap.max(1),
            submitted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
            trace,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("epic-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// The store this scheduler serves from.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.inner.store
    }

    /// The trace this scheduler records job span trees into (a disabled
    /// handle unless built with
    /// [`with_runner_traced`](Scheduler::with_runner_traced)).
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// Submit a job. Never blocks: returns a ready ticket on a cache
    /// hit, a pending ticket otherwise (coalescing onto an in-flight
    /// job with the same key when one exists).
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the queue is full, or
    /// [`SubmitError::Shutdown`].
    pub fn submit(
        &self,
        spec: JobSpec,
        prio: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        let inner = &self.inner;
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        inner.metrics.submitted.inc();
        let key = spec.job_key();
        if let Some(m) = inner.store.lookup(key) {
            inner.cache_hits.fetch_add(1, Ordering::Relaxed);
            inner.metrics.cache_hits.inc();
            return Ok(Ticket {
                key,
                cache_hit: true,
                coalesced: false,
                state: TicketState::Ready(m),
            });
        }
        let mut q = inner.q.lock().expect("scheduler queue");
        if q.shutdown {
            return Err(SubmitError::Shutdown);
        }
        if let Some(cell) = q.inflight.get(&key) {
            inner.coalesced.fetch_add(1, Ordering::Relaxed);
            inner.metrics.coalesced.inc();
            return Ok(Ticket {
                key,
                cache_hit: false,
                coalesced: true,
                state: TicketState::Pending(Arc::clone(cell)),
            });
        }
        if q.heap.len() >= inner.queue_cap {
            inner.shed.fetch_add(1, Ordering::Relaxed);
            inner.metrics.shed.inc();
            return Err(SubmitError::Busy {
                queue_depth: q.heap.len(),
            });
        }
        let cell = JobCell::new();
        q.seq += 1;
        let job = QueuedJob {
            prio,
            seq: q.seq,
            key,
            spec,
            deadline: deadline.map(|d| Instant::now() + d),
            enqueued: Instant::now(),
            cell: Arc::clone(&cell),
        };
        q.inflight.insert(key, Arc::clone(&cell));
        q.heap.push(job);
        inner.metrics.queue_depth.set(q.heap.len() as i64);
        inner.cv.notify_one();
        Ok(Ticket {
            key,
            cache_hit: false,
            coalesced: false,
            state: TicketState::Pending(cell),
        })
    }

    /// Is this key queued, running, or already stored? (`status` verb.)
    pub fn status(&self, key: CacheKey) -> JobStatus {
        if self
            .inner
            .q
            .lock()
            .expect("scheduler queue")
            .inflight
            .contains_key(&key)
        {
            return JobStatus::InFlight;
        }
        // probe memory/disk without skewing hit/miss accounting? The
        // status verb is observability; one lookup's worth of skew is
        // acceptable and keeps the store API small.
        if self.inner.store.lookup(key).is_some() {
            JobStatus::Done
        } else {
            JobStatus::Unknown
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedStats {
        let (queue_depth, in_flight) = {
            let q = self.inner.q.lock().expect("scheduler queue");
            (q.heap.len() as u64, q.inflight.len() as u64)
        };
        SchedStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            coalesced: self.inner.coalesced.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            jobs_run: self.inner.jobs_run.load(Ordering::Relaxed),
            expired: self.inner.expired.load(Ordering::Relaxed),
            queue_depth,
            in_flight,
        }
    }

    /// (compiles, sims) the runner has performed.
    pub fn work_counts(&self) -> (u64, u64) {
        self.inner.runner.work_counts()
    }

    /// Stop accepting work, fail queued jobs with
    /// [`JobError::Shutdown`], and join the workers.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.q.lock().expect("scheduler queue");
            q.shutdown = true;
            while let Some(job) = q.heap.pop() {
                q.inflight.remove(&job.key);
                job.cell.complete(Err(JobError::Shutdown));
            }
            self.inner.cv.notify_all();
        }
        let mut workers = self.workers.lock().expect("worker handles");
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Status of a key in the service.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobStatus {
    /// Never seen (or evicted without persistence).
    Unknown,
    /// Queued or running.
    InFlight,
    /// A result is stored.
    Done,
}

impl JobStatus {
    /// Stable one-byte wire encoding.
    pub fn tag(self) -> u8 {
        match self {
            JobStatus::Unknown => 0,
            JobStatus::InFlight => 1,
            JobStatus::Done => 2,
        }
    }

    /// Inverse of [`tag`](JobStatus::tag).
    pub fn from_tag(tag: u8) -> Option<JobStatus> {
        match tag {
            0 => Some(JobStatus::Unknown),
            1 => Some(JobStatus::InFlight),
            2 => Some(JobStatus::Done),
            _ => None,
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.q.lock().expect("scheduler queue");
            loop {
                if let Some(job) = q.heap.pop() {
                    inner.metrics.queue_depth.set(q.heap.len() as i64);
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner.cv.wait(q).expect("scheduler queue");
            }
        };
        let wait = job.enqueued.elapsed();
        inner.metrics.queue_wait_us.record(wait.as_micros() as u64);
        if job.deadline.is_some_and(|d| Instant::now() > d) {
            inner.expired.fetch_add(1, Ordering::Relaxed);
            inner.metrics.expired.inc();
            finish(inner, &job, Err(JobError::Expired));
            continue;
        }
        let run_start = Instant::now();
        let ran = inner.runner.run(&job.spec, &inner.store);
        let run_dur = run_start.elapsed();
        inner.metrics.run_us.record(run_dur.as_micros() as u64);
        let store_start = Instant::now();
        let result = ran
            .map(|m| inner.store.insert(job.key, m))
            .map_err(JobError::Runner);
        let store_dur = store_start.elapsed();
        inner.metrics.store_us.record(store_dur.as_micros() as u64);
        inner.jobs_run.fetch_add(1, Ordering::Relaxed);
        inner.metrics.jobs_run.inc();
        if inner.trace.is_enabled() {
            // One manual span tree per job, anchored at enqueue time so
            // queue-wait, run, and store tile the job's full wall span.
            let start_ns = inner.trace.rel_ns(job.enqueued);
            let wait_ns = wait.as_nanos() as u64;
            let run_ns = run_dur.as_nanos() as u64;
            let store_ns = store_dur.as_nanos() as u64;
            inner.trace.record_manual(SpanNode {
                name: "serve".to_string(),
                start_ns,
                dur_ns: wait_ns + run_ns + store_ns,
                children: vec![
                    SpanNode::leaf("queue-wait", start_ns, wait_ns),
                    SpanNode::leaf("run", start_ns + wait_ns, run_ns),
                    SpanNode::leaf("store", start_ns + wait_ns + run_ns, store_ns),
                ],
            });
        }
        finish(inner, &job, result);
    }
}

fn finish(inner: &Inner, job: &QueuedJob, result: Result<Arc<Measurement>, JobError>) {
    inner
        .q
        .lock()
        .expect("scheduler queue")
        .inflight
        .remove(&job.key);
    job.cell.complete(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dummy_measurement;
    use std::sync::mpsc;

    /// Runner that counts invocations and can be made to block until
    /// released, so tests control exactly when the worker is busy.
    struct StubRunner {
        runs: AtomicU64,
        gate: Mutex<Option<mpsc::Receiver<()>>>,
    }

    impl StubRunner {
        fn free() -> StubRunner {
            StubRunner {
                runs: AtomicU64::new(0),
                gate: Mutex::new(None),
            }
        }

        fn gated() -> (StubRunner, mpsc::Sender<()>) {
            let (tx, rx) = mpsc::channel();
            (
                StubRunner {
                    runs: AtomicU64::new(0),
                    gate: Mutex::new(Some(rx)),
                },
                tx,
            )
        }
    }

    impl JobRunner for StubRunner {
        fn run(&self, spec: &JobSpec, _store: &ArtifactStore) -> Result<Measurement, String> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            if let Some(rx) = &*self.gate.lock().unwrap() {
                let _ = rx.recv();
            }
            if spec.source.contains("FAIL") {
                return Err("stub failure".into());
            }
            Ok(dummy_measurement(spec.source.len() as u64))
        }

        fn work_counts(&self) -> (u64, u64) {
            (self.runs.load(Ordering::SeqCst), 0)
        }
    }

    fn spec(src: &str) -> JobSpec {
        let w = epic_workloads::by_name("mcf_mc").unwrap();
        let mut s = JobSpec::for_workload(&w, epic_driver::OptLevel::Gcc);
        s.source = src.to_string();
        s
    }

    #[test]
    fn eight_concurrent_submissions_of_one_key_run_exactly_once() {
        let store = Arc::new(ArtifactStore::in_memory());
        let (runner, release) = StubRunner::gated();
        let sched = Arc::new(Scheduler::with_runner(store, Box::new(runner), 2, 64));
        let tickets: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let sched = Arc::clone(&sched);
                    scope.spawn(move || {
                        let t = sched.submit(spec("same"), Priority::Normal, None).unwrap();
                        (t.coalesced, t.wait())
                    })
                })
                .collect();
            // let every submitter land before releasing the single run,
            // then feed the gate enough tokens for any stragglers
            std::thread::sleep(Duration::from_millis(100));
            for _ in 0..16 {
                let _ = release.send(());
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let (compiles, _) = sched.work_counts();
        assert_eq!(compiles, 1, "coalescing must yield exactly one run");
        let digests: Vec<_> = tickets
            .iter()
            .map(|(_, r)| crate::codec::digest(r.as_ref().unwrap()))
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
        assert!(
            tickets.iter().filter(|(coalesced, _)| *coalesced).count() >= 1,
            "later submitters attach to the in-flight job"
        );
        assert_eq!(sched.stats().in_flight, 0);
    }

    #[test]
    fn full_queue_returns_typed_busy_not_a_hang() {
        let store = Arc::new(ArtifactStore::in_memory());
        let (runner, release) = StubRunner::gated();
        // one worker, queue of 2: job A occupies the worker, B and C
        // fill the queue, D must shed
        let sched = Scheduler::with_runner(store, Box::new(runner), 1, 2);
        let ta = sched.submit(spec("a"), Priority::Normal, None).unwrap();
        // wait until the worker has actually picked A up (the queue is
        // empty again), so B and C both sit in the queue
        let t0 = Instant::now();
        while sched.stats().queue_depth > 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "worker never started"
            );
            std::thread::yield_now();
        }
        let tb = sched.submit(spec("b"), Priority::Normal, None).unwrap();
        let tc = sched.submit(spec("c"), Priority::Normal, None).unwrap();
        match sched.submit(spec("d"), Priority::Normal, None) {
            Err(SubmitError::Busy { queue_depth }) => assert_eq!(queue_depth, 2),
            other => panic!("expected Busy, got {:?}", other.map(|t| t.key)),
        }
        assert_eq!(sched.stats().shed, 1);
        for _ in 0..8 {
            let _ = release.send(());
        }
        assert!(ta.wait().is_ok());
        assert!(tb.wait().is_ok());
        assert!(tc.wait().is_ok());
    }

    #[test]
    fn second_submission_after_completion_is_a_cache_hit() {
        let store = Arc::new(ArtifactStore::in_memory());
        let sched = Scheduler::with_runner(store, Box::new(StubRunner::free()), 1, 8);
        let t1 = sched.submit(spec("x"), Priority::Normal, None).unwrap();
        assert!(!t1.cache_hit);
        let first = t1.wait().unwrap();
        let t2 = sched.submit(spec("x"), Priority::Normal, None).unwrap();
        assert!(t2.cache_hit, "stored result must be served instantly");
        assert_eq!(
            crate::codec::digest(&first),
            crate::codec::digest(&t2.wait().unwrap())
        );
        assert_eq!(sched.work_counts().0, 1);
        assert_eq!(sched.status(t1.key), JobStatus::Done);
        assert_eq!(sched.stats().cache_hits, 1);
    }

    #[test]
    fn expired_deadline_fails_the_job_without_running_it() {
        let store = Arc::new(ArtifactStore::in_memory());
        let (runner, release) = StubRunner::gated();
        let sched = Scheduler::with_runner(store, Box::new(runner), 1, 8);
        // occupy the single worker...
        let ta = sched.submit(spec("hold"), Priority::Normal, None).unwrap();
        let t0 = Instant::now();
        while sched.stats().queue_depth > 0 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::yield_now();
        }
        // ...queue a job whose deadline lapses while it waits
        let tb = sched
            .submit(spec("late"), Priority::Normal, Some(Duration::ZERO))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        for _ in 0..8 {
            let _ = release.send(());
        }
        assert!(ta.wait().is_ok());
        assert!(matches!(tb.wait(), Err(JobError::Expired)));
        assert_eq!(sched.stats().expired, 1);
        assert_eq!(sched.work_counts().0, 1, "expired job never ran");
    }

    #[test]
    fn priorities_drain_high_before_low() {
        let store = Arc::new(ArtifactStore::in_memory());
        let (runner, release) = StubRunner::gated();
        let sched = Scheduler::with_runner(store, Box::new(runner), 1, 8);
        let _hold = sched.submit(spec("hold"), Priority::Normal, None).unwrap();
        let t0 = Instant::now();
        while sched.stats().queue_depth > 0 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::yield_now();
        }
        let tlow = sched.submit(spec("low"), Priority::Low, None).unwrap();
        let thigh = sched.submit(spec("high"), Priority::High, None).unwrap();
        // release jobs one at a time; high must complete before low
        let _ = release.send(()); // hold
        let _ = release.send(()); // first queued job
        let done_first = {
            let t0 = Instant::now();
            loop {
                let high_done = thigh.try_result().is_some();
                let low_done = tlow.try_result().is_some();
                if high_done || low_done {
                    break high_done;
                }
                assert!(t0.elapsed() < Duration::from_secs(5));
                std::thread::yield_now();
            }
        };
        assert!(done_first, "high-priority job must drain first");
        for _ in 0..4 {
            let _ = release.send(());
        }
        let _ = tlow.wait();
        let _ = thigh.wait();
    }

    #[test]
    fn completion_hooks_fire_for_pending_ready_and_failed_jobs() {
        let store = Arc::new(ArtifactStore::in_memory());
        let (runner, release) = StubRunner::gated();
        let sched = Scheduler::with_runner(store, Box::new(runner), 1, 8);
        let (tx, rx) = mpsc::channel();
        // pending job: the hook runs on the worker thread at completion
        let t = sched.submit(spec("hook"), Priority::Normal, None).unwrap();
        let txc = tx.clone();
        t.on_complete(move |r| txc.send(("pending", r.is_ok())).unwrap());
        assert!(
            rx.try_recv().is_err(),
            "hook must not fire before the job runs"
        );
        let _ = release.send(());
        let (tag, ok) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!((tag, ok), ("pending", true));
        // already-complete job: cache hit, hook runs inline
        let t2 = sched.submit(spec("hook"), Priority::Normal, None).unwrap();
        assert!(t2.cache_hit);
        let txc = tx.clone();
        t2.on_complete(move |r| txc.send(("ready", r.is_ok())).unwrap());
        assert_eq!(rx.try_recv().unwrap(), ("ready", true));
        // failing job: the hook observes the error
        let t3 = sched.submit(spec("FAIL"), Priority::Normal, None).unwrap();
        let _ = release.send(());
        t3.on_complete(move |r| tx.send(("failed", r.is_ok())).unwrap());
        let (tag, ok) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!((tag, ok), ("failed", false));
    }

    #[test]
    fn runner_failure_propagates_and_shutdown_wakes_waiters() {
        let store = Arc::new(ArtifactStore::in_memory());
        let sched = Scheduler::with_runner(store, Box::new(StubRunner::free()), 1, 8);
        let t = sched.submit(spec("FAIL"), Priority::Normal, None).unwrap();
        match t.wait() {
            Err(JobError::Runner(e)) => assert!(e.contains("stub failure")),
            other => panic!("expected runner error, got {other:?}"),
        }
        sched.shutdown();
        assert!(matches!(
            sched.submit(spec("y"), Priority::Normal, None),
            Err(SubmitError::Shutdown)
        ));
    }
}
