//! Wire protocol for `epicd`: 4-byte big-endian length-prefixed frames
//! over TCP, one request frame → one response frame.
//!
//! Frame body layout (all via the [`codec`](crate::codec) primitives):
//!
//! ```text
//! request  := verb:u8 payload
//! response := tag:u8  payload
//! ```
//!
//! Every request verb and response tag is a member of the typed
//! [`Verb`] / [`RespTag`] enums — the numeric wire byte is pinned by
//! the enum discriminant and by a golden-frame test, so frames written
//! by a pre-redesign client still decode byte-for-byte. Responses carry
//! either the requested data, a typed [`Response::Busy`] (load shed — the
//! client sees backpressure, not a hang), or an error string.
//!
//! The `Admin` verb is versioned: its payload opens with
//! [`ADMIN_VERSION`], so the control plane can evolve without burning a
//! new wire byte per revision — decoders reject versions they don't
//! know instead of misparsing them.
//!
//! The frame length is capped at [`MAX_FRAME`] so a corrupt or hostile
//! length prefix cannot trigger an unbounded allocation.

use crate::codec::{self, CodecError, Dec, Enc};
use crate::key::{
    canon_machine_config, level_from_tag, level_tag, profile_input_from_tag, profile_input_tag,
    spec_model_from_tag, spec_model_tag, CacheKey, JobSpec,
};
use crate::sched::{JobStatus, Priority, SchedStats};
use crate::store::StoreStats;
use epic_driver::Measurement;
use epic_mach::{CacheConfig, MachineConfig};
use epic_sim::{PredictorSpec, SamplePolicy, Warmup};
use epic_trace::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};
use std::io::{Read, Write};

/// Hard ceiling on one frame's body (16 MiB — a full measurement for
/// the largest workload is a few hundred KiB).
pub const MAX_FRAME: usize = 16 << 20;

/// Request verbs, pinned to their wire bytes. The discriminant IS the
/// protocol: existing verbs never renumber (the golden-frame test holds
/// legacy encodings against this table), new verbs only append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Verb {
    /// Run (or fetch) a job.
    Submit = 1,
    /// Query a key's status.
    Status = 2,
    /// Fetch a stored result.
    Result = 3,
    /// Server + store + scheduler counters.
    Stats = 4,
    /// Stop the server.
    Shutdown = 5,
    /// Full metrics-registry snapshot.
    Metrics = 6,
    /// Store a finished measurement (warm-cache replication).
    Put = 7,
    /// Enumerate every key the shard's store holds.
    Keys = 8,
    /// Versioned control-plane envelope ([`AdminRequest`]).
    Admin = 9,
}

impl Verb {
    /// The wire byte.
    pub fn wire(self) -> u8 {
        self as u8
    }

    /// The verb assigned to a wire byte, `None` if unassigned.
    pub fn from_wire(b: u8) -> Option<Verb> {
        Some(match b {
            1 => Verb::Submit,
            2 => Verb::Status,
            3 => Verb::Result,
            4 => Verb::Stats,
            5 => Verb::Shutdown,
            6 => Verb::Metrics,
            7 => Verb::Put,
            8 => Verb::Keys,
            9 => Verb::Admin,
            _ => return None,
        })
    }
}

/// Response tags, pinned to their wire bytes exactly like [`Verb`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RespTag {
    /// Error string.
    Err = 0,
    /// Finished submit.
    Done = 1,
    /// Status answer.
    Status = 2,
    /// Stored-result answer.
    Result = 3,
    /// Stats answer.
    Stats = 4,
    /// Typed backpressure.
    Busy = 5,
    /// Shutdown acknowledged.
    ShutdownOk = 6,
    /// Metrics answer.
    Metrics = 7,
    /// Replicate-put acknowledged.
    PutOk = 8,
    /// Key-census answer.
    Keys = 9,
    /// Versioned control-plane envelope ([`AdminResponse`]).
    Admin = 10,
}

impl RespTag {
    /// The wire byte.
    pub fn wire(self) -> u8 {
        self as u8
    }

    /// The tag assigned to a wire byte, `None` if unassigned.
    pub fn from_wire(b: u8) -> Option<RespTag> {
        Some(match b {
            0 => RespTag::Err,
            1 => RespTag::Done,
            2 => RespTag::Status,
            3 => RespTag::Result,
            4 => RespTag::Stats,
            5 => RespTag::Busy,
            6 => RespTag::ShutdownOk,
            7 => RespTag::Metrics,
            8 => RespTag::PutOk,
            9 => RespTag::Keys,
            10 => RespTag::Admin,
            _ => return None,
        })
    }
}

/// Version byte opening every `Admin` payload. Bump on any layout
/// change to [`AdminRequest`] / [`AdminResponse`]; decoders reject
/// versions they don't know.
pub const ADMIN_VERSION: u8 = 1;

/// A typed control-plane request (the [`Verb::Admin`] payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdminRequest {
    /// Describe the fleet: ring membership plus a per-shard key census.
    FleetStatus,
    /// Add a shard: warm it with every key it will own, then cut the
    /// routing ring over to it.
    Join {
        /// Stable identity of the joining shard.
        id: u64,
        /// Where it listens.
        addr: String,
    },
    /// Remove a shard: warm its keys onto their next owners first, then
    /// cut the routing ring over — zero warm-cache loss.
    Drain {
        /// The departing shard.
        id: u64,
    },
}

/// A typed control-plane response (the [`RespTag::Admin`] payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdminResponse {
    /// Fleet description.
    Status(FleetStatus),
    /// A join/drain finished: what moved, and the ring after cutover.
    Rebalanced(RebalanceReport),
    /// The operation was refused or failed; the ring is unchanged.
    Err(String),
}

/// One shard as the gateway sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Stable shard identity.
    pub id: u64,
    /// Listen address.
    pub addr: String,
    /// Member of the current routing ring (false: drained but still
    /// known, e.g. for in-flight old-ring requests and shutdown fanout).
    pub in_ring: bool,
    /// The census probe reached it.
    pub reachable: bool,
    /// Keys its store reported holding.
    pub keys: u64,
}

/// Fleet description: ring generation plus every shard the gateway
/// knows about.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStatus {
    /// Monotonic ring generation — bumps on every cutover.
    pub version: u64,
    /// Known shards, id-sorted.
    pub shards: Vec<ShardInfo>,
}

/// What a warm-before-cutover rebalance did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Cached results pushed to their new owners before the swap.
    pub keys_moved: u64,
    /// Measurement bytes transferred.
    pub bytes: u64,
    /// Wall time from admin dispatch to ring swap.
    pub ms: u64,
    /// Keys whose move was skipped (result vanished mid-flight or a
    /// transfer leg failed) — routing still cut over; those keys simply
    /// recompute cold on their new owner.
    pub skipped: u64,
    /// Ring membership after the cutover.
    pub ring: Vec<u64>,
}

/// One client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Run (or fetch) a job.
    Submit {
        /// The job.
        spec: JobSpec,
        /// Queue priority.
        prio: Priority,
        /// Queue deadline in milliseconds (0 = none).
        deadline_ms: u64,
    },
    /// Where is this key? (unknown / in flight / done)
    Status(CacheKey),
    /// Fetch a stored result without scheduling anything.
    Result(CacheKey),
    /// Server + store + scheduler counters.
    Stats,
    /// Full metrics-registry snapshot (counters, gauges, histograms).
    Metrics,
    /// Store a finished measurement under a key without running anything
    /// (warm-cache replication: the gateway pushes a completed result to
    /// a replica shard so failover is warm).
    Put {
        /// Content key of the job.
        key: CacheKey,
        /// The measurement to store.
        measurement: Box<Measurement>,
    },
    /// Enumerate every key the shard's store holds (memory + disk) —
    /// the census a rebalance walks to compute what moves.
    Keys,
    /// Control-plane operation (gateway only; a plain epicd refuses).
    Admin(AdminRequest),
    /// Stop the server (used by CI for a clean teardown).
    Shutdown,
}

/// Aggregate server statistics (the `stats` verb payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Artifact-store counters.
    pub store: StoreStats,
    /// Scheduler counters.
    pub sched: SchedStats,
    /// Compiles the runner actually performed.
    pub compiles: u64,
    /// Simulations the runner actually performed.
    pub sims: u64,
    /// Which shard answered (0 for a standalone epicd; the fleet assigns
    /// stable non-zero ids so `epicc top --cluster` can tell shards
    /// apart).
    pub shard_id: u64,
}

/// One server response.
#[derive(Clone, Debug)]
pub enum Response {
    /// Something went wrong (bad frame, runner failure, expiry...).
    Err(String),
    /// Submit accepted and finished.
    Done {
        /// Content key of the job.
        key: CacheKey,
        /// Served straight from the store.
        cache_hit: bool,
        /// Attached to an already-running job.
        coalesced: bool,
        /// The measurement.
        measurement: Box<Measurement>,
    },
    /// Status answer.
    Status(JobStatus),
    /// Stored result (None: not stored).
    Result(Option<Box<Measurement>>),
    /// Stats answer.
    Stats(ServeStats),
    /// Metrics answer: a name-sorted registry snapshot.
    Metrics(MetricsSnapshot),
    /// Queue full — typed backpressure, retry later.
    Busy {
        /// Queue depth at rejection.
        queue_depth: usize,
    },
    /// Replicate-put acknowledged.
    PutOk,
    /// Key census: every key the shard's store holds.
    Keys(Vec<CacheKey>),
    /// Control-plane answer.
    Admin(AdminResponse),
    /// Shutdown acknowledged.
    ShutdownOk,
}

fn enc_key(e: &mut Enc, k: CacheKey) {
    e.u64(k.hi);
    e.u64(k.lo);
}

fn dec_key(d: &mut Dec) -> Result<CacheKey, CodecError> {
    Ok(CacheKey {
        hi: d.u64()?,
        lo: d.u64()?,
    })
}

fn enc_spec(e: &mut Enc, s: &JobSpec) {
    e.str(&s.source);
    e.i64s(&s.train_args);
    e.i64s(&s.ref_args);
    e.u8(level_tag(s.level));
    e.u8(profile_input_tag(s.profile_input));
    e.bool(s.enable_data_spec);
    e.u64(s.profile_fuel);
    // the canonical encoding doubles as the wire encoding for the config
    let mut canon = crate::key::Canon::default();
    canon_machine_config(&mut canon, &s.config);
    e.bytes(&canon.finish());
    e.u64(s.sim_fuel);
    e.u8(spec_model_tag(s.spec_model));
    enc_sample_policy(e, s.sample);
    enc_predictor_spec(e, s.predictor);
}

fn enc_predictor_spec(e: &mut Enc, spec: PredictorSpec) {
    match spec {
        PredictorSpec::Gshare {
            table_bits,
            history_bits,
        } => {
            e.u8(0);
            e.u32(table_bits);
            e.u32(history_bits);
        }
        PredictorSpec::Bimodal { table_bits } => {
            e.u8(1);
            e.u32(table_bits);
        }
        PredictorSpec::Tage => e.u8(2),
        PredictorSpec::Oracle => e.u8(3),
    }
}

fn dec_predictor_spec(d: &mut Dec) -> Result<PredictorSpec, CodecError> {
    match d.u8()? {
        0 => Ok(PredictorSpec::Gshare {
            table_bits: d.u32()?,
            history_bits: d.u32()?,
        }),
        1 => Ok(PredictorSpec::Bimodal {
            table_bits: d.u32()?,
        }),
        2 => Ok(PredictorSpec::Tage),
        3 => Ok(PredictorSpec::Oracle),
        t => Err(CodecError(format!("bad predictor tag {t}"))),
    }
}

fn enc_sample_policy(e: &mut Enc, p: SamplePolicy) {
    match p {
        SamplePolicy::Exact => e.u8(0),
        SamplePolicy::Sampled {
            interval_len,
            max_clusters,
            warmup,
        } => {
            e.u8(1);
            e.u64(interval_len);
            e.usize(max_clusters);
            match warmup {
                Warmup::Cold => e.u8(0),
                Warmup::Ops(w) => {
                    e.u8(1);
                    e.u64(w);
                }
                Warmup::Full => e.u8(2),
            }
        }
    }
}

fn dec_sample_policy(d: &mut Dec) -> Result<SamplePolicy, CodecError> {
    match d.u8()? {
        0 => Ok(SamplePolicy::Exact),
        1 => {
            let interval_len = d.u64()?;
            let max_clusters = d.usize()?;
            let warmup = match d.u8()? {
                0 => Warmup::Cold,
                1 => Warmup::Ops(d.u64()?),
                2 => Warmup::Full,
                t => return Err(CodecError(format!("bad warmup tag {t}"))),
            };
            Ok(SamplePolicy::Sampled {
                interval_len,
                max_clusters,
                warmup,
            })
        }
        t => Err(CodecError(format!("bad sample-policy tag {t}"))),
    }
}

fn dec_cache_cfg(d: &mut Dec) -> Result<CacheConfig, CodecError> {
    Ok(CacheConfig {
        size: d.u64()?,
        line: d.u64()?,
        ways: d.u64()?,
        latency: d.u64()?,
    })
}

fn dec_spec(d: &mut Dec) -> Result<JobSpec, CodecError> {
    let source = d.str()?;
    let train_args = d.i64s()?;
    let ref_args = d.i64s()?;
    let level =
        level_from_tag(d.u8()?).ok_or_else(|| CodecError("bad opt-level tag".to_string()))?;
    let profile_input = profile_input_from_tag(d.u8()?)
        .ok_or_else(|| CodecError("bad profile-input tag".to_string()))?;
    let enable_data_spec = d.bool()?;
    let profile_fuel = d.u64()?;
    let cfg_bytes = d.bytes()?;
    let mut cd = Dec::new(&cfg_bytes);
    let config = MachineConfig {
        l1i: dec_cache_cfg(&mut cd)?,
        l1d: dec_cache_cfg(&mut cd)?,
        l2: dec_cache_cfg(&mut cd)?,
        l3: dec_cache_cfg(&mut cd)?,
        mem_latency: cd.u64()?,
        mispredict_penalty: cd.u64()?,
        ib_ops: cd.usize()?,
        fetch_bundles: cd.usize()?,
        rse_capacity: cd.u32()?,
        rse_cycle_per_reg: cd.u64()?,
        dtlb_entries: cd.usize()?,
        tlb_walk_cycles: cd.u64()?,
        wild_load_kernel_cycles: cd.u64()?,
        nat_page_cycles: cd.u64()?,
        chk_recovery_cycles: cd.u64()?,
        syscall_kernel_cycles: cd.u64()?,
        store_forward_stall: cd.u64()?,
        store_buffer: cd.usize()?,
        alat_entries: cd.usize()?,
        alat_recovery_cycles: cd.u64()?,
    };
    cd.expect_end()?;
    Ok(JobSpec {
        source,
        train_args,
        ref_args,
        level,
        profile_input,
        enable_data_spec,
        profile_fuel,
        config,
        sim_fuel: d.u64()?,
        spec_model: spec_model_from_tag(d.u8()?)
            .ok_or_else(|| CodecError("bad spec-model tag".to_string()))?,
        sample: dec_sample_policy(d)?,
        predictor: dec_predictor_spec(d)?,
    })
}

fn enc_store_stats(e: &mut Enc, s: &StoreStats) {
    for v in [
        s.hits,
        s.misses,
        s.evictions,
        s.disk_hits,
        s.disk_writes,
        s.mach_hits,
        s.mem_entries,
    ] {
        e.u64(v);
    }
}

fn dec_store_stats(d: &mut Dec) -> Result<StoreStats, CodecError> {
    Ok(StoreStats {
        hits: d.u64()?,
        misses: d.u64()?,
        evictions: d.u64()?,
        disk_hits: d.u64()?,
        disk_writes: d.u64()?,
        mach_hits: d.u64()?,
        mem_entries: d.u64()?,
    })
}

fn enc_sched_stats(e: &mut Enc, s: &SchedStats) {
    for v in [
        s.submitted,
        s.cache_hits,
        s.coalesced,
        s.shed,
        s.jobs_run,
        s.expired,
        s.queue_depth,
        s.in_flight,
    ] {
        e.u64(v);
    }
}

fn dec_sched_stats(d: &mut Dec) -> Result<SchedStats, CodecError> {
    Ok(SchedStats {
        submitted: d.u64()?,
        cache_hits: d.u64()?,
        coalesced: d.u64()?,
        shed: d.u64()?,
        jobs_run: d.u64()?,
        expired: d.u64()?,
        queue_depth: d.u64()?,
        in_flight: d.u64()?,
    })
}

const ADMIN_REQ_STATUS: u8 = 0;
const ADMIN_REQ_JOIN: u8 = 1;
const ADMIN_REQ_DRAIN: u8 = 2;

const ADMIN_RESP_STATUS: u8 = 0;
const ADMIN_RESP_REBALANCED: u8 = 1;
const ADMIN_RESP_ERR: u8 = 2;

fn enc_admin_request(e: &mut Enc, a: &AdminRequest) {
    e.u8(ADMIN_VERSION);
    match a {
        AdminRequest::FleetStatus => e.u8(ADMIN_REQ_STATUS),
        AdminRequest::Join { id, addr } => {
            e.u8(ADMIN_REQ_JOIN);
            e.u64(*id);
            e.str(addr);
        }
        AdminRequest::Drain { id } => {
            e.u8(ADMIN_REQ_DRAIN);
            e.u64(*id);
        }
    }
}

fn dec_admin_version(d: &mut Dec) -> Result<(), CodecError> {
    let v = d.u8()?;
    if v != ADMIN_VERSION {
        return Err(CodecError(format!(
            "unsupported admin version {v} (speaking {ADMIN_VERSION})"
        )));
    }
    Ok(())
}

fn dec_admin_request(d: &mut Dec) -> Result<AdminRequest, CodecError> {
    dec_admin_version(d)?;
    Ok(match d.u8()? {
        ADMIN_REQ_STATUS => AdminRequest::FleetStatus,
        ADMIN_REQ_JOIN => AdminRequest::Join {
            id: d.u64()?,
            addr: d.str()?,
        },
        ADMIN_REQ_DRAIN => AdminRequest::Drain { id: d.u64()? },
        t => return Err(CodecError(format!("bad admin request tag {t}"))),
    })
}

fn enc_admin_response(e: &mut Enc, a: &AdminResponse) {
    e.u8(ADMIN_VERSION);
    match a {
        AdminResponse::Status(s) => {
            e.u8(ADMIN_RESP_STATUS);
            e.u64(s.version);
            e.usize(s.shards.len());
            for sh in &s.shards {
                e.u64(sh.id);
                e.str(&sh.addr);
                e.bool(sh.in_ring);
                e.bool(sh.reachable);
                e.u64(sh.keys);
            }
        }
        AdminResponse::Rebalanced(r) => {
            e.u8(ADMIN_RESP_REBALANCED);
            e.u64(r.keys_moved);
            e.u64(r.bytes);
            e.u64(r.ms);
            e.u64(r.skipped);
            e.u64s(&r.ring);
        }
        AdminResponse::Err(msg) => {
            e.u8(ADMIN_RESP_ERR);
            e.str(msg);
        }
    }
}

fn dec_admin_response(d: &mut Dec) -> Result<AdminResponse, CodecError> {
    dec_admin_version(d)?;
    Ok(match d.u8()? {
        ADMIN_RESP_STATUS => {
            let version = d.u64()?;
            let n = d.usize()?;
            let mut shards = Vec::with_capacity(n);
            for _ in 0..n {
                shards.push(ShardInfo {
                    id: d.u64()?,
                    addr: d.str()?,
                    in_ring: d.bool()?,
                    reachable: d.bool()?,
                    keys: d.u64()?,
                });
            }
            AdminResponse::Status(FleetStatus { version, shards })
        }
        ADMIN_RESP_REBALANCED => AdminResponse::Rebalanced(RebalanceReport {
            keys_moved: d.u64()?,
            bytes: d.u64()?,
            ms: d.u64()?,
            skipped: d.u64()?,
            ring: d.u64s()?,
        }),
        ADMIN_RESP_ERR => AdminResponse::Err(d.str()?),
        t => return Err(CodecError(format!("bad admin response tag {t}"))),
    })
}

const METRIC_COUNTER: u8 = 0;
const METRIC_GAUGE: u8 = 1;
const METRIC_HISTOGRAM: u8 = 2;

fn enc_metrics(e: &mut Enc, s: &MetricsSnapshot) {
    e.usize(s.entries.len());
    for entry in &s.entries {
        e.str(&entry.name);
        match &entry.value {
            MetricValue::Counter(v) => {
                e.u8(METRIC_COUNTER);
                e.u64(*v);
            }
            MetricValue::Gauge(v) => {
                e.u8(METRIC_GAUGE);
                e.i64(*v);
            }
            MetricValue::Histogram(h) => {
                e.u8(METRIC_HISTOGRAM);
                e.u64(h.count);
                e.u64(h.sum);
                e.usize(h.buckets.len());
                for &(bucket, n) in &h.buckets {
                    e.u8(bucket);
                    e.u64(n);
                }
            }
        }
    }
}

fn dec_metrics(d: &mut Dec) -> Result<MetricsSnapshot, CodecError> {
    let n = d.usize()?;
    let mut entries = Vec::new();
    for _ in 0..n {
        let name = d.str()?;
        let value = match d.u8()? {
            METRIC_COUNTER => MetricValue::Counter(d.u64()?),
            METRIC_GAUGE => MetricValue::Gauge(d.i64()?),
            METRIC_HISTOGRAM => {
                let count = d.u64()?;
                let sum = d.u64()?;
                let nb = d.usize()?;
                let mut buckets = Vec::new();
                for _ in 0..nb {
                    buckets.push((d.u8()?, d.u64()?));
                }
                MetricValue::Histogram(HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                })
            }
            t => return Err(CodecError(format!("bad metric kind tag {t}"))),
        };
        entries.push(MetricEntry { name, value });
    }
    Ok(MetricsSnapshot { entries })
}

/// Encode a request frame body.
pub fn encode_request(r: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_request_into(r, &mut buf);
    buf
}

/// The verb a request travels under.
pub fn request_verb(r: &Request) -> Verb {
    match r {
        Request::Submit { .. } => Verb::Submit,
        Request::Status(_) => Verb::Status,
        Request::Result(_) => Verb::Result,
        Request::Stats => Verb::Stats,
        Request::Metrics => Verb::Metrics,
        Request::Put { .. } => Verb::Put,
        Request::Keys => Verb::Keys,
        Request::Admin(_) => Verb::Admin,
        Request::Shutdown => Verb::Shutdown,
    }
}

/// [`encode_request`] into a reusable buffer: `buf` is cleared, its
/// capacity kept, so steady-state encoding allocates nothing.
pub fn encode_request_into(r: &Request, buf: &mut Vec<u8>) {
    let mut e = Enc::with_buf(std::mem::take(buf));
    e.u8(request_verb(r).wire());
    match r {
        Request::Submit {
            spec,
            prio,
            deadline_ms,
        } => {
            e.u8(prio.tag());
            e.u64(*deadline_ms);
            enc_spec(&mut e, spec);
        }
        Request::Status(k) | Request::Result(k) => enc_key(&mut e, *k),
        Request::Stats | Request::Metrics | Request::Keys | Request::Shutdown => {}
        Request::Put { key, measurement } => {
            enc_key(&mut e, *key);
            codec::encode_measurement_framed(&mut e, measurement);
        }
        Request::Admin(a) => enc_admin_request(&mut e, a),
    }
    *buf = e.finish();
}

/// Decode a request frame body.
///
/// # Errors
/// Malformed or truncated payloads.
pub fn decode_request(body: &[u8]) -> Result<Request, CodecError> {
    let mut d = Dec::new(body);
    let wire = d.u8()?;
    let verb =
        Verb::from_wire(wire).ok_or_else(|| CodecError(format!("unknown request verb {wire}")))?;
    let r = match verb {
        Verb::Submit => {
            let prio = Priority::from_tag(d.u8()?)
                .ok_or_else(|| CodecError("bad priority tag".to_string()))?;
            let deadline_ms = d.u64()?;
            Request::Submit {
                spec: dec_spec(&mut d)?,
                prio,
                deadline_ms,
            }
        }
        Verb::Status => Request::Status(dec_key(&mut d)?),
        Verb::Result => Request::Result(dec_key(&mut d)?),
        Verb::Stats => Request::Stats,
        Verb::Metrics => Request::Metrics,
        Verb::Put => {
            let key = dec_key(&mut d)?;
            let m = codec::decode_measurement(&d.bytes()?)?;
            Request::Put {
                key,
                measurement: Box::new(m),
            }
        }
        Verb::Keys => Request::Keys,
        Verb::Admin => Request::Admin(dec_admin_request(&mut d)?),
        Verb::Shutdown => Request::Shutdown,
    };
    d.expect_end()?;
    Ok(r)
}

/// Encode a response frame body.
pub fn encode_response(r: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_response_into(r, &mut buf);
    buf
}

/// [`encode_response`] into a reusable buffer: `buf` is cleared, its
/// capacity kept. Measurements are serialized in place
/// ([`codec::encode_measurement_framed`]), so the event loop's write
/// path does zero per-frame allocation at steady state.
pub fn encode_response_into(r: &Response, buf: &mut Vec<u8>) {
    let mut e = Enc::with_buf(std::mem::take(buf));
    e.u8(response_tag(r).wire());
    match r {
        Response::Err(msg) => e.str(msg),
        Response::Done {
            key,
            cache_hit,
            coalesced,
            measurement,
        } => {
            enc_key(&mut e, *key);
            e.bool(*cache_hit);
            e.bool(*coalesced);
            codec::encode_measurement_framed(&mut e, measurement);
        }
        Response::Status(s) => e.u8(s.tag()),
        Response::Result(m) => match m {
            Some(m) => {
                e.bool(true);
                codec::encode_measurement_framed(&mut e, m);
            }
            None => e.bool(false),
        },
        Response::Stats(s) => {
            enc_store_stats(&mut e, &s.store);
            enc_sched_stats(&mut e, &s.sched);
            e.u64(s.compiles);
            e.u64(s.sims);
            e.u64(s.shard_id);
        }
        Response::Metrics(s) => enc_metrics(&mut e, s),
        Response::Busy { queue_depth } => e.u64(*queue_depth as u64),
        Response::Keys(keys) => {
            e.usize(keys.len());
            for &k in keys {
                enc_key(&mut e, k);
            }
        }
        Response::Admin(a) => enc_admin_response(&mut e, a),
        Response::PutOk | Response::ShutdownOk => {}
    }
    *buf = e.finish();
}

/// The tag a response travels under.
pub fn response_tag(r: &Response) -> RespTag {
    match r {
        Response::Err(_) => RespTag::Err,
        Response::Done { .. } => RespTag::Done,
        Response::Status(_) => RespTag::Status,
        Response::Result(_) => RespTag::Result,
        Response::Stats(_) => RespTag::Stats,
        Response::Metrics(_) => RespTag::Metrics,
        Response::Busy { .. } => RespTag::Busy,
        Response::PutOk => RespTag::PutOk,
        Response::Keys(_) => RespTag::Keys,
        Response::Admin(_) => RespTag::Admin,
        Response::ShutdownOk => RespTag::ShutdownOk,
    }
}

/// Decode a response frame body.
///
/// # Errors
/// Malformed or truncated payloads.
pub fn decode_response(body: &[u8]) -> Result<Response, CodecError> {
    let mut d = Dec::new(body);
    let wire = d.u8()?;
    let tag = RespTag::from_wire(wire)
        .ok_or_else(|| CodecError(format!("unknown response tag {wire}")))?;
    let r = match tag {
        RespTag::Err => Response::Err(d.str()?),
        RespTag::Done => {
            let key = dec_key(&mut d)?;
            let cache_hit = d.bool()?;
            let coalesced = d.bool()?;
            let m = codec::decode_measurement(&d.bytes()?)?;
            Response::Done {
                key,
                cache_hit,
                coalesced,
                measurement: Box::new(m),
            }
        }
        RespTag::Status => Response::Status(
            JobStatus::from_tag(d.u8()?).ok_or_else(|| CodecError("bad status tag".to_string()))?,
        ),
        RespTag::Result => {
            if d.bool()? {
                Response::Result(Some(Box::new(codec::decode_measurement(&d.bytes()?)?)))
            } else {
                Response::Result(None)
            }
        }
        RespTag::Stats => Response::Stats(ServeStats {
            store: dec_store_stats(&mut d)?,
            sched: dec_sched_stats(&mut d)?,
            compiles: d.u64()?,
            sims: d.u64()?,
            shard_id: d.u64()?,
        }),
        RespTag::Metrics => Response::Metrics(dec_metrics(&mut d)?),
        RespTag::Busy => Response::Busy {
            queue_depth: d.u64()? as usize,
        },
        RespTag::Keys => {
            let n = d.usize()?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(dec_key(&mut d)?);
            }
            Response::Keys(keys)
        }
        RespTag::Admin => Response::Admin(dec_admin_response(&mut d)?),
        RespTag::PutOk => Response::PutOk,
        RespTag::ShutdownOk => Response::ShutdownOk,
    };
    d.expect_end()?;
    Ok(r)
}

/// Why incremental framing failed. Every variant is a property of ONE
/// connection: the server closes that connection and keeps serving the
/// rest (malformed-frame hardening).
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix announced a body over [`MAX_FRAME`]; nothing
    /// was allocated.
    TooLarge {
        /// The announced body length.
        len: usize,
    },
    /// The peer disconnected mid-prefix or mid-body.
    Truncated {
        /// Bytes of the current unit (prefix or body) received.
        have: usize,
        /// Bytes the current unit needs in total.
        want: usize,
    },
    /// Transport failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len } => write!(f, "frame length {len} exceeds cap"),
            FrameError::Truncated { have, want } => {
                write!(f, "peer closed mid-frame ({have} of {want} bytes)")
            }
            FrameError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// What one [`FrameDecoder::read_from`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame body is buffered: read it with
    /// [`FrameDecoder::frame`], then call [`FrameDecoder::next_frame`].
    Frame,
    /// The reader has no more bytes right now (`WouldBlock`); try again
    /// when the socket is ready.
    Blocked,
    /// The peer closed cleanly at a frame boundary.
    Closed,
}

/// Incremental, allocation-reusing decoder for length-prefixed frames —
/// the event loop's read path. Bytes go straight from the socket into
/// the decoder's internal buffers (no intermediate chunk buffer), and
/// the body buffer is reused across frames, so steady-state decoding of
/// same-sized frames allocates nothing.
#[derive(Default)]
pub struct FrameDecoder {
    len_buf: [u8; 4],
    len_got: usize,
    body: Vec<u8>,
    body_got: usize,
    ready: bool,
}

impl FrameDecoder {
    /// A fresh decoder at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// True while a frame is partially received — an EOF here is a
    /// protocol violation, not a clean close.
    pub fn mid_frame(&self) -> bool {
        !self.ready && (self.len_got > 0 || self.body_got > 0)
    }

    /// The completed frame body. Empty unless the last event was
    /// [`FrameEvent::Frame`] (and [`next_frame`](FrameDecoder::next_frame)
    /// has not been called yet).
    pub fn frame(&self) -> &[u8] {
        if self.ready {
            &self.body
        } else {
            &[]
        }
    }

    /// Consume the completed frame: reset to the next frame boundary,
    /// keeping the body buffer's capacity.
    pub fn next_frame(&mut self) {
        self.ready = false;
        self.len_got = 0;
        self.body_got = 0;
    }

    fn on_prefix_complete(&mut self) -> Result<(), FrameError> {
        let len = u32::from_be_bytes(self.len_buf) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge { len });
        }
        // resize within retained capacity: no allocation once the buffer
        // has grown to the connection's working frame size
        self.body.clear();
        self.body.resize(len, 0);
        self.body_got = 0;
        if len == 0 {
            self.ready = true;
        }
        Ok(())
    }

    /// Pull as many bytes as `r` will give without blocking, directly
    /// into the internal buffers.
    ///
    /// # Errors
    /// [`FrameError::TooLarge`] on a hostile prefix, [`FrameError::Truncated`]
    /// on EOF mid-frame, [`FrameError::Io`] on transport failure.
    pub fn read_from(&mut self, r: &mut impl Read) -> Result<FrameEvent, FrameError> {
        loop {
            if self.ready {
                return Ok(FrameEvent::Frame);
            }
            let (buf, want): (&mut [u8], usize) = if self.len_got < 4 {
                (&mut self.len_buf[self.len_got..], 4)
            } else {
                let want = self.body.len();
                (&mut self.body[self.body_got..], want)
            };
            match r.read(buf) {
                Ok(0) => {
                    return if self.mid_frame() {
                        let (have, want) = if self.len_got < 4 {
                            (self.len_got, 4)
                        } else {
                            (self.body_got, want)
                        };
                        Err(FrameError::Truncated { have, want })
                    } else {
                        Ok(FrameEvent::Closed)
                    };
                }
                Ok(n) if self.len_got < 4 => {
                    self.len_got += n;
                    if self.len_got == 4 {
                        self.on_prefix_complete()?;
                    }
                }
                Ok(n) => {
                    self.body_got += n;
                    if self.body_got == self.body.len() {
                        self.ready = true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(FrameEvent::Blocked)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Feed a byte slice instead of a reader (property tests): returns
    /// `(bytes consumed, frame complete)`. End of slice is not EOF —
    /// feed the next chunk to continue.
    ///
    /// # Errors
    /// [`FrameError::TooLarge`] on a hostile prefix.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(usize, bool), FrameError> {
        let mut used = 0;
        while used < chunk.len() && !self.ready {
            if self.len_got < 4 {
                let n = (4 - self.len_got).min(chunk.len() - used);
                self.len_buf[self.len_got..self.len_got + n]
                    .copy_from_slice(&chunk[used..used + n]);
                self.len_got += n;
                used += n;
                if self.len_got == 4 {
                    self.on_prefix_complete()?;
                }
            } else {
                let n = (self.body.len() - self.body_got).min(chunk.len() - used);
                self.body[self.body_got..self.body_got + n].copy_from_slice(&chunk[used..used + n]);
                self.body_got += n;
                used += n;
                if self.body_got == self.body.len() {
                    self.ready = true;
                }
            }
        }
        Ok((used, self.ready))
    }
}

/// Write one length-prefixed frame.
///
/// # Errors
/// Underlying I/O failures, or a body over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds cap", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed between requests).
///
/// # Errors
/// Underlying I/O failures, mid-frame EOF, or a length over
/// [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds cap"),
        ));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dummy_measurement;
    use epic_driver::OptLevel;

    fn sample_spec() -> JobSpec {
        let w = epic_workloads::by_name("gzip_mc").unwrap();
        JobSpec::for_workload(&w, OptLevel::IlpCs)
    }

    #[test]
    fn requests_round_trip() {
        let key = sample_spec().job_key();
        let mut zoo_spec = sample_spec();
        zoo_spec.predictor = PredictorSpec::Tage;
        let reqs = [
            Request::Submit {
                spec: sample_spec(),
                prio: Priority::High,
                deadline_ms: 1500,
            },
            Request::Submit {
                spec: zoo_spec,
                prio: Priority::Normal,
                deadline_ms: 0,
            },
            Request::Status(key),
            Request::Result(key),
            Request::Stats,
            Request::Metrics,
            Request::Put {
                key,
                measurement: Box::new(dummy_measurement(5)),
            },
            Request::Keys,
            Request::Admin(AdminRequest::FleetStatus),
            Request::Admin(AdminRequest::Join {
                id: 4,
                addr: "127.0.0.1:9944".to_string(),
            }),
            Request::Admin(AdminRequest::Drain { id: 1 }),
            Request::Shutdown,
        ];
        for r in &reqs {
            let back = decode_request(&encode_request(r)).unwrap();
            // encoding is deterministic, so byte equality of re-encoded
            // requests is semantic equality
            assert_eq!(encode_request(&back), encode_request(r));
        }
    }

    #[test]
    fn decoded_spec_preserves_the_job_key() {
        let spec = sample_spec();
        let r = Request::Submit {
            spec: spec.clone(),
            prio: Priority::Normal,
            deadline_ms: 0,
        };
        match decode_request(&encode_request(&r)).unwrap() {
            Request::Submit { spec: got, .. } => {
                assert_eq!(got.job_key(), spec.job_key());
                assert_eq!(got.compile_key(), spec.compile_key());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let m = dummy_measurement(7);
        let resps = [
            Response::Err("boom".to_string()),
            Response::Done {
                key: sample_spec().job_key(),
                cache_hit: true,
                coalesced: false,
                measurement: Box::new(m.clone()),
            },
            Response::Status(JobStatus::InFlight),
            Response::Result(Some(Box::new(m))),
            Response::Result(None),
            Response::Stats(ServeStats {
                store: StoreStats {
                    hits: 3,
                    misses: 1,
                    ..Default::default()
                },
                sched: SchedStats {
                    submitted: 4,
                    shed: 2,
                    ..Default::default()
                },
                compiles: 9,
                sims: 11,
                shard_id: 2,
            }),
            Response::Metrics(MetricsSnapshot {
                entries: vec![
                    MetricEntry {
                        name: "serve.jobs_run".to_string(),
                        value: MetricValue::Counter(12),
                    },
                    MetricEntry {
                        name: "serve.queue_depth".to_string(),
                        value: MetricValue::Gauge(-1),
                    },
                    MetricEntry {
                        name: "serve.run_us".to_string(),
                        value: MetricValue::Histogram(HistogramSnapshot {
                            count: 3,
                            sum: 700,
                            buckets: vec![(7, 2), (9, 1)],
                        }),
                    },
                ],
            }),
            Response::Metrics(MetricsSnapshot::default()),
            Response::Busy { queue_depth: 17 },
            Response::PutOk,
            Response::Keys(vec![sample_spec().job_key(), CacheKey { hi: 1, lo: 2 }]),
            Response::Keys(Vec::new()),
            Response::Admin(AdminResponse::Status(FleetStatus {
                version: 3,
                shards: vec![ShardInfo {
                    id: 2,
                    addr: "127.0.0.1:7070".to_string(),
                    in_ring: true,
                    reachable: false,
                    keys: 17,
                }],
            })),
            Response::Admin(AdminResponse::Rebalanced(RebalanceReport {
                keys_moved: 12,
                bytes: 34_567,
                ms: 89,
                skipped: 1,
                ring: vec![2, 3, 4],
            })),
            Response::Admin(AdminResponse::Err("no such shard".to_string())),
            Response::ShutdownOk,
        ];
        for r in &resps {
            let back = decode_response(&encode_response(r)).unwrap();
            // encoding is deterministic, so byte equality of re-encoded
            // responses is semantic equality
            assert_eq!(encode_response(&back), encode_response(r));
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cur).unwrap().is_none());
        // a hostile length prefix must not allocate
        let huge = [(MAX_FRAME as u32 + 1).to_be_bytes().to_vec(), vec![0; 8]].concat();
        assert!(read_frame(&mut std::io::Cursor::new(huge)).is_err());
    }

    #[test]
    fn incremental_decoder_matches_blocking_reader_over_any_chunking() {
        let frames: Vec<Vec<u8>> = vec![
            encode_request(&Request::Stats),
            encode_request(&Request::Submit {
                spec: sample_spec(),
                prio: Priority::High,
                deadline_ms: 250,
            }),
            Vec::new(), // empty frame body
            encode_response(&Response::Done {
                key: sample_spec().job_key(),
                cache_hit: false,
                coalesced: true,
                measurement: Box::new(dummy_measurement(3)),
            }),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        // feed the whole stream in awkward chunk sizes; the decoder must
        // recover every frame byte-for-byte with one reused buffer
        for chunk in [1usize, 3, 7, 4096] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                let mut rest = piece;
                while !rest.is_empty() {
                    let (used, ready) = dec.feed(rest).unwrap();
                    rest = &rest[used..];
                    if ready {
                        got.push(dec.frame().to_vec());
                        dec.next_frame();
                    }
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert!(!dec.mid_frame(), "stream must end at a boundary");
        }
    }

    #[test]
    fn hostile_length_prefix_is_typed_and_allocates_nothing() {
        let mut dec = FrameDecoder::new();
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        match dec.feed(&huge) {
            Err(FrameError::TooLarge { len }) => assert_eq!(len, MAX_FRAME + 1),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // same through the reader-driven path
        let mut dec = FrameDecoder::new();
        let mut cur = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(
            dec.read_from(&mut cur),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn eof_mid_prefix_and_mid_body_are_truncation_not_clean_close() {
        // one full frame then a truncated length prefix
        let mut wire = Vec::new();
        write_frame(&mut wire, b"ok").unwrap();
        wire.extend_from_slice(&[0, 0]); // half a prefix
        let mut dec = FrameDecoder::new();
        let mut cur = std::io::Cursor::new(wire);
        assert_eq!(dec.read_from(&mut cur).unwrap(), FrameEvent::Frame);
        assert_eq!(dec.frame(), b"ok");
        dec.next_frame();
        match dec.read_from(&mut cur) {
            Err(FrameError::Truncated { have: 2, want: 4 }) => {}
            other => panic!("expected mid-prefix truncation, got {other:?}"),
        }
        // a prefix promising 10 bytes with only 3 delivered
        let mut wire = 10u32.to_be_bytes().to_vec();
        wire.extend_from_slice(b"abc");
        let mut dec = FrameDecoder::new();
        assert!(dec.feed(&wire).unwrap().0 == wire.len());
        assert!(dec.mid_frame());
        match dec.read_from(&mut std::io::Cursor::new(Vec::new())) {
            Err(FrameError::Truncated { have: 3, want: 10 }) => {}
            other => panic!("expected mid-body truncation, got {other:?}"),
        }
        // a clean close at a boundary is not an error
        let mut dec = FrameDecoder::new();
        assert_eq!(
            dec.read_from(&mut std::io::Cursor::new(Vec::new()))
                .unwrap(),
            FrameEvent::Closed
        );
    }

    #[test]
    fn garbage_verb_is_a_decode_error_after_clean_framing() {
        // framing succeeds (the frame is well-formed) but the body is a
        // garbage verb: the error is typed at the request layer, so the
        // server can answer it without dropping the connection
        let mut wire = Vec::new();
        write_frame(&mut wire, &[99, 1, 2, 3]).unwrap();
        let mut dec = FrameDecoder::new();
        let (used, ready) = dec.feed(&wire).unwrap();
        assert_eq!((used, ready), (wire.len(), true));
        assert!(decode_request(dec.frame()).is_err());
    }

    #[test]
    fn encode_into_reuses_buffers_and_matches_fresh_encodes() {
        let req = Request::Submit {
            spec: sample_spec(),
            prio: Priority::Low,
            deadline_ms: 9,
        };
        let resp = Response::Done {
            key: sample_spec().job_key(),
            cache_hit: true,
            coalesced: false,
            measurement: Box::new(dummy_measurement(11)),
        };
        let mut buf = Vec::new();
        encode_request_into(&req, &mut buf);
        assert_eq!(buf, encode_request(&req));
        let cap = buf.capacity();
        encode_request_into(&Request::Stats, &mut buf);
        assert_eq!(buf, encode_request(&Request::Stats));
        assert_eq!(buf.capacity(), cap, "re-encode must reuse the buffer");
        encode_response_into(&resp, &mut buf);
        assert_eq!(buf, encode_response(&resp));
    }

    #[test]
    fn golden_frames_pin_legacy_wire_bytes() {
        // Byte-for-byte encodings a pre-redesign client produced: the
        // verb table is the protocol, so these arrays must never change.
        for (verb, wire) in [
            (Verb::Submit, 1u8),
            (Verb::Status, 2),
            (Verb::Result, 3),
            (Verb::Stats, 4),
            (Verb::Shutdown, 5),
            (Verb::Metrics, 6),
            (Verb::Put, 7),
            (Verb::Keys, 8),
            (Verb::Admin, 9),
        ] {
            assert_eq!(verb.wire(), wire);
            assert_eq!(Verb::from_wire(wire), Some(verb));
        }
        for (tag, wire) in [
            (RespTag::Err, 0u8),
            (RespTag::Done, 1),
            (RespTag::Status, 2),
            (RespTag::Result, 3),
            (RespTag::Stats, 4),
            (RespTag::Busy, 5),
            (RespTag::ShutdownOk, 6),
            (RespTag::Metrics, 7),
            (RespTag::PutOk, 8),
            (RespTag::Keys, 9),
            (RespTag::Admin, 10),
        ] {
            assert_eq!(tag.wire(), wire);
            assert_eq!(RespTag::from_wire(wire), Some(tag));
        }
        // whole legacy frame bodies, handcrafted
        assert_eq!(encode_request(&Request::Stats), [4]);
        assert_eq!(encode_request(&Request::Metrics), [6]);
        assert_eq!(encode_request(&Request::Shutdown), [5]);
        let key = CacheKey {
            hi: 0x0102_0304_0506_0708,
            lo: 0x090a_0b0c_0d0e_0f10,
        };
        let mut legacy_status = vec![2u8];
        legacy_status.extend_from_slice(&key.hi.to_le_bytes());
        legacy_status.extend_from_slice(&key.lo.to_le_bytes());
        assert_eq!(encode_request(&Request::Status(key)), legacy_status);
        legacy_status[0] = 3;
        assert_eq!(encode_request(&Request::Result(key)), legacy_status);
        match decode_request(&legacy_status).unwrap() {
            Request::Result(k) => assert_eq!(k, key),
            other => panic!("wrong decode: {other:?}"),
        }
        assert_eq!(encode_response(&Response::PutOk), [8]);
        assert_eq!(encode_response(&Response::ShutdownOk), [6]);
        let mut legacy_busy = vec![5u8];
        legacy_busy.extend_from_slice(&17u64.to_le_bytes());
        assert_eq!(
            encode_response(&Response::Busy { queue_depth: 17 }),
            legacy_busy
        );
        let mut legacy_err = vec![0u8];
        legacy_err.extend_from_slice(&4u64.to_le_bytes());
        legacy_err.extend_from_slice(b"boom");
        assert_eq!(
            encode_response(&Response::Err("boom".to_string())),
            legacy_err
        );
        assert!(matches!(
            decode_response(&legacy_err).unwrap(),
            Response::Err(ref m) if m == "boom"
        ));
    }

    #[test]
    fn admin_frames_are_versioned_and_reject_future_versions() {
        let body = encode_request(&Request::Admin(AdminRequest::Drain { id: 3 }));
        assert_eq!(body[0], Verb::Admin.wire());
        assert_eq!(body[1], ADMIN_VERSION, "payload must open with version");
        let mut future = body.clone();
        future[1] = ADMIN_VERSION + 1;
        let err = decode_request(&future).unwrap_err();
        assert!(
            err.0.contains("admin version"),
            "got wrong error: {}",
            err.0
        );
        let resp = encode_response(&Response::Admin(AdminResponse::Err("nope".to_string())));
        assert_eq!(resp[0], RespTag::Admin.wire());
        assert_eq!(resp[1], ADMIN_VERSION);
        let mut future = resp.clone();
        future[1] = 0;
        assert!(decode_response(&future).is_err());
    }

    #[test]
    fn corrupt_bodies_are_rejected() {
        let good = encode_request(&Request::Stats);
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[77]).is_err());
    }
}
