//! The content-addressed artifact store: [`CacheKey`] → measurement,
//! with an in-memory index in front of an optional persistent cache
//! directory, plus a process-local machine-code cache so jobs differing
//! only in simulation parameters share one compilation.
//!
//! Layout on disk: `<dir>/<first two hex digits>/<32-hex-key>.epsv`,
//! each file a versioned [`crate::codec`] blob written via a temp file +
//! atomic rename (a torn write can never be read back as a result — a
//! corrupt or version-skewed file is treated as a miss and removed).
//! Machine programs stay in memory only: they are cheap to rebuild from
//! a cache-resident measurement's compile half and enormous to
//! serialize, and nothing downstream of a cache hit needs them.

use crate::codec;
use crate::key::{CacheKey, JobSpec};
use epic_driver::{CompileOptions, CompiledStats, Measurement, MeasurementCache};
use epic_mach::MachProgram;
use epic_sim::SimOptions;
use epic_workloads::Workload;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A compiled program plus its static statistics — the reusable half of
/// a job, shared across simulation-parameter variants.
pub struct CompiledArtifact {
    /// The machine program.
    pub mach: MachProgram,
    /// Static compilation statistics.
    pub stats: CompiledStats,
}

/// Store statistics snapshot (monotonic counters since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// In-memory entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Hits served by reading the cache directory (subset of `hits`).
    pub disk_hits: u64,
    /// Measurements persisted to the cache directory.
    pub disk_writes: u64,
    /// Compile-artifact reuses (sim-only jobs).
    pub mach_hits: u64,
    /// Current in-memory measurement count.
    pub mem_entries: u64,
}

#[derive(Default)]
struct MemIndex {
    map: HashMap<CacheKey, Arc<Measurement>>,
    fifo: VecDeque<CacheKey>,
}

struct MachIndex {
    map: HashMap<CacheKey, Arc<CompiledArtifact>>,
    fifo: VecDeque<CacheKey>,
}

/// The artifact store.
pub struct ArtifactStore {
    dir: Option<PathBuf>,
    mem: Mutex<MemIndex>,
    mem_cap: usize,
    mach: Mutex<MachIndex>,
    mach_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
    mach_hits: AtomicU64,
}

/// Default bound on in-memory measurements (a full 12×4 matrix is 48;
/// this holds several experiment variants).
pub const DEFAULT_MEM_CAP: usize = 512;

/// Default bound on in-memory compiled programs (these hold full IR and
/// machine code, so the cap is much tighter).
pub const DEFAULT_MACH_CAP: usize = 64;

impl ArtifactStore {
    /// Memory-only store.
    pub fn in_memory() -> ArtifactStore {
        ArtifactStore::with_caps(None, DEFAULT_MEM_CAP, DEFAULT_MACH_CAP)
    }

    /// Store persisted under `dir` (created on first write).
    pub fn persistent(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore::with_caps(Some(dir.into()), DEFAULT_MEM_CAP, DEFAULT_MACH_CAP)
    }

    /// Fully parameterized constructor (caps of 0 mean "no entries kept
    /// in memory", which still works — every hit comes from disk).
    pub fn with_caps(dir: Option<PathBuf>, mem_cap: usize, mach_cap: usize) -> ArtifactStore {
        ArtifactStore {
            dir,
            mem: Mutex::new(MemIndex::default()),
            mem_cap,
            mach: Mutex::new(MachIndex {
                map: HashMap::new(),
                fifo: VecDeque::new(),
            }),
            mach_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            mach_hits: AtomicU64::new(0),
        }
    }

    /// The cache directory, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn path_for(&self, key: CacheKey) -> Option<PathBuf> {
        let hex = key.hex();
        self.dir
            .as_ref()
            .map(|d| d.join(&hex[..2]).join(format!("{hex}.epsv")))
    }

    /// A stored measurement for `key`, consulting memory then disk.
    /// Counts a hit or a miss.
    pub fn lookup(&self, key: CacheKey) -> Option<Arc<Measurement>> {
        if let Some(m) = self.mem.lock().expect("store index").map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(m));
        }
        if let Some(path) = self.path_for(key) {
            if let Some(m) = self.load_file(&path) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let m = Arc::new(m);
                self.remember(key, Arc::clone(&m));
                return Some(m);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn load_file(&self, path: &Path) -> Option<Measurement> {
        let bytes = std::fs::read(path).ok()?;
        match codec::decode_measurement(&bytes) {
            Ok(m) => Some(m),
            Err(_) => {
                // corrupt or version-skewed: a miss, and never again
                let _ = std::fs::remove_file(path);
                None
            }
        }
    }

    fn remember(&self, key: CacheKey, m: Arc<Measurement>) {
        let mut idx = self.mem.lock().expect("store index");
        if idx.map.insert(key, m).is_none() {
            idx.fifo.push_back(key);
        }
        while idx.map.len() > self.mem_cap {
            let Some(old) = idx.fifo.pop_front() else {
                break;
            };
            if idx.map.remove(&old).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Store a measurement under `key` (memory, and disk when
    /// persistent). Returns the shared handle.
    pub fn insert(&self, key: CacheKey, m: Measurement) -> Arc<Measurement> {
        let arc = Arc::new(m);
        self.remember(key, Arc::clone(&arc));
        if let Some(path) = self.path_for(key) {
            if self.write_file(&path, &arc).is_ok() {
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        arc
    }

    fn write_file(&self, path: &Path, m: &Measurement) -> std::io::Result<()> {
        let parent = path.parent().expect("sharded path has a parent");
        std::fs::create_dir_all(parent)?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, codec::encode_measurement(m))?;
        std::fs::rename(&tmp, path)
    }

    /// A cached compiled artifact for a compile key.
    pub fn lookup_mach(&self, key: CacheKey) -> Option<Arc<CompiledArtifact>> {
        let idx = self.mach.lock().expect("mach index");
        let hit = idx.map.get(&key).map(Arc::clone);
        if hit.is_some() {
            self.mach_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Cache a compiled artifact (memory only, FIFO-bounded).
    pub fn insert_mach(&self, key: CacheKey, a: CompiledArtifact) -> Arc<CompiledArtifact> {
        let arc = Arc::new(a);
        let mut idx = self.mach.lock().expect("mach index");
        if idx.map.insert(key, Arc::clone(&arc)).is_none() {
            idx.fifo.push_back(key);
        }
        while idx.map.len() > self.mach_cap.max(1) {
            let Some(old) = idx.fifo.pop_front() else {
                break;
            };
            if idx.map.remove(&old).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        arc
    }

    /// Every key this store holds a measurement for — the in-memory
    /// index unioned with a scan of the cache directory (a disk entry
    /// may have been evicted from memory but still serves lookups).
    /// Sorted and deduplicated, so the census is deterministic; the
    /// rebalance engine diffs it against ring placements.
    pub fn keys(&self) -> Vec<CacheKey> {
        let mut keys: Vec<CacheKey> = self
            .mem
            .lock()
            .expect("store index")
            .map
            .keys()
            .copied()
            .collect();
        if let Some(dir) = &self.dir {
            for shard_dir in std::fs::read_dir(dir).into_iter().flatten().flatten() {
                for file in std::fs::read_dir(shard_dir.path())
                    .into_iter()
                    .flatten()
                    .flatten()
                {
                    let name = file.file_name();
                    let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".epsv")) else {
                        continue;
                    };
                    if let Some(k) = CacheKey::from_hex(stem) {
                        keys.push(k);
                    }
                }
            }
        }
        keys.sort_unstable_by_key(|k| (k.hi, k.lo));
        keys.dedup();
        keys
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            mach_hits: self.mach_hits.load(Ordering::Relaxed),
            mem_entries: self.mem.lock().expect("store index").map.len() as u64,
        }
    }
}

/// The driver-side cache hook: a cell is served from the store when its
/// options are canonical ([`JobSpec::cacheable`]); everything else
/// bypasses the cache entirely.
impl MeasurementCache for ArtifactStore {
    fn lookup(
        &self,
        w: &Workload,
        copts: &CompileOptions,
        sopts: &SimOptions,
    ) -> Option<Measurement> {
        if !JobSpec::cacheable(copts, sopts) {
            return None;
        }
        let spec = JobSpec::from_options(w.source, &w.train_args, &w.ref_args, copts, sopts);
        ArtifactStore::lookup(self, spec.job_key()).map(|m| (*m).clone())
    }

    fn store(&self, w: &Workload, copts: &CompileOptions, sopts: &SimOptions, m: &Measurement) {
        if !JobSpec::cacheable(copts, sopts) {
            return;
        }
        let spec = JobSpec::from_options(w.source, &w.train_args, &w.ref_args, copts, sopts);
        self.insert(spec.job_key(), m.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::digest;
    use crate::key::hash_bytes;
    use crate::testutil::dummy_measurement;

    fn k(n: u64) -> CacheKey {
        hash_bytes(&n.to_le_bytes())
    }

    #[test]
    fn memory_store_hit_miss_and_eviction() {
        let s = ArtifactStore::with_caps(None, 2, 4);
        assert!(s.lookup(k(1)).is_none());
        s.insert(k(1), dummy_measurement(1));
        s.insert(k(2), dummy_measurement(2));
        let hit = s.lookup(k(1)).expect("hit");
        assert_eq!(digest(&hit), digest(&dummy_measurement(1)));
        // third insert evicts the oldest (FIFO)
        s.insert(k(3), dummy_measurement(3));
        assert!(s.lookup(k(1)).is_none(), "oldest entry evicted");
        assert!(s.lookup(k(3)).is_some());
        let st = s.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.mem_entries, 2);
        assert!(st.hits >= 2 && st.misses >= 2);
        assert_eq!(st.disk_writes, 0);
    }

    #[test]
    fn persistent_store_survives_a_fresh_index() {
        let dir = std::env::temp_dir().join(format!("epic-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = k(42);
        let m = dummy_measurement(42);
        {
            let s = ArtifactStore::persistent(&dir);
            s.insert(key, m.clone());
            assert_eq!(s.stats().disk_writes, 1);
        }
        // a brand-new store (fresh process in spirit) reads it back
        let s2 = ArtifactStore::persistent(&dir);
        let back = s2.lookup(key).expect("disk hit");
        assert_eq!(digest(&back), digest(&m));
        let st = s2.stats();
        assert_eq!((st.hits, st.disk_hits), (1, 1));
        // corrupt file is a miss and is removed
        let path = s2.path_for(key).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        let s3 = ArtifactStore::persistent(&dir);
        assert!(s3.lookup(key).is_none());
        assert!(!path.exists(), "corrupt entry removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_census_unions_memory_and_disk() {
        // memory-only: exactly the resident keys
        let s = ArtifactStore::with_caps(None, 8, 4);
        s.insert(k(1), dummy_measurement(1));
        s.insert(k(2), dummy_measurement(2));
        let mut expect = vec![k(1), k(2)];
        expect.sort_unstable_by_key(|k| (k.hi, k.lo));
        assert_eq!(s.keys(), expect);

        // persistent with a tiny memory cap: an evicted entry lives on
        // disk only, and the census must still report it
        let dir = std::env::temp_dir().join(format!("epic-serve-keys-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ArtifactStore::with_caps(Some(dir.clone()), 1, 4);
        s.insert(k(1), dummy_measurement(1));
        s.insert(k(2), dummy_measurement(2)); // evicts k(1) from memory
        assert_eq!(s.keys(), expect, "disk-only entry missing from census");
        // junk files in the tree are skipped, not misparsed
        std::fs::write(dir.join("zz-not-a-shard"), b"junk").ok();
        assert_eq!(s.keys(), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn driver_cache_hook_respects_cacheability() {
        let s = ArtifactStore::in_memory();
        let w = epic_workloads::by_name("mcf_mc").unwrap();
        let copts = CompileOptions::for_level(epic_driver::OptLevel::Gcc);
        let sopts = SimOptions::default();
        let m = dummy_measurement(9);
        MeasurementCache::store(&s, &w, &copts, &sopts, &m);
        let back = MeasurementCache::lookup(&s, &w, &copts, &sopts).expect("cached");
        assert_eq!(digest(&back), digest(&m));
        // non-canonical options never hit
        let mut bugged = copts.clone();
        bugged.inject_bug = true;
        assert!(MeasurementCache::lookup(&s, &w, &bugged, &sopts).is_none());
        MeasurementCache::store(&s, &w, &bugged, &sopts, &m); // silently skipped
        assert!(MeasurementCache::lookup(&s, &w, &bugged, &sopts).is_none());
    }
}
