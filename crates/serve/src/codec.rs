//! Binary serialization of a full [`Measurement`] — the artifact store's
//! on-disk format and the wire format of the `epicd` protocol.
//!
//! Std-only and hand-rolled (the PR 1 rule bans serde): fixed-width
//! little-endian scalars, length-prefixed sequences, a magic/version
//! header, and a strict decoder that treats any trailing or missing
//! bytes as corruption. The encoding is deterministic — equal
//! measurements encode to equal bytes — which is what lets
//! [`digest`] stand in for bit-identity comparisons across processes.

use crate::key::{self, hash_bytes, CacheKey};
use epic_driver::{CompiledStats, Measurement, PassRecord, PassTimeline};
use epic_sim::{
    Counters, CycleAccounting, FuncMatrix, SampleInfo, SimResult, NUM_CATEGORIES, NUM_COUNTERS,
};
use std::time::Duration;

/// On-disk / on-wire format version. Bump on any layout change.
/// (2: sampled-simulation metadata appended to the sim result.)
pub const FORMAT_VERSION: u32 = 2;

/// Magic prefix of every serialized measurement.
pub const MAGIC: &[u8; 4] = b"EPSV";

/// Every pass name the driver can emit, so decoded [`PassRecord`]s get
/// their `&'static str` back without leaking. An unknown name decodes as
/// `"?"` — only reachable if a cache written by a *newer* build is read
/// without the format version having been bumped, which the version
/// check already rejects.
const PASS_NAMES: &[&str] = &[
    "profile",
    "promote",
    "inline",
    "classical",
    "bug-inject",
    "alias",
    "ilp-transform",
    "data-spec",
    "verify",
    "schedule",
    "mach-check",
];

fn intern_pass_name(name: &str) -> &'static str {
    PASS_NAMES
        .iter()
        .find(|&&n| n == name)
        .copied()
        .unwrap_or("?")
}

/// A decode failure (corrupt or version-skewed bytes).
#[derive(Clone, Debug, PartialEq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

/// Byte writer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Empty writer.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append a length-prefixed `i64` slice.
    pub fn i64s(&mut self, v: &[i64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.i64(x);
        }
    }

    /// Append a length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    /// The accumulated bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// A writer over a caller-supplied buffer: the buffer is cleared but
    /// its capacity is kept, so encoding into a long-lived scratch `Vec`
    /// allocates nothing once the buffer has grown to working size (the
    /// event loop's per-connection write path relies on this).
    pub fn with_buf(mut buf: Vec<u8>) -> Enc {
        buf.clear();
        Enc { buf }
    }

    /// Append a length-prefixed sub-encoding without materializing it in
    /// a separate allocation: writes a `u64` length placeholder, runs
    /// `f` in place, then backpatches the placeholder. Byte-compatible
    /// with [`bytes`](Enc::bytes) of the same payload.
    pub fn nested(&mut self, f: impl FnOnce(&mut Enc)) {
        let at = self.buf.len();
        self.u64(0);
        f(self);
        let len = (self.buf.len() - at - 8) as u64;
        self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }
}

/// Strict byte reader over an encoded buffer.
pub struct Dec<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Dec<'a> {
    /// Reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { b: bytes, i: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.b.len() - self.i
    }

    /// Fail unless every byte was consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            err(format!("{} trailing bytes", self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return err(format!("truncated: wanted {n}, have {}", self.remaining()));
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (any nonzero byte is true).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `usize` (bounded by the buffer size to fail fast on
    /// corrupt lengths).
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        if v > self.b.len() as u64 {
            return err(format!("implausible length {v}"));
        }
        Ok(v as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError("invalid UTF-8".into()))
    }

    /// Read a length-prefixed `i64` slice.
    pub fn i64s(&mut self) -> Result<Vec<i64>, CodecError> {
        let n = self.usize()?;
        (0..n).map(|_| self.i64()).collect()
    }

    /// Read a length-prefixed `u64` slice.
    pub fn u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.usize()?;
        (0..n).map(|_| self.u64()).collect()
    }
}

fn enc_ilp(e: &mut Enc, s: &epic_core::IlpStats) {
    e.usize(s.loops_peeled);
    e.usize(s.regions_converted);
    e.usize(s.branches_removed);
    e.usize(s.traces);
    e.usize(s.tail_dups);
    e.usize(s.loops_unrolled);
    e.usize(s.dup_ops);
    e.usize(s.loads_promoted);
    e.usize(s.chks_inserted);
    e.usize(s.chains_reassociated);
    e.usize(s.loads_advanced);
    e.usize(s.ops_before);
    e.usize(s.ops_after);
}

fn dec_ilp(d: &mut Dec) -> Result<epic_core::IlpStats, CodecError> {
    Ok(epic_core::IlpStats {
        loops_peeled: d.usize()?,
        regions_converted: d.usize()?,
        branches_removed: d.usize()?,
        traces: d.usize()?,
        tail_dups: d.usize()?,
        loops_unrolled: d.usize()?,
        dup_ops: d.usize()?,
        loads_promoted: d.usize()?,
        chks_inserted: d.usize()?,
        chains_reassociated: d.usize()?,
        loads_advanced: d.usize()?,
        ops_before: d.usize()?,
        ops_after: d.usize()?,
    })
}

fn enc_counters(e: &mut Enc, c: &Counters) {
    for v in c.to_array() {
        e.u64(v);
    }
}

fn dec_counters(d: &mut Dec) -> Result<Counters, CodecError> {
    let mut a = [0u64; NUM_COUNTERS];
    for v in &mut a {
        *v = d.u64()?;
    }
    Ok(Counters::from_array(a))
}

fn enc_sample(e: &mut Enc, s: &Option<SampleInfo>) {
    match s {
        None => e.bool(false),
        Some(s) => {
            e.bool(true);
            e.u64(s.interval_len);
            e.usize(s.intervals);
            e.usize(s.clusters);
            e.u64(s.total_ops);
            e.u64(s.sampled_ops);
            e.f64(s.est_error);
            e.bool(s.fallback);
            e.usize(s.phases.len());
            for &p in &s.phases {
                e.u32(p);
            }
        }
    }
}

fn dec_sample(d: &mut Dec) -> Result<Option<SampleInfo>, CodecError> {
    if !d.bool()? {
        return Ok(None);
    }
    Ok(Some(SampleInfo {
        interval_len: d.u64()?,
        intervals: d.usize()?,
        clusters: d.usize()?,
        total_ops: d.u64()?,
        sampled_ops: d.u64()?,
        est_error: d.f64()?,
        fallback: d.bool()?,
        phases: {
            let n = d.usize()?;
            (0..n).map(|_| d.u32()).collect::<Result<Vec<_>, _>>()?
        },
    }))
}

fn encode_into(e: &mut Enc, m: &Measurement, zero_wall: bool) {
    e.u8(key::level_tag(m.level));
    let c = &m.compiled;
    e.f64(c.plan.planned_cycles);
    e.f64(c.plan.planned_ops);
    e.u32(c.plan.max_window);
    e.usize(c.plan.spills);
    enc_ilp(e, &c.ilp);
    e.usize(c.inlined);
    e.usize(c.promoted);
    e.u64(c.code_bytes);
    e.usize(c.static_ops.0);
    e.usize(c.static_ops.1);
    e.usize(c.frontend_ops);
    e.usize(c.func_names.len());
    for n in &c.func_names {
        e.str(n);
    }
    e.usize(c.pass_timeline.passes.len());
    for p in &c.pass_timeline.passes {
        e.str(p.name);
        e.u64(if zero_wall {
            0
        } else {
            p.wall.as_nanos() as u64
        });
        e.usize(p.ops_before);
        e.usize(p.ops_after);
        e.usize(p.blocks_before);
        e.usize(p.blocks_after);
    }
    let s = &m.sim;
    e.u64s(&s.output);
    e.u64(s.checksum);
    e.u64(s.ret);
    e.u64(s.cycles);
    for &v in s.acct.cells() {
        e.u64(v);
    }
    enc_counters(e, &s.counters);
    e.usize(s.func_matrix.num_funcs());
    for row in s.func_matrix.rows() {
        for &v in row {
            e.u64(v);
        }
    }
    enc_sample(e, &s.sample);
}

/// Serialize a measurement (header + body). The ring trace, if any, is
/// deliberately dropped: cached jobs always run untraced.
pub fn encode_measurement(m: &Measurement) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(MAGIC);
    e.u32(FORMAT_VERSION);
    encode_into(&mut e, m, false);
    e.finish()
}

/// Deserialize a measurement encoded by [`encode_measurement`].
///
/// # Errors
/// Any truncation, trailing bytes, bad magic, or version skew.
pub fn decode_measurement(bytes: &[u8]) -> Result<Measurement, CodecError> {
    let mut d = Dec::new(bytes);
    if d.take(4)? != MAGIC {
        return err("bad magic");
    }
    let v = d.u32()?;
    if v != FORMAT_VERSION {
        return err(format!("format version {v}, expected {FORMAT_VERSION}"));
    }
    let m = decode_measurement_body(&mut d)?;
    d.expect_end()?;
    Ok(m)
}

/// Decode the body of a measurement (no header) — used by the wire
/// protocol, whose frames carry their own version.
pub fn decode_measurement_body(d: &mut Dec) -> Result<Measurement, CodecError> {
    let level = key::level_from_tag(d.u8()?).ok_or(CodecError("bad level tag".into()))?;
    let plan = epic_sched::PlanStats {
        planned_cycles: d.f64()?,
        planned_ops: d.f64()?,
        max_window: d.u32()?,
        spills: d.usize()?,
    };
    let ilp = dec_ilp(d)?;
    let inlined = d.usize()?;
    let promoted = d.usize()?;
    let code_bytes = d.u64()?;
    let static_ops = (d.usize()?, d.usize()?);
    let frontend_ops = d.usize()?;
    let nf = d.usize()?;
    let func_names = (0..nf).map(|_| d.str()).collect::<Result<Vec<_>, _>>()?;
    let np = d.usize()?;
    let mut passes = Vec::with_capacity(np);
    for _ in 0..np {
        let name = intern_pass_name(&d.str()?);
        passes.push(PassRecord {
            name,
            wall: Duration::from_nanos(d.u64()?),
            ops_before: d.usize()?,
            ops_after: d.usize()?,
            blocks_before: d.usize()?,
            blocks_after: d.usize()?,
        });
    }
    let output = d.u64s()?;
    let checksum = d.u64()?;
    let ret = d.u64()?;
    let cycles = d.u64()?;
    let mut cells = [0u64; NUM_CATEGORIES];
    for c in &mut cells {
        *c = d.u64()?;
    }
    let counters = dec_counters(d)?;
    let nrows = d.usize()?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = [0u64; NUM_CATEGORIES];
        for c in &mut row {
            *c = d.u64()?;
        }
        rows.push(row);
    }
    let sample = dec_sample(d)?;
    Ok(Measurement {
        level,
        compiled: CompiledStats {
            plan,
            ilp,
            inlined,
            promoted,
            code_bytes,
            static_ops,
            frontend_ops,
            func_names,
            pass_timeline: PassTimeline { passes },
        },
        sim: SimResult {
            output,
            checksum,
            ret,
            cycles,
            acct: CycleAccounting::from_cells(cells),
            counters,
            func_matrix: FuncMatrix::from_rows(rows),
            trace: Vec::new(),
            sample,
        },
    })
}

/// Encode the body of a measurement (no header) into an existing writer
/// — the wire-protocol counterpart of [`decode_measurement_body`].
pub fn encode_measurement_body(e: &mut Enc, m: &Measurement) {
    encode_into(e, m, false);
}

/// Append a length-prefixed full measurement (header included) in place:
/// byte-identical to `e.bytes(&encode_measurement(m))` without the
/// intermediate allocation. The decode counterpart is `d.bytes()` +
/// [`decode_measurement`].
pub fn encode_measurement_framed(e: &mut Enc, m: &Measurement) {
    e.nested(|e| {
        e.buf.extend_from_slice(MAGIC);
        e.u32(FORMAT_VERSION);
        encode_into(e, m, false);
    });
}

/// A deterministic content digest of everything reproducible in a
/// measurement: pass wall times (the only nondeterministic field) are
/// zeroed before hashing, so two runs of the same job — fresh, cached,
/// served, local — digest identically exactly when they are
/// bit-identical in cycles, all nine categories, every counter, the
/// per-function matrix, the output stream, and all static statistics.
pub fn digest(m: &Measurement) -> CacheKey {
    let mut e = Enc::new();
    encode_into(&mut e, m, true);
    hash_bytes(&e.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dummy_measurement;

    #[test]
    fn measurement_round_trips_bit_identically() {
        let m = dummy_measurement(12345);
        let bytes = encode_measurement(&m);
        let back = decode_measurement(&bytes).unwrap();
        assert_eq!(digest(&m), digest(&back));
        assert_eq!(m.sim.output, back.sim.output);
        assert_eq!(m.sim.cycles, back.sim.cycles);
        assert_eq!(m.sim.acct, back.sim.acct);
        assert_eq!(m.sim.counters, back.sim.counters);
        assert_eq!(m.sim.func_matrix, back.sim.func_matrix);
        assert_eq!(m.compiled.func_names, back.compiled.func_names);
        assert_eq!(m.compiled.code_bytes, back.compiled.code_bytes);
        assert_eq!(
            m.compiled.pass_timeline.passes.len(),
            back.compiled.pass_timeline.passes.len()
        );
        // the full re-encoding is byte-identical too
        assert_eq!(bytes, encode_measurement(&back));
    }

    #[test]
    fn corruption_is_rejected_not_misread() {
        let m = dummy_measurement(7);
        let bytes = encode_measurement(&m);
        assert!(decode_measurement(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_measurement(&[]).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert!(decode_measurement(&wrong_magic).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] ^= 0xff;
        assert!(decode_measurement(&wrong_version).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_measurement(&trailing).is_err());
    }

    #[test]
    fn framed_encoding_matches_bytes_of_encode_measurement() {
        let m = dummy_measurement(42);
        let mut reference = Enc::new();
        reference.bytes(&encode_measurement(&m));
        let mut framed = Enc::new();
        encode_measurement_framed(&mut framed, &m);
        assert_eq!(reference.finish(), framed.finish());
    }

    #[test]
    fn with_buf_reuses_capacity_and_nested_backpatches() {
        let mut e = Enc::with_buf(Vec::with_capacity(256));
        e.nested(|e| {
            e.str("abc");
            e.u8(7);
        });
        let bytes = e.finish();
        let cap = bytes.capacity();
        assert_eq!(cap, 256, "with_buf must keep the caller's capacity");
        let mut d = Dec::new(&bytes);
        let inner = d.bytes().unwrap().to_vec();
        d.expect_end().unwrap();
        let mut id = Dec::new(&inner);
        assert_eq!(id.str().unwrap(), "abc");
        assert_eq!(id.u8().unwrap(), 7);
        // a second encode into the same buffer starts clean
        let mut e = Enc::with_buf(bytes);
        e.u8(1);
        let again = e.finish();
        assert_eq!(again, vec![1]);
        assert_eq!(again.capacity(), cap);
    }

    #[test]
    fn digest_ignores_wall_time_but_not_results() {
        let mut a = dummy_measurement(1);
        let mut b = dummy_measurement(1);
        if let Some(p) = b.compiled.pass_timeline.passes.first_mut() {
            p.wall = Duration::from_millis(999);
        }
        assert_eq!(digest(&a), digest(&b), "wall time must not affect digest");
        a.sim.cycles += 1;
        assert_ne!(digest(&a), digest(&b), "cycles must affect digest");
        let mut c = dummy_measurement(1);
        c.sim.counters.l3_misses += 1;
        assert_ne!(digest(&b), digest(&c), "counters must affect digest");
    }
}
