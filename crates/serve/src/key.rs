//! Content addressing: a canonical byte serialization of everything
//! that determines a compile/sim job's result, hashed into a stable
//! 128-bit [`CacheKey`].
//!
//! Stability is the whole point: the key must be identical across runs,
//! processes, and thread counts, so `std::hash::DefaultHasher` (whose
//! seed is per-process) is off the table. We use two independent
//! FNV-1a-64 lanes over the same canonical bytes — one plain, one over a
//! byte-wise involution — giving a 128-bit key whose collision
//! probability over any realistic experiment matrix is negligible.
//!
//! The canonical encoding is deliberately dumb: every field of the job,
//! in declared order, length-prefixed where variable-sized, with a
//! version tag on top. Any change to the encoding (or to what a job
//! means) must bump [`CANON_VERSION`], which invalidates every existing
//! cache entry rather than silently serving stale results.

use epic_driver::{CompileOptions, OptLevel, ProfileInput};
use epic_mach::MachineConfig;
use epic_sim::{PredictorSpec, SamplePolicy, SimOptions, SpecModel, Warmup};
use epic_workloads::Workload;

/// Version tag mixed into every canonical serialization. Bump on any
/// change to [`JobSpec`]'s meaning or encoding.
/// (2: sampling policy joins the simulation half of the job. The
/// predictor spec joined later as a *trailing optional* field — elided
/// when default — so default-predictor keys are unchanged and no bump
/// was needed; see [`JobSpec::job_canon`].)
pub const CANON_VERSION: u32 = 2;

/// A stable 128-bit content hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CacheKey {
    /// Plain FNV-1a-64 lane.
    pub hi: u64,
    /// Complemented-byte FNV-1a-64 lane.
    pub lo: u64,
}

impl CacheKey {
    /// 32-hex-digit rendering (the on-disk file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse the [`hex`](CacheKey::hex) rendering back.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey { hi, lo })
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash canonical bytes into a [`CacheKey`].
pub fn hash_bytes(bytes: &[u8]) -> CacheKey {
    let (mut hi, mut lo) = (FNV_OFFSET, FNV_OFFSET ^ 0x5a5a_5a5a_5a5a_5a5a);
    for &b in bytes {
        hi = (hi ^ b as u64).wrapping_mul(FNV_PRIME);
        lo = (lo ^ (b ^ 0xa5) as u64).wrapping_mul(FNV_PRIME);
    }
    CacheKey { hi, lo }
}

/// Canonical byte writer: fixed-width little-endian scalars,
/// length-prefixed byte strings. No self-describing framing — the
/// reader is always the same code at the same version.
#[derive(Default)]
pub struct Canon {
    buf: Vec<u8>,
}

impl Canon {
    /// Fresh writer, already tagged with [`CANON_VERSION`].
    pub fn new() -> Canon {
        let mut c = Canon { buf: Vec::new() };
        c.u32(CANON_VERSION);
        c
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append a length-prefixed `i64` slice.
    pub fn i64s(&mut self, v: &[i64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.i64(x);
        }
    }

    /// The accumulated canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Hash the accumulated bytes.
    pub fn key(self) -> CacheKey {
        hash_bytes(&self.buf)
    }
}

/// Stable one-byte encoding of an [`OptLevel`] (Table 1 order).
pub fn level_tag(level: OptLevel) -> u8 {
    match level {
        OptLevel::Gcc => 0,
        OptLevel::ONs => 1,
        OptLevel::IlpNs => 2,
        OptLevel::IlpCs => 3,
    }
}

/// Inverse of [`level_tag`].
pub fn level_from_tag(tag: u8) -> Option<OptLevel> {
    OptLevel::ALL.into_iter().find(|&l| level_tag(l) == tag)
}

/// Stable one-byte encoding of a [`SpecModel`].
pub fn spec_model_tag(m: SpecModel) -> u8 {
    match m {
        SpecModel::General => 0,
        SpecModel::Sentinel => 1,
    }
}

/// Inverse of [`spec_model_tag`].
pub fn spec_model_from_tag(tag: u8) -> Option<SpecModel> {
    match tag {
        0 => Some(SpecModel::General),
        1 => Some(SpecModel::Sentinel),
        _ => None,
    }
}

/// Append a [`SamplePolicy`], tag byte first (0 exact, 1 sampled; the
/// warmup nests its own tag: 0 cold, 1 ops, 2 full).
pub fn canon_sample_policy(c: &mut Canon, p: SamplePolicy) {
    match p {
        SamplePolicy::Exact => c.u8(0),
        SamplePolicy::Sampled {
            interval_len,
            max_clusters,
            warmup,
        } => {
            c.u8(1);
            c.u64(interval_len);
            c.usize(max_clusters);
            match warmup {
                Warmup::Cold => c.u8(0),
                Warmup::Ops(w) => {
                    c.u8(1);
                    c.u64(w);
                }
                Warmup::Full => c.u8(2),
            }
        }
    }
}

/// Append a [`PredictorSpec`]'s canonical configuration bytes (variant
/// tag plus geometry, as defined by the sim crate).
pub fn canon_predictor_spec(c: &mut Canon, spec: PredictorSpec) {
    for b in spec.canon_bytes() {
        c.u8(b);
    }
}

/// Stable one-byte encoding of a [`ProfileInput`].
pub fn profile_input_tag(p: ProfileInput) -> u8 {
    match p {
        ProfileInput::Train => 0,
        ProfileInput::Refr => 1,
    }
}

/// Inverse of [`profile_input_tag`].
pub fn profile_input_from_tag(tag: u8) -> Option<ProfileInput> {
    match tag {
        0 => Some(ProfileInput::Train),
        1 => Some(ProfileInput::Refr),
        _ => None,
    }
}

/// Append every [`MachineConfig`] field, in declaration order.
pub fn canon_machine_config(c: &mut Canon, cfg: &MachineConfig) {
    for cache in [&cfg.l1i, &cfg.l1d, &cfg.l2, &cfg.l3] {
        c.u64(cache.size);
        c.u64(cache.line);
        c.u64(cache.ways);
        c.u64(cache.latency);
    }
    c.u64(cfg.mem_latency);
    c.u64(cfg.mispredict_penalty);
    c.usize(cfg.ib_ops);
    c.usize(cfg.fetch_bundles);
    c.u32(cfg.rse_capacity);
    c.u64(cfg.rse_cycle_per_reg);
    c.usize(cfg.dtlb_entries);
    c.u64(cfg.tlb_walk_cycles);
    c.u64(cfg.wild_load_kernel_cycles);
    c.u64(cfg.nat_page_cycles);
    c.u64(cfg.chk_recovery_cycles);
    c.u64(cfg.syscall_kernel_cycles);
    c.u64(cfg.store_forward_stall);
    c.usize(cfg.store_buffer);
    c.usize(cfg.alat_entries);
    c.u64(cfg.alat_recovery_cycles);
}

/// Everything that determines one compile+simulate job's result. This is
/// the unit of content addressing: two jobs with equal canonical bytes
/// are the same job and share one cache entry.
///
/// Deliberately *not* representable: `ilp_override` ablations,
/// `inject_bug`, and simulator tracing — jobs always run the level's
/// canonical configuration, so a cache entry can never alias an ablated
/// or instrumented run.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// MiniC source text (the content being addressed).
    pub source: String,
    /// Profile-training arguments for `main`.
    pub train_args: Vec<i64>,
    /// Measurement (reference) arguments for `main`.
    pub ref_args: Vec<i64>,
    /// Compiler configuration (Table 1 column).
    pub level: OptLevel,
    /// Which input trains the profile.
    pub profile_input: ProfileInput,
    /// ALAT data speculation on/off.
    pub enable_data_spec: bool,
    /// Interpreter fuel for the profiling run.
    pub profile_fuel: u64,
    /// Machine configuration for scheduling and simulation.
    pub config: MachineConfig,
    /// Simulator cycle budget.
    pub sim_fuel: u64,
    /// Speculation recovery model (paper Fig. 9).
    pub spec_model: SpecModel,
    /// Exact or sampled simulation: an estimate must never be served
    /// where an exact result was asked for (or vice versa), so the
    /// policy is part of the job's identity.
    pub sample: SamplePolicy,
    /// Branch predictor the simulator models: different predictors
    /// produce different cycle counts and must never alias in the
    /// artifact store.
    pub predictor: PredictorSpec,
}

impl JobSpec {
    /// The canonical job for a bundled workload at a level, under
    /// default compile and simulation options.
    pub fn for_workload(w: &Workload, level: OptLevel) -> JobSpec {
        JobSpec::from_options(
            w.source,
            &w.train_args,
            &w.ref_args,
            &CompileOptions::for_level(level),
            &SimOptions::default(),
        )
    }

    /// Build a spec from driver/sim option structs. Returns the spec
    /// whether or not the options are [`cacheable`](JobSpec::cacheable)
    /// — callers gate on that separately.
    pub fn from_options(
        source: &str,
        train_args: &[i64],
        ref_args: &[i64],
        copts: &CompileOptions,
        sopts: &SimOptions,
    ) -> JobSpec {
        JobSpec {
            source: source.to_string(),
            train_args: train_args.to_vec(),
            ref_args: ref_args.to_vec(),
            level: copts.level,
            profile_input: copts.profile_input,
            enable_data_spec: copts.enable_data_spec,
            profile_fuel: copts.profile_fuel,
            config: sopts.config,
            sim_fuel: sopts.fuel_cycles,
            spec_model: sopts.spec_model,
            sample: sopts.sample,
            predictor: sopts.predictor,
        }
    }

    /// Can this option combination be represented by a [`JobSpec`] at
    /// all? Ablation overrides, injected bugs, per-pass verification and
    /// tracing fall outside the canonical configuration and must never
    /// be served from (or stored into) the cache.
    pub fn cacheable(copts: &CompileOptions, sopts: &SimOptions) -> bool {
        copts.ilp_override.is_none()
            && !copts.inject_bug
            && !copts.verify_each_pass
            && sopts.trace_capacity == 0
    }

    /// The compile options this job runs with.
    pub fn compile_options(&self) -> CompileOptions {
        CompileOptions {
            level: self.level,
            profile_input: self.profile_input,
            ilp_override: None,
            enable_data_spec: self.enable_data_spec,
            profile_fuel: self.profile_fuel,
            verify_each_pass: false,
            inject_bug: false,
        }
    }

    /// The simulator options this job runs with.
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            config: self.config,
            fuel_cycles: self.sim_fuel,
            spec_model: self.spec_model,
            trace_capacity: 0,
            sample: self.sample,
            predictor: self.predictor,
        }
    }

    /// Canonical bytes of the *compilation* half: source, training
    /// input, and every compile option. Machine programs are shared
    /// across jobs that differ only in simulation parameters.
    pub fn compile_canon(&self) -> Vec<u8> {
        let mut c = Canon::new();
        c.u8(b'C');
        c.str(&self.source);
        c.i64s(&self.train_args);
        c.u8(level_tag(self.level));
        c.u8(profile_input_tag(self.profile_input));
        c.bool(self.enable_data_spec);
        c.u64(self.profile_fuel);
        canon_machine_config(&mut c, &self.config);
        c.finish()
    }

    /// Content hash of the compilation half.
    pub fn compile_key(&self) -> CacheKey {
        hash_bytes(&self.compile_canon())
    }

    /// Canonical bytes of the whole job (compilation plus simulation
    /// parameters and the measurement input).
    ///
    /// The predictor is a *trailing optional* field: the default spec
    /// appends nothing, so default-predictor jobs keep the exact
    /// pre-zoo canonical bytes (and job keys — a warm artifact store
    /// stays warm); any non-default spec appends a `b'P'` tag plus its
    /// full [`PredictorSpec::canon_bytes`], which no default encoding
    /// can collide with.
    pub fn job_canon(&self) -> Vec<u8> {
        let mut c = Canon::new();
        c.u8(b'J');
        c.bytes(&self.compile_canon());
        c.i64s(&self.ref_args);
        c.u64(self.sim_fuel);
        c.u8(spec_model_tag(self.spec_model));
        canon_sample_policy(&mut c, self.sample);
        if self.predictor != PredictorSpec::default() {
            c.u8(b'P');
            canon_predictor_spec(&mut c, self.predictor);
        }
        c.finish()
    }

    /// Content hash of the whole job — the artifact-store key.
    pub fn job_key(&self) -> CacheKey {
        hash_bytes(&self.job_canon())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_across_runs() {
        // Golden values: these must never change for fixed input — a
        // process-seeded hasher (DefaultHasher) would fail this test on
        // the next run. If the canonical encoding changes legitimately,
        // CANON_VERSION must be bumped and these constants re-derived.
        let k = hash_bytes(b"epic-serve golden input");
        assert_eq!(k.hex(), format!("{:016x}{:016x}", k.hi, k.lo));
        assert_eq!(k, hash_bytes(b"epic-serve golden input"));
        assert_eq!(k.hi, 0x4cd7_8099_eb42_1ea7);
        assert_eq!(k.lo, 0xf365_1250_fa87_d534);
    }

    #[test]
    fn hex_round_trips() {
        let k = hash_bytes(b"abc");
        assert_eq!(CacheKey::from_hex(&k.hex()), Some(k));
        assert_eq!(CacheKey::from_hex("xyz"), None);
        assert_eq!(CacheKey::from_hex(""), None);
    }

    #[test]
    fn all_workload_level_config_combinations_are_distinct() {
        // 12 workloads × 4 levels × 2 machine configs × 2 spec models:
        // every job key (and every compile key within a config) unique.
        let mut alt = MachineConfig::default();
        alt.l2.size *= 2;
        let mut job_keys = std::collections::HashSet::new();
        let mut n = 0;
        for w in epic_workloads::all() {
            for level in OptLevel::ALL {
                for cfg in [MachineConfig::default(), alt] {
                    for model in [SpecModel::General, SpecModel::Sentinel] {
                        let mut spec = JobSpec::for_workload(&w, level);
                        spec.config = cfg;
                        spec.spec_model = model;
                        assert!(
                            job_keys.insert(spec.job_key()),
                            "collision: {} {level:?}",
                            w.name
                        );
                        n += 1;
                    }
                }
            }
        }
        assert_eq!(n, 12 * 4 * 2 * 2);
    }

    #[test]
    fn keys_identical_across_threads_and_recomputation() {
        let specs: Vec<JobSpec> = epic_workloads::all()
            .iter()
            .map(|w| JobSpec::for_workload(w, OptLevel::IlpCs))
            .collect();
        let serial: Vec<CacheKey> = specs.iter().map(JobSpec::job_key).collect();
        // recompute on 8 threads; the hash must not depend on process or
        // thread identity
        let parallel = epic_driver::par_map(&specs, 8, |_, s| s.job_key());
        assert_eq!(serial, parallel);
        let again: Vec<CacheKey> = specs.iter().map(JobSpec::job_key).collect();
        assert_eq!(serial, again);
    }

    #[test]
    fn sim_parameters_change_job_key_but_not_compile_key() {
        let w = epic_workloads::by_name("mcf_mc").unwrap();
        let a = JobSpec::for_workload(&w, OptLevel::Gcc);
        let mut b = a.clone();
        b.spec_model = SpecModel::Sentinel;
        assert_eq!(a.compile_key(), b.compile_key());
        assert_ne!(a.job_key(), b.job_key());
        let mut c = a.clone();
        c.ref_args = vec![1, 2, 3];
        assert_eq!(a.compile_key(), c.compile_key());
        assert_ne!(a.job_key(), c.job_key());
        // sampled and exact runs of the same job are distinct jobs
        let mut s = a.clone();
        s.sample = SamplePolicy::default_sampled();
        assert_eq!(a.compile_key(), s.compile_key());
        assert_ne!(a.job_key(), s.job_key());
        let mut s2 = s.clone();
        s2.sample = SamplePolicy::Sampled {
            interval_len: 1000,
            max_clusters: 4,
            warmup: Warmup::Full,
        };
        assert_ne!(s.job_key(), s2.job_key());
        // ... while source or level changes alter both
        let mut d = a.clone();
        d.level = OptLevel::ONs;
        assert_ne!(a.compile_key(), d.compile_key());
        assert_ne!(a.job_key(), d.job_key());
    }

    #[test]
    fn default_predictor_job_keys_match_the_pre_zoo_goldens() {
        // Captured from the PR-7 tree immediately before the predictor
        // joined JobSpec: the default spec must keep producing these
        // exact keys (trailing-optional encoding — see job_canon), so a
        // warm artifact store survives the refactor.
        let goldens = [
            ("gzip_mc", OptLevel::Gcc, "5cf175ea4054a493df020939172edc96"),
            ("mcf_mc", OptLevel::ONs, "497097f48b9929b0cb56b20099befe66"),
            (
                "vortex_mc",
                OptLevel::IlpNs,
                "56770411e5c3ca40cc50662c35cf614d",
            ),
            (
                "twolf_mc",
                OptLevel::IlpCs,
                "a0ea1f89d57c13f2f6eba6fb52b8e592",
            ),
        ];
        for (name, level, want) in goldens {
            let w = epic_workloads::by_name(name).unwrap();
            let spec = JobSpec::for_workload(&w, level);
            assert_eq!(spec.predictor, PredictorSpec::default());
            assert_eq!(spec.job_key().hex(), want, "{name} {level:?}");
        }
    }

    #[test]
    fn predictor_changes_job_key_but_not_compile_key() {
        let w = epic_workloads::by_name("mcf_mc").unwrap();
        let base = JobSpec::for_workload(&w, OptLevel::IlpCs);
        let mut keys = vec![base.job_key()];
        for spec in PredictorSpec::ZOO {
            if spec == PredictorSpec::default() {
                continue;
            }
            let mut j = base.clone();
            j.predictor = spec;
            // prediction is a simulation parameter: the compiled
            // artifact is shared, the measurement is not
            assert_eq!(base.compile_key(), j.compile_key(), "{}", spec.name());
            keys.push(j.job_key());
        }
        // a geometry change alone must also separate
        let mut small = base.clone();
        small.predictor = PredictorSpec::Gshare {
            table_bits: 10,
            history_bits: 8,
        };
        keys.push(small.job_key());
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "predictors must never alias in the store");
    }

    #[test]
    fn non_canonical_options_are_not_cacheable() {
        let copts = CompileOptions::for_level(OptLevel::IlpCs);
        let sopts = SimOptions::default();
        assert!(JobSpec::cacheable(&copts, &sopts));
        let mut bugged = copts.clone();
        bugged.inject_bug = true;
        assert!(!JobSpec::cacheable(&bugged, &sopts));
        let mut ablated = copts.clone();
        ablated.ilp_override = Some(Default::default());
        assert!(!JobSpec::cacheable(&ablated, &sopts));
        let mut traced = sopts;
        traced.trace_capacity = 16;
        assert!(!JobSpec::cacheable(&copts, &traced));
    }
}
