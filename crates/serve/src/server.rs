//! `epicd`: the job service over `std::net::TcpListener`.
//!
//! One thread per connection (connections are few — CI and interactive
//! clients), each speaking the length-prefixed protocol in
//! [`proto`](crate::proto). The listener itself runs nonblocking with a
//! short poll so a `Shutdown` verb (or [`ServerHandle::stop`]) tears the
//! whole service down promptly and deterministically — CI never has to
//! kill -9.

use crate::key::JobSpec;
use crate::proto::{self, Request, Response, ServeStats};
use crate::sched::{JobError, Priority, Scheduler, SubmitError};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running server; dropping it (or calling [`stop`](ServerHandle::stop))
/// shuts the service down and joins every thread.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    sched: Arc<Scheduler>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The scheduler behind the server.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Aggregate statistics (same data the `stats` verb serves).
    pub fn stats(&self) -> ServeStats {
        let (compiles, sims) = self.sched.work_counts();
        ServeStats {
            store: self.sched.store().stats(),
            sched: self.sched.stats(),
            compiles,
            sims,
        }
    }

    /// Stop accepting, drain the scheduler, join all threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.sched.shutdown();
    }

    /// Block until the accept loop exits (a client sent `Shutdown`).
    pub fn wait(&mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.sched.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `listen_addr` (e.g. `127.0.0.1:0`) and serve `sched` on it.
///
/// # Errors
/// Bind failures.
pub fn serve(listen_addr: &str, sched: Arc<Scheduler>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(listen_addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let stop = Arc::clone(&stop);
        let sched = Arc::clone(&sched);
        std::thread::Builder::new()
            .name("epicd-accept".to_string())
            .spawn(move || accept_loop(&listener, &stop, &sched))
            .expect("spawn accept loop")
    };
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        sched,
    })
}

fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>, sched: &Arc<Scheduler>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let stop = Arc::clone(stop);
                let sched = Arc::clone(sched);
                conns.push(
                    std::thread::Builder::new()
                        .name("epicd-conn".to_string())
                        .spawn(move || {
                            let _ = handle_connection(stream, &stop, &sched);
                        })
                        .expect("spawn connection"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

fn handle_connection(
    stream: TcpStream,
    stop: &AtomicBool,
    sched: &Scheduler,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    while let Some(body) = proto::read_frame(&mut reader)? {
        let resp = match proto::decode_request(&body) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = dispatch(req, sched);
                if is_shutdown {
                    proto::write_frame(&mut writer, &proto::encode_response(&resp))?;
                    stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                resp
            }
            Err(e) => Response::Err(format!("bad request: {e}")),
        };
        proto::write_frame(&mut writer, &proto::encode_response(&resp))?;
    }
    Ok(())
}

/// Execute one request against the scheduler. Blocking verbs (submit)
/// block this connection's thread only.
fn dispatch(req: Request, sched: &Scheduler) -> Response {
    match req {
        Request::Submit {
            spec,
            prio,
            deadline_ms,
        } => submit(spec, prio, deadline_ms, sched),
        Request::Status(key) => Response::Status(sched.status(key)),
        Request::Result(key) => {
            Response::Result(sched.store().lookup(key).map(|m| Box::new((*m).clone())))
        }
        Request::Stats => {
            let (compiles, sims) = sched.work_counts();
            Response::Stats(ServeStats {
                store: sched.store().stats(),
                sched: sched.stats(),
                compiles,
                sims,
            })
        }
        Request::Metrics => Response::Metrics(epic_trace::global().snapshot()),
        Request::Shutdown => Response::ShutdownOk,
    }
}

fn submit(spec: JobSpec, prio: Priority, deadline_ms: u64, sched: &Scheduler) -> Response {
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    match sched.submit(spec, prio, deadline) {
        Ok(ticket) => {
            let key = ticket.key;
            let cache_hit = ticket.cache_hit;
            let coalesced = ticket.coalesced;
            match ticket.wait() {
                Ok(m) => Response::Done {
                    key,
                    cache_hit,
                    coalesced,
                    measurement: Box::new((*m).clone()),
                },
                Err(JobError::Expired) => Response::Err("deadline expired".to_string()),
                Err(e) => Response::Err(e.to_string()),
            }
        }
        Err(SubmitError::Busy { queue_depth }) => Response::Busy { queue_depth },
        Err(SubmitError::Shutdown) => Response::Err("server shutting down".to_string()),
    }
}
