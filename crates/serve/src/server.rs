//! `epicd`: the job service as a single-threaded event loop over
//! nonblocking sockets.
//!
//! There are no per-connection OS threads. One loop thread owns the
//! listener and every connection, and multiplexes them with a
//! hand-rolled readiness sweep (std has no `poll(2)`, so readiness is
//! discovered by attempting nonblocking I/O):
//!
//! * **Connections** are [`Conn`] state machines — reading-length →
//!   reading-body → dispatching → writing — driven by an incremental
//!   [`FrameDecoder`](proto::FrameDecoder) whose buffers (and the
//!   connection's write buffer) are reused across frames: steady-state
//!   framing allocates nothing, and responses go out as one vectored
//!   write of header + body.
//! * **Submits never block the loop.** A pending job parks the
//!   *connection* (state `AwaitJob`), not a thread: a completion hook
//!   ([`Ticket::on_complete`](crate::sched::Ticket::on_complete))
//!   enqueues the result and wakes the loop, which writes the response.
//!   Thousands of in-flight submits cost one loop thread.
//! * **Wakeup token** — a loopback `TcpStream` pair (the std-only
//!   self-pipe): when the loop has nothing to do it parks in a blocking
//!   read (with a short timeout as the readiness-poll backstop) on the
//!   receive end; job completions and [`ServerHandle::stop`] write one
//!   byte to the send end to wake it immediately.
//! * **Admission control** — a max-connections cap (over-cap peers get a
//!   typed error frame and a close) and a per-connection idle timeout
//!   (quiet connections are reaped). `serve.conns` (gauge),
//!   `serve.conns.rejected` / `serve.conns.reaped` (counters),
//!   `serve.poll.wait_us` / `serve.frame.bytes` / `serve.submit.e2e_us`
//!   (histograms) land in the process-wide registry for `epicc top`.
//!
//! A malformed frame (hostile length, truncated body, transport error)
//! closes — and a garbage verb merely errors — *that* connection; every
//! other connection keeps being served.

use crate::key::JobSpec;
use crate::proto::{self, FrameError, FrameEvent, Request, Response, ServeStats};
use crate::sched::{JobError, Priority, Scheduler, SubmitError};
use epic_driver::Measurement;
use epic_trace::{Counter, Gauge, Histogram};
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning for the event loop.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Admission cap: connections over this are answered with a typed
    /// error frame and closed.
    pub max_conns: usize,
    /// Connections idle (no frame activity, not awaiting a job) longer
    /// than this are reaped.
    pub idle_timeout: Duration,
    /// Longest the loop parks between readiness sweeps when nothing is
    /// happening; wakeups cut a park short.
    pub poll_park: Duration,
    /// Stable shard identity reported in [`ServeStats`] (0 for a
    /// standalone daemon; a fleet assigns distinct non-zero ids).
    pub shard_id: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_conns: 1024,
            idle_timeout: Duration::from_secs(60),
            poll_park: Duration::from_millis(5),
            shard_id: 0,
        }
    }
}

/// The std-only self-pipe: completions (from worker threads) and
/// [`ServerHandle::stop`] wake the parked loop by writing one byte to a
/// loopback socket. `armed` keeps at most one byte in flight.
struct Waker {
    tx: Mutex<TcpStream>,
    armed: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.armed.swap(true, Ordering::SeqCst) {
            let _ = self.tx.lock().expect("waker").write(&[1u8]);
        }
    }
}

/// Loopback socket pair (receive end, send end) — std has no
/// `pipe(2)`, so the wakeup token is a TCP connection to ourselves.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    tx.set_nodelay(true)?;
    let (rx, _) = listener.accept()?;
    rx.set_read_timeout(Some(Duration::from_millis(5)))?;
    rx.set_nonblocking(true)?;
    Ok((rx, tx))
}

/// A finished (or failed) submit waiting for the loop to write its
/// response. `gen` guards against the slot having been recycled while
/// the job ran.
struct Completion {
    slot: usize,
    gen: u64,
    key: crate::key::CacheKey,
    cache_hit: bool,
    coalesced: bool,
    result: Result<Arc<Measurement>, JobError>,
}

/// Per-connection protocol state.
enum ConnState {
    /// Reading a frame (length prefix or body) through the decoder.
    Reading,
    /// A submit is in flight; the connection reads nothing until the
    /// completion arrives (per-connection backpressure).
    AwaitJob,
    /// Flushing `out` (header + body, vectored).
    Writing,
}

struct Conn {
    stream: TcpStream,
    decoder: proto::FrameDecoder,
    state: ConnState,
    /// Response frame header (big-endian body length).
    header: [u8; 4],
    /// Response body; reused across frames (capacity retained).
    out: Vec<u8>,
    /// Bytes of header+body already written.
    out_sent: usize,
    /// Submit dispatch time, for the end-to-end latency histogram.
    submit_started: Option<Instant>,
    last_activity: Instant,
    gen: u64,
    close_after_write: bool,
    shutdown_after_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Conn {
        Conn {
            stream,
            decoder: proto::FrameDecoder::new(),
            state: ConnState::Reading,
            header: [0; 4],
            out: Vec::new(),
            out_sent: 0,
            submit_started: None,
            last_activity: Instant::now(),
            gen,
            close_after_write: false,
            shutdown_after_write: false,
        }
    }

    /// Stage `resp` as the next outgoing frame and enter `Writing`.
    fn stage_response(&mut self, resp: &Response) {
        proto::encode_response_into(resp, &mut self.out);
        self.header = (self.out.len() as u32).to_be_bytes();
        self.out_sent = 0;
        self.state = ConnState::Writing;
    }

    /// Push staged bytes out as far as the socket allows (vectored
    /// header+body). Returns `Ok(true)` when the frame is fully flushed.
    fn write_progress(&mut self) -> std::io::Result<bool> {
        let total = 4 + self.out.len();
        while self.out_sent < total {
            let hdr = &self.header[self.out_sent.min(4)..];
            let body = &self.out[self.out_sent.saturating_sub(4)..];
            let bufs = [IoSlice::new(hdr), IoSlice::new(body)];
            match self.stream.write_vectored(&bufs) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes mid-frame",
                    ))
                }
                Ok(n) => self.out_sent += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// Event-loop handles into the process-wide metrics registry.
struct LoopMetrics {
    conns: Gauge,
    conns_rejected: Counter,
    conns_reaped: Counter,
    frame_errors: Counter,
    bad_requests: Counter,
    replicated: Counter,
    poll_wait_us: Histogram,
    frame_bytes: Histogram,
    submit_e2e_us: Histogram,
}

impl LoopMetrics {
    fn new() -> LoopMetrics {
        let g = epic_trace::global();
        LoopMetrics {
            conns: g.gauge("serve.conns"),
            conns_rejected: g.counter("serve.conns.rejected"),
            conns_reaped: g.counter("serve.conns.reaped"),
            frame_errors: g.counter("serve.frame.errors"),
            bad_requests: g.counter("serve.requests.bad"),
            replicated: g.counter("serve.replicated"),
            poll_wait_us: g.histogram("serve.poll.wait_us"),
            frame_bytes: g.histogram("serve.frame.bytes"),
            submit_e2e_us: g.histogram("serve.submit.e2e_us"),
        }
    }
}

/// A running server; dropping it (or calling [`stop`](ServerHandle::stop))
/// shuts the service down and joins the loop thread.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    loop_thread: Option<std::thread::JoinHandle<()>>,
    sched: Arc<Scheduler>,
    shard_id: u64,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The scheduler behind the server.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Aggregate statistics (same data the `stats` verb serves).
    pub fn stats(&self) -> ServeStats {
        let (compiles, sims) = self.sched.work_counts();
        ServeStats {
            store: self.sched.store().stats(),
            sched: self.sched.stats(),
            compiles,
            sims,
            shard_id: self.shard_id,
        }
    }

    /// Stop the loop, close every connection, drain the scheduler.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
        self.sched.shutdown();
    }

    /// Block until the loop exits (a client sent `Shutdown`).
    pub fn wait(&mut self) {
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
        self.sched.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `listen_addr` (e.g. `127.0.0.1:0`) and serve `sched` on it with
/// default [`ServerConfig`].
///
/// # Errors
/// Bind failures.
pub fn serve(listen_addr: &str, sched: Arc<Scheduler>) -> std::io::Result<ServerHandle> {
    serve_with(listen_addr, sched, ServerConfig::default())
}

/// [`serve`] with explicit event-loop tuning.
///
/// # Errors
/// Bind failures.
pub fn serve_with(
    listen_addr: &str,
    sched: Arc<Scheduler>,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(listen_addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let (wake_rx, wake_tx) = wake_pair()?;
    let stop = Arc::new(AtomicBool::new(false));
    let waker = Arc::new(Waker {
        tx: Mutex::new(wake_tx),
        armed: AtomicBool::new(false),
    });
    let mut el = EventLoop {
        listener,
        sched: Arc::clone(&sched),
        stop: Arc::clone(&stop),
        waker: Arc::clone(&waker),
        wake_rx,
        completions: Arc::new(Mutex::new(Vec::new())),
        cfg,
        metrics: LoopMetrics::new(),
        conns: Vec::new(),
        free: Vec::new(),
        live: 0,
        next_gen: 0,
    };
    let shard_id = cfg.shard_id;
    let loop_thread = std::thread::Builder::new()
        .name("epicd-loop".to_string())
        .spawn(move || el.run())
        .expect("spawn event loop");
    Ok(ServerHandle {
        addr,
        stop,
        waker,
        loop_thread: Some(loop_thread),
        sched,
        shard_id,
    })
}

/// What pumping one connection concluded.
enum ConnOutcome {
    Keep,
    Close,
    /// `ShutdownOk` flushed: stop the whole server.
    Shutdown,
}

struct EventLoop {
    listener: TcpListener,
    sched: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    wake_rx: TcpStream,
    completions: Arc<Mutex<Vec<Completion>>>,
    cfg: ServerConfig,
    metrics: LoopMetrics,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_gen: u64,
}

impl EventLoop {
    fn run(&mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            let mut progress = false;
            progress |= self.drain_wake();
            progress |= self.drain_completions();
            progress |= self.accept_new();
            match self.pump_all() {
                (p, false) => progress |= p,
                (_, true) => break, // shutdown verb flushed
            }
            self.reap_idle();
            if !progress {
                self.park();
            }
        }
        // close every connection and report an empty house
        self.conns.clear();
        self.metrics.conns.set(0);
    }

    /// Consume pending wake bytes so the next park blocks.
    fn drain_wake(&mut self) -> bool {
        self.waker.armed.store(false, Ordering::SeqCst);
        let mut buf = [0u8; 64];
        let mut woke = false;
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => break, // peer half gone; parks will time out
                Ok(_) => woke = true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break, // WouldBlock: drained
            }
        }
        woke
    }

    /// Park until woken or the poll interval elapses; the park duration
    /// is the `serve.poll.wait_us` histogram.
    fn park(&mut self) {
        let t0 = Instant::now();
        if self.wake_rx.set_nonblocking(false).is_ok() {
            let mut buf = [0u8; 8];
            match self.wake_rx.read(&mut buf) {
                Ok(n) if n > 0 => self.waker.armed.store(false, Ordering::SeqCst),
                _ => {} // timeout (WouldBlock/TimedOut), EOF, or error
            }
            let _ = self.wake_rx.set_nonblocking(true);
        } else {
            std::thread::sleep(self.cfg.poll_park);
        }
        self.metrics
            .poll_wait_us
            .record(t0.elapsed().as_micros() as u64);
    }

    fn drain_completions(&mut self) -> bool {
        let done: Vec<Completion> = {
            let mut q = self.completions.lock().expect("completion queue");
            std::mem::take(&mut *q)
        };
        let mut progress = false;
        for c in done {
            let Some(conn) = self.conns.get_mut(c.slot).and_then(Option::as_mut) else {
                continue; // connection died while the job ran
            };
            if conn.gen != c.gen || !matches!(conn.state, ConnState::AwaitJob) {
                continue; // slot recycled
            }
            let resp = match c.result {
                Ok(m) => Response::Done {
                    key: c.key,
                    cache_hit: c.cache_hit,
                    coalesced: c.coalesced,
                    measurement: Box::new((*m).clone()),
                },
                Err(JobError::Expired) => Response::Err("deadline expired".to_string()),
                Err(e) => Response::Err(e.to_string()),
            };
            conn.stage_response(&resp);
            conn.last_activity = Instant::now();
            progress = true;
        }
        progress
    }

    fn accept_new(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if self.live >= self.cfg.max_conns {
                        self.reject(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.next_gen += 1;
                    let conn = Conn::new(stream, self.next_gen);
                    match self.free.pop() {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    self.live += 1;
                    self.metrics.conns.set(self.live as i64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        progress
    }

    /// Over-cap admission: best-effort typed error frame, then close.
    /// The frame is a few dozen bytes — it fits any send buffer, so a
    /// single nonblocking vectored write delivers it in practice.
    fn reject(&mut self, stream: TcpStream) {
        self.metrics.conns_rejected.inc();
        let _ = stream.set_nonblocking(true);
        let mut body = Vec::new();
        proto::encode_response_into(&Response::Err("server at capacity".to_string()), &mut body);
        let header = (body.len() as u32).to_be_bytes();
        let _ = (&stream).write_vectored(&[IoSlice::new(&header), IoSlice::new(&body)]);
    }

    /// Drive every connection's state machine. Returns
    /// `(progress, shutdown_requested)`.
    fn pump_all(&mut self) -> (bool, bool) {
        let mut progress = false;
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            let before = (conn.out_sent, conn.decoder.mid_frame());
            match self.pump_conn(slot, &mut conn) {
                ConnOutcome::Keep => {
                    progress |= (conn.out_sent, conn.decoder.mid_frame()) != before;
                    self.conns[slot] = Some(conn);
                }
                ConnOutcome::Close => {
                    progress = true;
                    drop(conn);
                    self.release_slot(slot);
                }
                ConnOutcome::Shutdown => {
                    drop(conn);
                    self.release_slot(slot);
                    return (true, true);
                }
            }
        }
        (progress, false)
    }

    fn release_slot(&mut self, slot: usize) {
        self.free.push(slot);
        self.live -= 1;
        self.metrics.conns.set(self.live as i64);
    }

    /// Advance one connection as far as it will go without blocking.
    /// Bounded to a handful of request/response cycles per sweep so one
    /// chatty peer cannot starve the rest.
    fn pump_conn(&mut self, slot: usize, conn: &mut Conn) -> ConnOutcome {
        for _ in 0..4 {
            match conn.state {
                ConnState::AwaitJob => return ConnOutcome::Keep,
                ConnState::Reading => match conn.decoder.read_from(&mut conn.stream) {
                    Ok(FrameEvent::Frame) => {
                        conn.last_activity = Instant::now();
                        self.metrics
                            .frame_bytes
                            .record(conn.decoder.frame().len() as u64);
                        self.dispatch(slot, conn);
                        conn.decoder.next_frame();
                    }
                    Ok(FrameEvent::Blocked) => return ConnOutcome::Keep,
                    Ok(FrameEvent::Closed) => return ConnOutcome::Close,
                    Err(FrameError::TooLarge { len }) => {
                        // typed refusal, then hang up — only this conn
                        self.metrics.frame_errors.inc();
                        conn.stage_response(&Response::Err(format!(
                            "frame length {len} exceeds cap"
                        )));
                        conn.close_after_write = true;
                    }
                    Err(_) => {
                        // truncated frame or transport error: the peer is
                        // gone or garbled; close without a response
                        self.metrics.frame_errors.inc();
                        return ConnOutcome::Close;
                    }
                },
                ConnState::Writing => match conn.write_progress() {
                    Ok(true) => {
                        conn.last_activity = Instant::now();
                        self.metrics.frame_bytes.record(conn.out.len() as u64);
                        if let Some(t0) = conn.submit_started.take() {
                            self.metrics
                                .submit_e2e_us
                                .record(t0.elapsed().as_micros() as u64);
                        }
                        if conn.shutdown_after_write {
                            self.stop.store(true, Ordering::SeqCst);
                            return ConnOutcome::Shutdown;
                        }
                        if conn.close_after_write {
                            return ConnOutcome::Close;
                        }
                        conn.out.clear();
                        conn.out_sent = 0;
                        conn.state = ConnState::Reading;
                    }
                    Ok(false) => return ConnOutcome::Keep,
                    Err(_) => return ConnOutcome::Close,
                },
            }
        }
        ConnOutcome::Keep
    }

    /// Execute one decoded frame. Immediate verbs stage their response
    /// here; a pending submit parks the connection until its completion
    /// hook fires.
    fn dispatch(&mut self, slot: usize, conn: &mut Conn) {
        let req = match proto::decode_request(conn.decoder.frame()) {
            Ok(req) => req,
            Err(e) => {
                // garbage verb / corrupt body: typed error response, the
                // connection itself survives
                self.metrics.bad_requests.inc();
                conn.stage_response(&Response::Err(format!("bad request: {e}")));
                return;
            }
        };
        match req {
            Request::Submit {
                spec,
                prio,
                deadline_ms,
            } => self.dispatch_submit(slot, conn, spec, prio, deadline_ms),
            Request::Status(key) => conn.stage_response(&Response::Status(self.sched.status(key))),
            Request::Result(key) => conn.stage_response(&Response::Result(
                self.sched
                    .store()
                    .lookup(key)
                    .map(|m| Box::new((*m).clone())),
            )),
            Request::Stats => {
                let (compiles, sims) = self.sched.work_counts();
                conn.stage_response(&Response::Stats(ServeStats {
                    store: self.sched.store().stats(),
                    sched: self.sched.stats(),
                    compiles,
                    sims,
                    shard_id: self.cfg.shard_id,
                }));
            }
            Request::Metrics => {
                conn.stage_response(&Response::Metrics(epic_trace::global().snapshot()));
            }
            Request::Put { key, measurement } => {
                // warm-cache replication: store without scheduling; the
                // content-addressed key makes repeats idempotent
                self.sched.store().insert(key, *measurement);
                self.metrics.replicated.inc();
                conn.stage_response(&Response::PutOk);
            }
            Request::Keys => {
                // key census for the rebalance engine: everything the
                // store can serve, memory and disk alike
                conn.stage_response(&Response::Keys(self.sched.store().keys()));
            }
            Request::Admin(_) => {
                // the control plane lives in the gateway; a shard
                // answers with a typed refusal rather than misrouting
                conn.stage_response(&Response::Err(
                    "admin verbs are gateway-only; this is a shard".to_string(),
                ));
            }
            Request::Shutdown => {
                conn.stage_response(&Response::ShutdownOk);
                conn.shutdown_after_write = true;
            }
        }
    }

    fn dispatch_submit(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        spec: JobSpec,
        prio: Priority,
        deadline_ms: u64,
    ) {
        conn.submit_started = Some(Instant::now());
        let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
        match self.sched.submit(spec, prio, deadline) {
            Ok(ticket) => {
                let (key, cache_hit, coalesced) = (ticket.key, ticket.cache_hit, ticket.coalesced);
                // park the connection; the hook (run inline for instant
                // cache hits, else on the completing worker) enqueues the
                // result and wakes the loop
                conn.state = ConnState::AwaitJob;
                let completions = Arc::clone(&self.completions);
                let waker = Arc::clone(&self.waker);
                let gen = conn.gen;
                ticket.on_complete(move |result| {
                    completions
                        .lock()
                        .expect("completion queue")
                        .push(Completion {
                            slot,
                            gen,
                            key,
                            cache_hit,
                            coalesced,
                            result,
                        });
                    waker.wake();
                });
            }
            Err(SubmitError::Busy { queue_depth }) => {
                conn.stage_response(&Response::Busy { queue_depth });
            }
            Err(SubmitError::Shutdown) => {
                conn.stage_response(&Response::Err("server shutting down".to_string()));
            }
        }
    }

    /// Close connections that have been quiet past the idle timeout.
    /// Connections awaiting a job are never idle — a long compile is
    /// work, not silence.
    fn reap_idle(&mut self) {
        let timeout = self.cfg.idle_timeout;
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let reap = match &self.conns[slot] {
                Some(c) => {
                    !matches!(c.state, ConnState::AwaitJob)
                        && now.duration_since(c.last_activity) > timeout
                }
                None => false,
            };
            if reap {
                self.conns[slot] = None;
                self.release_slot(slot);
                self.metrics.conns_reaped.inc();
            }
        }
    }
}
