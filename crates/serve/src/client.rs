//! Client side of the `epicd` protocol: a thin blocking connection that
//! `epicc serve`/`epicc submit` (and the CI smoke test) drive.

use crate::key::{CacheKey, JobSpec};
use crate::proto::{
    self, AdminRequest, AdminResponse, FleetStatus, RebalanceReport, Request, Response, ServeStats,
};
use crate::sched::{JobStatus, Priority};
use epic_driver::Measurement;
use epic_trace::MetricsSnapshot;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

/// Deterministic retry schedule for [`Client::submit_retry`]: capped
/// exponential backoff with no jitter, so a given attempt count always
/// produces the same delay sequence (tests and CI stay reproducible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = plain [`Client::submit`]).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Ceiling the doubling schedule saturates at.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (0-based):
    /// `min(cap, base * 2^attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// Malformed response frame.
    Codec(crate::codec::CodecError),
    /// Server-reported error.
    Server(String),
    /// Typed backpressure: the server shed this submission.
    Busy {
        /// Queue depth at rejection.
        queue_depth: usize,
    },
    /// The server answered with the wrong response kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Codec(e) => write!(f, "protocol: {e}"),
            ClientError::Server(msg) => write!(f, "server: {msg}"),
            ClientError::Busy { queue_depth } => {
                write!(f, "busy: server queue full ({queue_depth} waiting)")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<crate::codec::CodecError> for ClientError {
    fn from(e: crate::codec::CodecError) -> ClientError {
        ClientError::Codec(e)
    }
}

/// A successfully served submission.
pub struct Served {
    /// Content key of the job.
    pub key: CacheKey,
    /// Served straight from the server's store.
    pub cache_hit: bool,
    /// Attached to a job another client had in flight.
    pub coalesced: bool,
    /// The measurement.
    pub measurement: Measurement,
}

/// One blocking connection to an `epicd` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:4617`).
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        proto::write_frame(&mut self.writer, &proto::encode_request(req))?;
        let body = proto::read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-request",
            ))
        })?;
        match proto::decode_response(&body)? {
            Response::Err(msg) => Err(ClientError::Server(msg)),
            Response::Busy { queue_depth } => Err(ClientError::Busy { queue_depth }),
            resp => Ok(resp),
        }
    }

    /// Submit a job and block until it is served (or typed-rejected).
    ///
    /// # Errors
    /// [`ClientError::Busy`] on shed load, [`ClientError::Server`] on
    /// job failure, transport/protocol errors otherwise.
    pub fn submit(
        &mut self,
        spec: &JobSpec,
        prio: Priority,
        deadline_ms: u64,
    ) -> Result<Served, ClientError> {
        match self.roundtrip(&Request::Submit {
            spec: spec.clone(),
            prio,
            deadline_ms,
        })? {
            Response::Done {
                key,
                cache_hit,
                coalesced,
                measurement,
            } => Ok(Served {
                key,
                cache_hit,
                coalesced,
                measurement: *measurement,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// [`submit`](Client::submit), but ride out [`ClientError::Busy`]
    /// rejections by sleeping through `policy`'s deterministic backoff
    /// schedule and resubmitting, up to `policy.max_retries` times.
    ///
    /// # Errors
    /// [`ClientError::Busy`] once the retry budget is exhausted; every
    /// other error aborts immediately (retrying cannot fix them).
    pub fn submit_retry(
        &mut self,
        spec: &JobSpec,
        prio: Priority,
        deadline_ms: u64,
        policy: &RetryPolicy,
    ) -> Result<Served, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.submit(spec, prio, deadline_ms) {
                Err(ClientError::Busy { queue_depth }) => {
                    if attempt >= policy.max_retries {
                        return Err(ClientError::Busy { queue_depth });
                    }
                    // observable interplay with gateway hedging: every
                    // Busy ridden out shows up in `epicc top`
                    epic_trace::global().counter("serve.client.retries").inc();
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Push a finished measurement into the server's store under `key`
    /// without scheduling anything (warm-cache replication).
    ///
    /// # Errors
    /// Transport/protocol errors.
    pub fn put(&mut self, key: CacheKey, measurement: &Measurement) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Put {
            key,
            measurement: Box::new(measurement.clone()),
        })? {
            Response::PutOk => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server's full metrics-registry snapshot.
    ///
    /// # Errors
    /// Transport/protocol errors.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(s) => Ok(s),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask where a key stands.
    ///
    /// # Errors
    /// Transport/protocol errors.
    pub fn status(&mut self, key: CacheKey) -> Result<JobStatus, ClientError> {
        match self.roundtrip(&Request::Status(key))? {
            Response::Status(s) => Ok(s),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch a stored result without scheduling anything.
    ///
    /// # Errors
    /// Transport/protocol errors.
    pub fn result(&mut self, key: CacheKey) -> Result<Option<Measurement>, ClientError> {
        match self.roundtrip(&Request::Result(key))? {
            Response::Result(m) => Ok(m.map(|b| *b)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server's counters.
    ///
    /// # Errors
    /// Transport/protocol errors.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Enumerate every key the server's store holds (memory + disk).
    ///
    /// # Errors
    /// Transport/protocol errors.
    pub fn keys(&mut self) -> Result<Vec<CacheKey>, ClientError> {
        match self.roundtrip(&Request::Keys)? {
            Response::Keys(keys) => Ok(keys),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Issue a typed control-plane request (gateway only; plain shards
    /// refuse with [`ClientError::Server`]).
    ///
    /// # Errors
    /// Transport/protocol errors, or a shard-side refusal.
    pub fn admin(&mut self, req: &AdminRequest) -> Result<AdminResponse, ClientError> {
        match self.roundtrip(&Request::Admin(req.clone()))? {
            Response::Admin(a) => Ok(a),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Describe the fleet behind a gateway.
    ///
    /// # Errors
    /// Transport/protocol errors, or a typed admin refusal.
    pub fn fleet_status(&mut self) -> Result<FleetStatus, ClientError> {
        match self.admin(&AdminRequest::FleetStatus)? {
            AdminResponse::Status(s) => Ok(s),
            AdminResponse::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Join `id` at `addr` into the fleet: warm it, then cut over.
    ///
    /// # Errors
    /// Transport/protocol errors, or a typed admin refusal.
    pub fn cluster_join(&mut self, id: u64, addr: &str) -> Result<RebalanceReport, ClientError> {
        match self.admin(&AdminRequest::Join {
            id,
            addr: addr.to_string(),
        })? {
            AdminResponse::Rebalanced(r) => Ok(r),
            AdminResponse::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Drain `id` out of the fleet: warm its keys' new owners, then cut
    /// over.
    ///
    /// # Errors
    /// Transport/protocol errors, or a typed admin refusal.
    pub fn cluster_drain(&mut self, id: u64) -> Result<RebalanceReport, ClientError> {
        match self.admin(&AdminRequest::Drain { id })? {
            AdminResponse::Rebalanced(r) => Ok(r),
            AdminResponse::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to shut down cleanly.
    ///
    /// # Errors
    /// Transport/protocol errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

/// A single-threaded multiplexing client: `n` nonblocking connections
/// driven by one readiness sweep, mirroring the server's event loop from
/// the other side. This is how one client thread keeps a thousand
/// submits in flight at once (the wire protocol has no request IDs, so
/// depth comes from connection count, not per-connection pipelining —
/// though queued requests on one connection are still answered in
/// order).
///
/// Script requests with [`enqueue`](Swarm::enqueue), then drive
/// everything to completion with [`run`](Swarm::run). Responses come
/// back raw (`Response`, including `Err`/`Busy`) so callers can count
/// outcomes instead of aborting on the first rejection.
pub struct Swarm {
    conns: Vec<SwarmConn>,
}

struct SwarmConn {
    stream: TcpStream,
    decoder: proto::FrameDecoder,
    /// Queued request frames (header+body), concatenated; written as
    /// far as the socket allows each sweep.
    out: Vec<u8>,
    out_sent: usize,
    expected: usize,
    responses: Vec<Response>,
}

impl Swarm {
    /// Open `n` connections to `addr`, all nonblocking.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str, n: usize) -> Result<Swarm, ClientError> {
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            conns.push(SwarmConn {
                stream,
                decoder: proto::FrameDecoder::new(),
                out: Vec::new(),
                out_sent: 0,
                expected: 0,
                responses: Vec::new(),
            });
        }
        Ok(Swarm { conns })
    }

    /// Number of connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when the swarm has no connections.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Script `req` onto connection `conn` (0-based). Nothing hits the
    /// wire until [`run`](Swarm::run).
    pub fn enqueue(&mut self, conn: usize, req: &Request) {
        let c = &mut self.conns[conn];
        let mut body = Vec::new();
        proto::encode_request_into(req, &mut body);
        c.out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        c.out.extend_from_slice(&body);
        c.expected += 1;
    }

    /// Drive every connection until each has one response per scripted
    /// request, or `timeout` elapses. Returns per-connection responses
    /// in script order.
    ///
    /// # Errors
    /// Timeout, transport failure, a server that closes with responses
    /// outstanding, or a malformed response frame.
    pub fn run(&mut self, timeout: Duration) -> Result<Vec<Vec<Response>>, ClientError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let mut progress = false;
            let mut outstanding = 0usize;
            for c in &mut self.conns {
                progress |= c.pump()?;
                outstanding += c.expected - c.responses.len();
            }
            if outstanding == 0 {
                break;
            }
            if std::time::Instant::now() > deadline {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("swarm timed out with {outstanding} responses outstanding"),
                )));
            }
            if !progress {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        Ok(self
            .conns
            .iter_mut()
            .map(|c| std::mem::take(&mut c.responses))
            .collect())
    }
}

impl SwarmConn {
    /// One nonblocking sweep over this connection: flush what the
    /// socket will take, decode what it has.
    fn pump(&mut self) -> Result<bool, ClientError> {
        let mut progress = false;
        while self.out_sent < self.out.len() {
            match std::io::Write::write(&mut self.stream, &self.out[self.out_sent..]) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "server stopped accepting bytes",
                    )))
                }
                Ok(n) => {
                    self.out_sent += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        while self.responses.len() < self.expected {
            match self.decoder.read_from(&mut self.stream) {
                Ok(proto::FrameEvent::Frame) => {
                    let resp = proto::decode_response(self.decoder.frame())?;
                    self.decoder.next_frame();
                    self.responses.push(resp);
                    progress = true;
                }
                Ok(proto::FrameEvent::Blocked) => break,
                Ok(proto::FrameEvent::Closed) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed with responses outstanding",
                    )))
                }
                Err(proto::FrameError::Io(e)) => return Err(e.into()),
                Err(e) => return Err(ClientError::Codec(crate::codec::CodecError(e.to_string()))),
            }
        }
        Ok(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_double_then_saturate_at_the_cap() {
        let p = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        let delays: Vec<u64> = (0..8).map(|a| p.delay(a).as_millis() as u64).collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 100, 100, 100, 100]);
        // the same policy always yields the same schedule — no jitter
        assert_eq!(p.delay(3), p.delay(3));
    }

    #[test]
    fn retry_delay_survives_huge_attempt_counts() {
        let p = RetryPolicy::default();
        // 2^40 would overflow the shift; the schedule must saturate at
        // the cap instead of panicking or wrapping
        assert_eq!(p.delay(40), p.cap);
        assert_eq!(p.delay(u32::MAX), p.cap);
    }
}
