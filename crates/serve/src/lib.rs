//! # epic-serve
//!
//! A content-addressed compile/sim job service. The experiment matrix
//! (12 workloads × 4 optimization levels, DESIGN.md §1) is pure: a
//! measurement is fully determined by the MiniC source, the compile
//! options, the machine configuration, and the simulation parameters.
//! This crate exploits that purity end to end:
//!
//! * [`key`] — canonical serialization of a job into a stable 128-bit
//!   [`CacheKey`] (two independent FNV-1a-64 lanes; identical across
//!   processes, runs, and thread counts).
//! * [`codec`] — versioned binary serialization of
//!   [`Measurement`](epic_driver::Measurement)s
//!   (strict decode, corrupt data is an error, never a wrong answer) and
//!   a [`digest`](codec::digest) that ignores wall-clock pass times — the
//!   bit-identity comparator used by tests and CI.
//! * [`store`] — the artifact store: bounded in-memory index over an
//!   optional persistent directory of `.epsv` files, plus a memory-only
//!   machine-code cache shared by jobs that differ only in simulation
//!   parameters. Implements [`epic_driver::MeasurementCache`], so
//!   `MeasureRequest` sweeps transparently reuse artifacts.
//! * [`sched`] — bounded priority scheduler over `std::thread` workers
//!   with in-flight coalescing (N concurrent submissions of one key run
//!   once), per-job queue deadlines, and typed [`Busy`](sched::SubmitError::Busy)
//!   load shedding.
//! * [`proto`]/[`server`]/[`client`] — a length-prefixed TCP protocol
//!   (`submit`/`status`/`result`/`stats`/`metrics`/`shutdown`) binding
//!   it together as the `epicd` daemon and the `epicc submit` client,
//!   with deterministic capped-exponential [`RetryPolicy`] backoff on
//!   shed load. The server is a **single-threaded event loop** over
//!   nonblocking sockets: an incremental [`proto::FrameDecoder`] and
//!   reused write buffers make steady-state framing allocation-free,
//!   completion hooks ([`sched::Ticket::on_complete`]) let one loop
//!   thread multiplex thousands of in-flight submits, and admission
//!   control (max-connections cap, idle-timeout reaping) keeps the
//!   house bounded. [`client::Swarm`] is the loop's mirror image — a
//!   single-threaded multiplexing client for saturation tests.
//!
//! The scheduler, runner, and event loop publish counters and latency
//! histograms (`serve.*`) into the process-wide `epic-trace` registry;
//! the `metrics` verb ships a snapshot to `epicc top`.
//!
//! See DESIGN.md §8 for the architecture rationale, §9 for the tracing
//! layer, and §11 for the event-driven serving design.

pub mod client;
pub mod codec;
pub mod key;
pub mod proto;
pub mod sched;
pub mod server;
pub mod store;
pub mod testutil;

pub use client::{Client, ClientError, RetryPolicy, Served, Swarm};
pub use codec::{digest, CodecError};
pub use key::{CacheKey, JobSpec};
pub use proto::{
    AdminRequest, AdminResponse, FleetStatus, FrameDecoder, FrameError, FrameEvent,
    RebalanceReport, RespTag, ServeStats, ShardInfo, Verb, ADMIN_VERSION,
};
pub use sched::{JobError, JobRunner, JobStatus, Priority, SchedStats, Scheduler, SubmitError};
pub use server::{serve, serve_with, ServerConfig, ServerHandle};
pub use store::{ArtifactStore, StoreStats};
