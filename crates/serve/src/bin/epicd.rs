//! `epicd` — the compile/sim job daemon.
//!
//! ```text
//! epicd [--listen ADDR] [--cache-dir DIR] [--workers N] [--queue-cap N]
//!       [--max-conns N] [--idle-timeout-ms MS] [--shard-id N]
//! ```
//!
//! Binds ADDR (default `127.0.0.1:0`), prints `epicd listening on <addr>`
//! on stdout (scripts parse this line to find the ephemeral port), and
//! serves until a client sends the `shutdown` verb. Serving is one
//! event-loop thread (plus the scheduler's workers); `--max-conns` and
//! `--idle-timeout-ms` tune admission control.

use epic_serve::{serve_with, ArtifactStore, Scheduler, ServerConfig};
use std::sync::Arc;

struct Args {
    listen: String,
    cache_dir: Option<std::path::PathBuf>,
    workers: usize,
    queue_cap: usize,
    max_conns: usize,
    idle_timeout_ms: u64,
    shard_id: u64,
}

fn parse_args() -> Result<Args, String> {
    let defaults = ServerConfig::default();
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        cache_dir: None,
        workers: 0,
        queue_cap: 256,
        max_conns: defaults.max_conns,
        idle_timeout_ms: defaults.idle_timeout.as_millis() as u64,
        shard_id: defaults.shard_id,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--listen" => args.listen = val("--listen")?,
            "--cache-dir" => args.cache_dir = Some(val("--cache-dir")?.into()),
            "--workers" => {
                args.workers = val("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-cap" => {
                args.queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--max-conns" => {
                args.max_conns = val("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = val("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
            }
            "--shard-id" => {
                args.shard_id = val("--shard-id")?
                    .parse()
                    .map_err(|e| format!("--shard-id: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: epicd [--listen ADDR] [--cache-dir DIR] [--workers N] [--queue-cap N] [--max-conns N] [--idle-timeout-ms MS] [--shard-id N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("epicd: {e}");
            std::process::exit(2);
        }
    };
    let store = match &args.cache_dir {
        Some(dir) => ArtifactStore::persistent(dir),
        None => ArtifactStore::in_memory(),
    };
    let sched = Arc::new(Scheduler::new(
        Arc::new(store),
        args.workers,
        args.queue_cap,
    ));
    let cfg = ServerConfig {
        max_conns: args.max_conns,
        idle_timeout: std::time::Duration::from_millis(args.idle_timeout_ms),
        shard_id: args.shard_id,
        ..ServerConfig::default()
    };
    let mut handle = match serve_with(&args.listen, sched, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("epicd: bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!("epicd listening on {}", handle.addr());
    handle.wait();
    let s = handle.stats();
    eprintln!(
        "epicd: served {} submissions ({} cache hits, {} coalesced, {} shed), ran {} jobs ({} compiles, {} sims)",
        s.sched.submitted,
        s.sched.cache_hits,
        s.sched.coalesced,
        s.sched.shed,
        s.sched.jobs_run,
        s.compiles,
        s.sims
    );
}
