//! # epic-workloads
//!
//! Twelve MiniC workloads standing in for SPECint2000 (see DESIGN.md for
//! the substitution argument). Each imitates the control structure and
//! memory behaviour class that drives its benchmark's results in the
//! paper:
//!
//! | stand-in | SPEC | key property |
//! |---|---|---|
//! | gzip_mc    | 164.gzip    | byte loops, hash chains, short match extension |
//! | vpr_mc     | 175.vpr     | annealing accept/reject, array scans |
//! | gcc_mc     | 176.gcc     | pointer/int unions → wild speculative loads |
//! | mcf_mc     | 181.mcf     | pointer chasing, memory bound, flat speedups |
//! | crafty_mc  | 186.crafty  | serial one-trip while loops (Fig. 3), big tables |
//! | parser_mc  | 197.parser  | dictionary tries + register pressure |
//! | eon_mc     | 252.eon     | biased indirect (virtual) calls |
//! | perlbmk_mc | 253.perlbmk | bytecode dispatch, large footprint |
//! | gap_mc     | 254.gap     | interpreter with indirect operators |
//! | vortex_mc  | 255.vortex  | many small DB functions (Fig. 10 subject) |
//! | bzip2_mc   | 256.bzip2   | sort/RLE with store-to-load forwarding |
//! | twolf_mc   | 300.twolf   | lukewarm cleanup loops (I-cache, Sec. 4.1) |
//!
//! Inputs are generated deterministically inside each program from seeds;
//! `train_args` and `ref_args` give the SPEC-style training and reference
//! parameterizations (profile feedback uses train, measurement uses ref —
//! and Sec. 4.6's profile-variation experiment swaps them).

mod suite_a;
mod suite_b;
mod suite_c;

/// One workload: MiniC source plus train/ref parameterizations.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Stand-in name (e.g. `gzip_mc`).
    pub name: &'static str,
    /// The SPECint2000 benchmark this stands in for.
    pub spec_name: &'static str,
    /// What the program does and which paper effect it drives.
    pub description: &'static str,
    /// MiniC source text.
    pub source: &'static str,
    /// SPEC "train" input arguments for `main`.
    pub train_args: Vec<i64>,
    /// SPEC "ref" input arguments for `main`.
    pub ref_args: Vec<i64>,
}

impl Workload {
    /// Compile this workload's source to IR.
    ///
    /// # Panics
    /// Panics if the bundled source fails to compile (a crate bug).
    pub fn compile(&self) -> epic_ir::Program {
        epic_lang::compile(self.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", self.name))
    }
}

/// The full suite, in the paper's Table 1 order.
pub fn all() -> Vec<Workload> {
    vec![
        suite_a::gzip(),
        suite_a::vpr(),
        suite_a::gcc(),
        suite_a::mcf(),
        suite_b::crafty(),
        suite_b::parser(),
        suite_b::eon(),
        suite_b::perlbmk(),
        suite_c::gap(),
        suite_c::vortex(),
        suite_c::bzip2(),
        suite_c::twolf(),
    ]
}

/// Find a workload by stand-in or SPEC name.
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.name == name || w.spec_name == name || w.spec_name.ends_with(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::interp::{run, InterpOptions};

    #[test]
    fn suite_has_twelve_unique_workloads() {
        let ws = all();
        assert_eq!(ws.len(), 12);
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn by_name_finds_both_names() {
        assert!(by_name("gzip_mc").is_some());
        assert!(by_name("181.mcf").is_some());
        assert!(by_name("crafty").is_some());
        assert!(by_name("no_such").is_none());
    }

    #[test]
    fn every_workload_compiles_and_runs_on_train() {
        for w in all() {
            let prog = w.compile();
            let r = run(
                &prog,
                &w.train_args,
                InterpOptions {
                    fuel: 400_000_000,
                    collect_profile: false,
                },
            )
            .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
            assert!(!r.output.is_empty(), "{} produced no output", w.name);
            assert!(
                r.ops_executed > 50_000,
                "{} too small: {} ops",
                w.name,
                r.ops_executed
            );
            assert!(
                r.ops_executed < 80_000_000,
                "{} too big for the suite: {} ops",
                w.name,
                r.ops_executed
            );
        }
    }

    #[test]
    fn ref_inputs_differ_from_train_and_are_bigger() {
        for w in all() {
            assert_ne!(w.train_args, w.ref_args, "{}", w.name);
            let prog = w.compile();
            let t = run(&prog, &w.train_args, InterpOptions::default()).unwrap();
            let r = run(&prog, &w.ref_args, InterpOptions::default()).unwrap();
            assert!(
                r.ops_executed > t.ops_executed,
                "{}: ref ({}) not bigger than train ({})",
                w.name,
                r.ops_executed,
                t.ops_executed
            );
        }
    }

    #[test]
    fn outputs_are_deterministic() {
        for w in all() {
            let prog = w.compile();
            let a = run(&prog, &w.train_args, InterpOptions::default()).unwrap();
            let b = run(&prog, &w.train_args, InterpOptions::default()).unwrap();
            assert_eq!(a.checksum, b.checksum, "{}", w.name);
        }
    }
}
